#include "iatf/ref/ref_blas.hpp"

#include <cmath>
#include <complex>
#include <vector>

#include "iatf/common/error.hpp"

namespace iatf::ref {
namespace {

// Element of op(A) at logical position (i, j).
template <class T>
T op_element(Op op, const T* a, index_t lda, index_t i, index_t j) {
  switch (op) {
  case Op::NoTrans:
    return a[j * lda + i];
  case Op::Trans:
    return a[i * lda + j];
  case Op::ConjTrans:
    return conj_if_complex(a[i * lda + j]);
  }
  return T{};
}

// Element of the triangular matrix op(A) at (i, j); positions outside the
// stored triangle read as zero and a Unit diagonal reads as one.
template <class T>
T tri_element(Uplo uplo, Op op, Diag diag, const T* a, index_t lda,
              index_t i, index_t j) {
  if (i == j && diag == Diag::Unit) {
    return T(1);
  }
  // The triangle of op(A): transposing flips the stored triangle.
  const bool stored_lower = (uplo == Uplo::Lower) == (op == Op::NoTrans);
  if (stored_lower ? (i < j) : (i > j)) {
    return T{};
  }
  return op_element(op, a, lda, i, j);
}

} // namespace

template <class T>
void gemm(Op op_a, Op op_b, index_t m, index_t n, index_t k, T alpha,
          const T* a, index_t lda, const T* b, index_t ldb, T beta, T* c,
          index_t ldc) {
  IATF_CHECK(m >= 0 && n >= 0 && k >= 0, "ref::gemm: negative dimension");
  IATF_CHECK(ldc >= (m > 0 ? m : 1), "ref::gemm: ldc too small");
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      T acc{};
      for (index_t l = 0; l < k; ++l) {
        acc += op_element(op_a, a, lda, i, l) *
               op_element(op_b, b, ldb, l, j);
      }
      T& out = c[j * ldc + i];
      out = (beta == T{}) ? alpha * acc : alpha * acc + beta * out;
    }
  }
}

template <class T>
void trsm(Side side, Uplo uplo, Op op_a, Diag diag, index_t m, index_t n,
          T alpha, const T* a, index_t lda, T* b, index_t ldb) {
  IATF_CHECK(m >= 0 && n >= 0, "ref::trsm: negative dimension");
  IATF_CHECK(ldb >= (m > 0 ? m : 1), "ref::trsm: ldb too small");

  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      b[j * ldb + i] *= alpha;
    }
  }

  if (side == Side::Left) {
    // Solve op(A) X = B column by column. Whether op(A) is effectively
    // lower (forward substitution) or upper (backward) depends on both the
    // stored triangle and the transposition.
    const bool effective_lower =
        (uplo == Uplo::Lower) == (op_a == Op::NoTrans);
    for (index_t j = 0; j < n; ++j) {
      T* col = b + j * ldb;
      if (effective_lower) {
        for (index_t i = 0; i < m; ++i) {
          T acc = col[i];
          for (index_t l = 0; l < i; ++l) {
            acc -= tri_element(uplo, op_a, diag, a, lda, i, l) * col[l];
          }
          col[i] = (diag == Diag::Unit)
                       ? acc
                       : acc / tri_element(uplo, op_a, diag, a, lda, i, i);
        }
      } else {
        for (index_t i = m - 1; i >= 0; --i) {
          T acc = col[i];
          for (index_t l = i + 1; l < m; ++l) {
            acc -= tri_element(uplo, op_a, diag, a, lda, i, l) * col[l];
          }
          col[i] = (diag == Diag::Unit)
                       ? acc
                       : acc / tri_element(uplo, op_a, diag, a, lda, i, i);
        }
      }
    }
  } else {
    // X op(A) = B: solve row by row; row i of X satisfies
    // sum_l X(i,l) opA(l,j) = B(i,j). Column j of X depends on columns
    // before (effective upper) or after (effective lower) it.
    const bool effective_lower =
        (uplo == Uplo::Lower) == (op_a == Op::NoTrans);
    if (!effective_lower) {
      // op(A) effectively upper: forward over columns.
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          T acc = b[j * ldb + i];
          for (index_t l = 0; l < j; ++l) {
            acc -= b[l * ldb + i] *
                   tri_element(uplo, op_a, diag, a, lda, l, j);
          }
          b[j * ldb + i] =
              (diag == Diag::Unit)
                  ? acc
                  : acc / tri_element(uplo, op_a, diag, a, lda, j, j);
        }
      }
    } else {
      // op(A) effectively lower: backward over columns.
      for (index_t j = n - 1; j >= 0; --j) {
        for (index_t i = 0; i < m; ++i) {
          T acc = b[j * ldb + i];
          for (index_t l = j + 1; l < n; ++l) {
            acc -= b[l * ldb + i] *
                   tri_element(uplo, op_a, diag, a, lda, l, j);
          }
          b[j * ldb + i] =
              (diag == Diag::Unit)
                  ? acc
                  : acc / tri_element(uplo, op_a, diag, a, lda, j, j);
        }
      }
    }
  }
}

template <class T>
void trmm(Side side, Uplo uplo, Op op_a, Diag diag, index_t m, index_t n,
          T alpha, const T* a, index_t lda, T* b, index_t ldb) {
  IATF_CHECK(m >= 0 && n >= 0, "ref::trmm: negative dimension");
  IATF_CHECK(ldb >= (m > 0 ? m : 1), "ref::trmm: ldb too small");
  const index_t adim = side == Side::Left ? m : n;
  // Out-of-place scratch keeps the reference trivially correct.
  std::vector<T> out(static_cast<std::size_t>(m * n), T{});
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      T acc{};
      if (side == Side::Left) {
        for (index_t l = 0; l < m; ++l) {
          acc += tri_element(uplo, op_a, diag, a, lda, i, l) *
                 b[j * ldb + l];
        }
      } else {
        for (index_t l = 0; l < n; ++l) {
          acc += b[l * ldb + i] *
                 tri_element(uplo, op_a, diag, a, lda, l, j);
        }
      }
      out[static_cast<std::size_t>(j * m + i)] = alpha * acc;
    }
  }
  (void)adim;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      b[j * ldb + i] = out[static_cast<std::size_t>(j * m + i)];
    }
  }
}

template <class T> void getrf_np(index_t m, T* a, index_t lda) {
  IATF_CHECK(m >= 0, "ref::getrf_np: negative dimension");
  for (index_t k = 0; k < m; ++k) {
    const T piv = a[k * lda + k];
    for (index_t i = k + 1; i < m; ++i) {
      a[k * lda + i] = a[k * lda + i] / piv;
    }
    for (index_t j = k + 1; j < m; ++j) {
      const T akj = a[j * lda + k];
      for (index_t i = k + 1; i < m; ++i) {
        a[j * lda + i] -= a[k * lda + i] * akj;
      }
    }
  }
}

template <class T> void potrf(index_t m, T* a, index_t lda) {
  using R = real_t<T>;
  IATF_CHECK(m >= 0, "ref::potrf: negative dimension");
  for (index_t j = 0; j < m; ++j) {
    // Diagonal: sqrt(a_jj - sum_k |l_jk|^2); mathematically real.
    R djj;
    if constexpr (is_complex_v<T>) {
      R s = a[j * lda + j].real();
      for (index_t k = 0; k < j; ++k) {
        s -= std::norm(a[k * lda + j]);
      }
      IATF_CHECK(s > R(0), "ref::potrf: matrix not positive definite");
      djj = std::sqrt(s);
      a[j * lda + j] = T(djj, R(0));
    } else {
      R s = a[j * lda + j];
      for (index_t k = 0; k < j; ++k) {
        s -= a[k * lda + j] * a[k * lda + j];
      }
      IATF_CHECK(s > R(0), "ref::potrf: matrix not positive definite");
      djj = std::sqrt(s);
      a[j * lda + j] = djj;
    }
    for (index_t i = j + 1; i < m; ++i) {
      T s = a[j * lda + i];
      for (index_t k = 0; k < j; ++k) {
        s -= a[k * lda + i] * conj_if_complex(a[k * lda + j]);
      }
      a[j * lda + i] = s / T(djj);
    }
  }
}

template <class T>
void trtri(Uplo uplo, Diag diag, index_t m, T* a, index_t lda) {
  IATF_CHECK(m >= 0, "ref::trtri: negative dimension");
  const bool nonunit = diag == Diag::NonUnit;
  if (uplo == Uplo::Lower) {
    // Right-to-left column sweep (LAPACK trti2, lower): when column j is
    // processed the trailing submatrix already holds inv(L22), so the
    // column update is one triangular matrix-vector product.
    for (index_t j = m - 1; j >= 0; --j) {
      T ajj;
      if (nonunit) {
        a[j * lda + j] = T(1) / a[j * lda + j];
        ajj = -a[j * lda + j];
      } else {
        ajj = T(-1);
      }
      for (index_t i = m - 1; i > j; --i) {
        T s = nonunit ? a[i * lda + i] * a[j * lda + i] : a[j * lda + i];
        for (index_t k = j + 1; k < i; ++k) {
          s += a[k * lda + i] * a[j * lda + k];
        }
        a[j * lda + i] = s;
      }
      for (index_t i = j + 1; i < m; ++i) {
        a[j * lda + i] *= ajj;
      }
    }
  } else {
    // Left-to-right column sweep (upper): the leading submatrix already
    // holds inv(U11) when column j is processed.
    for (index_t j = 0; j < m; ++j) {
      T ajj;
      if (nonunit) {
        a[j * lda + j] = T(1) / a[j * lda + j];
        ajj = -a[j * lda + j];
      } else {
        ajj = T(-1);
      }
      for (index_t i = 0; i < j; ++i) {
        T s = nonunit ? a[i * lda + i] * a[j * lda + i] : a[j * lda + i];
        for (index_t k = i + 1; k < j; ++k) {
          s += a[k * lda + i] * a[j * lda + k];
        }
        a[j * lda + i] = s;
      }
      for (index_t i = 0; i < j; ++i) {
        a[j * lda + i] *= ajj;
      }
    }
  }
}

#define IATF_INSTANTIATE_REF(T)                                              \
  template void gemm<T>(Op, Op, index_t, index_t, index_t, T, const T*,     \
                        index_t, const T*, index_t, T, T*, index_t);        \
  template void trsm<T>(Side, Uplo, Op, Diag, index_t, index_t, T,          \
                        const T*, index_t, T*, index_t);                    \
  template void trmm<T>(Side, Uplo, Op, Diag, index_t, index_t, T,          \
                        const T*, index_t, T*, index_t);                    \
  template void getrf_np<T>(index_t, T*, index_t);                          \
  template void potrf<T>(index_t, T*, index_t);                             \
  template void trtri<T>(Uplo, Diag, index_t, T*, index_t);

IATF_INSTANTIATE_REF(float)
IATF_INSTANTIATE_REF(double)
IATF_INSTANTIATE_REF(std::complex<float>)
IATF_INSTANTIATE_REF(std::complex<double>)

#undef IATF_INSTANTIATE_REF

} // namespace iatf::ref
