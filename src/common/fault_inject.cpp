#include "iatf/common/fault_inject.hpp"

#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

namespace iatf::fault {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

struct Site {
  int skip = 0;      // hits to let pass before failing
  int remaining = 0; // failures still to deliver
  int hits = 0;      // evaluations since arm()
};

std::mutex g_mutex;
std::map<std::string, Site>& sites() {
  static std::map<std::string, Site> s;
  return s;
}

// Depth of nested SuppressionScopes on this thread. While positive, only
// "resilience."-prefixed sites evaluate; everything else passes without
// touching its schedule or hit count.
thread_local int g_suppress_depth = 0;

bool suppressed(const char* site) {
  if (g_suppress_depth <= 0) {
    return false;
  }
  constexpr char kPrefix[] = "resilience.";
  return std::strncmp(site, kPrefix, sizeof(kPrefix) - 1) != 0;
}

} // namespace

bool should_fail(const char* site) {
  if (suppressed(site)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = sites().find(site);
  if (it == sites().end()) {
    return false;
  }
  Site& s = it->second;
  ++s.hits;
  if (s.skip > 0) {
    --s.skip;
    return false;
  }
  if (s.remaining > 0) {
    --s.remaining;
    return true;
  }
  return false;
}

} // namespace detail

void arm(const char* site, int skip, int count) {
  std::lock_guard<std::mutex> lock(detail::g_mutex);
  detail::sites()[site] = detail::Site{skip, count, 0};
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void disarm(const char* site) {
  std::lock_guard<std::mutex> lock(detail::g_mutex);
  detail::sites().erase(site);
  if (detail::sites().empty()) {
    detail::g_enabled.store(false, std::memory_order_relaxed);
  }
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(detail::g_mutex);
  detail::sites().clear();
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void stall_if_armed(const char* site, int ms) {
  if (!enabled()) {
    return;
  }
  if (detail::should_fail(site)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

SuppressionScope::SuppressionScope() noexcept {
  ++detail::g_suppress_depth;
}

SuppressionScope::~SuppressionScope() { --detail::g_suppress_depth; }

int hits(const char* site) {
  std::lock_guard<std::mutex> lock(detail::g_mutex);
  auto it = detail::sites().find(site);
  return it == detail::sites().end() ? 0 : it->second.hits;
}

} // namespace iatf::fault
