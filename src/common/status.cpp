#include "iatf/common/status.hpp"

namespace iatf {

const char* to_string(Status status) noexcept {
  switch (status) {
  case Status::Ok:
    return "ok";
  case Status::InvalidArg:
    return "invalid argument";
  case Status::Unsupported:
    return "unsupported";
  case Status::AllocFailure:
    return "allocation failure";
  case Status::NumericalHazard:
    return "numerical hazard";
  case Status::Internal:
    return "internal error";
  case Status::Timeout:
    return "deadline exceeded";
  case Status::Overloaded:
    return "overloaded";
  case Status::Cancelled:
    return "cancelled";
  case Status::Watchdog:
    return "watchdog reclaimed";
  }
  return "unknown";
}

const char* to_string(ExecPolicy policy) noexcept {
  switch (policy) {
  case ExecPolicy::Fast:
    return "fast";
  case ExecPolicy::Check:
    return "check";
  case ExecPolicy::Fallback:
    return "fallback";
  }
  return "unknown";
}

void BatchHealth::merge(const BatchHealth& other) noexcept {
  const auto merge_first = [](index_t a, index_t b) {
    if (a < 0) {
      return b;
    }
    if (b < 0) {
      return a;
    }
    return a < b ? a : b;
  };
  batch += other.batch;
  nonfinite += other.nonfinite;
  first_nonfinite = merge_first(first_nonfinite, other.first_nonfinite);
  singular += other.singular;
  first_singular = merge_first(first_singular, other.first_singular);
  fallback += other.fallback;
  first_fallback = merge_first(first_fallback, other.first_fallback);
  events |= other.events;
}

void HealthRecorder::fill(BatchHealth& health) const noexcept {
  for (std::size_t i = 0; i < singular_.size(); ++i) {
    if (singular_[i] != 0) {
      ++health.singular;
      if (health.first_singular < 0) {
        health.first_singular = static_cast<index_t>(i);
      }
    }
    if (nonfinite_[i] != 0) {
      ++health.nonfinite;
      if (health.first_nonfinite < 0) {
        health.first_nonfinite = static_cast<index_t>(i);
      }
    }
  }
}

} // namespace iatf
