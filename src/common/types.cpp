#include "iatf/common/types.hpp"

#include <sstream>

namespace iatf {

const char* to_string(Op op) noexcept {
  switch (op) {
  case Op::NoTrans:
    return "N";
  case Op::Trans:
    return "T";
  case Op::ConjTrans:
    return "C";
  }
  return "?";
}

const char* to_string(Side side) noexcept {
  return side == Side::Left ? "L" : "R";
}

const char* to_string(Uplo uplo) noexcept {
  return uplo == Uplo::Lower ? "L" : "U";
}

const char* to_string(Diag diag) noexcept {
  return diag == Diag::NonUnit ? "N" : "U";
}

std::string to_string(const GemmShape& s) {
  std::ostringstream os;
  os << "gemm[" << to_string(s.op_a) << to_string(s.op_b) << " m=" << s.m
     << " n=" << s.n << " k=" << s.k << " batch=" << s.batch << "]";
  return os.str();
}

std::string to_string(const TrsmShape& s) {
  std::ostringstream os;
  os << "trsm[" << to_string(s.side) << to_string(s.op_a)
     << to_string(s.uplo) << to_string(s.diag) << " m=" << s.m
     << " n=" << s.n << " batch=" << s.batch << "]";
  return os.str();
}

} // namespace iatf
