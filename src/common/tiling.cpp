#include "iatf/common/tiling.hpp"

#include "iatf/common/error.hpp"

namespace iatf {

std::vector<Tile> tile_dimension(index_t extent, index_t max_chunk) {
  IATF_CHECK(extent >= 0, "tile_dimension: negative extent");
  IATF_CHECK(max_chunk >= 1, "tile_dimension: max_chunk must be >= 1");

  std::vector<Tile> tiles;
  if (extent == 0) {
    return tiles;
  }

  // Greedy max_chunk decomposition, then repair a trailing width-1 chunk by
  // narrowing its predecessor: ...,c,1 -> ...,c-1,2. This reproduces the
  // paper's 15 -> 4+4+4+3 split (remainder 3 untouched) and turns
  // 13 -> 4+4+4+1 into 4+4+3+2, avoiding tiny edge kernels.
  std::vector<index_t> sizes;
  index_t remaining = extent;
  while (remaining > 0) {
    const index_t c = remaining < max_chunk ? remaining : max_chunk;
    sizes.push_back(c);
    remaining -= c;
  }
  if (sizes.size() >= 2 && sizes.back() == 1 && sizes[sizes.size() - 2] >= 3) {
    sizes[sizes.size() - 2] -= 1;
    sizes.back() = 2;
  }

  tiles.reserve(sizes.size());
  index_t offset = 0;
  for (index_t s : sizes) {
    tiles.push_back(Tile{offset, s});
    offset += s;
  }
  IATF_ASSERT(offset == extent);
  return tiles;
}

} // namespace iatf
