#include "iatf/common/error.hpp"

#include <sstream>

namespace iatf::detail {

void throw_error(const char* file, int line, const std::string& message,
                 Status status) {
  std::ostringstream os;
  os << "iatf: " << message << " (" << file << ":" << line << ")";
  throw Error(os.str(), status);
}

} // namespace iatf::detail
