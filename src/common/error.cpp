#include "iatf/common/error.hpp"

#include <sstream>

namespace iatf::detail {

void throw_error(const char* file, int line, const std::string& message) {
  std::ostringstream os;
  os << "iatf: " << message << " (" << file << ":" << line << ")";
  throw Error(os.str());
}

} // namespace iatf::detail
