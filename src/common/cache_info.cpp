#include "iatf/common/cache_info.hpp"

#include <fstream>
#include <string>

namespace iatf {
namespace {

// Parse a sysfs cache size string such as "64K" or "1024K" or "1M".
// Returns 0 when the file is missing or malformed.
std::size_t read_cache_size(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return 0;
  }
  std::string text;
  in >> text;
  if (text.empty()) {
    return 0;
  }
  std::size_t multiplier = 1;
  char suffix = text.back();
  if (suffix == 'K' || suffix == 'k') {
    multiplier = 1024;
    text.pop_back();
  } else if (suffix == 'M' || suffix == 'm') {
    multiplier = 1024 * 1024;
    text.pop_back();
  }
  try {
    return static_cast<std::size_t>(std::stoull(text)) * multiplier;
  } catch (...) {
    return 0;
  }
}

std::string read_string(const std::string& path) {
  std::ifstream in(path);
  std::string text;
  if (in) {
    in >> text;
  }
  return text;
}

} // namespace

CacheInfo CacheInfo::detect() {
  CacheInfo info; // starts from Kunpeng 920 defaults
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    const std::string level = read_string(dir + "level");
    if (level.empty()) {
      break;
    }
    const std::string type = read_string(dir + "type");
    const std::size_t size = read_cache_size(dir + "size");
    if (size == 0) {
      continue;
    }
    if (level == "1" && (type == "Data" || type == "Unified")) {
      info.l1d = size;
    } else if (level == "2" && (type == "Data" || type == "Unified")) {
      info.l2 = size;
    }
  }
  return info;
}

} // namespace iatf
