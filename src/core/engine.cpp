#include "iatf/core/engine.hpp"

#include <algorithm>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "iatf/common/error.hpp"
#include "iatf/common/fault_inject.hpp"
#include "iatf/ref/ref_blas.hpp"
#include "iatf/tune/descriptor.hpp"
#include "iatf/tune/tuning_table.hpp"
#include "engine_internal.hpp"

namespace iatf {
namespace {

using detail::classify_failure;
using detail::restore_lane;

template <class T> constexpr char dtype_tag() {
  return blas_prefix_v<T>[0];
}

/// The fallback path reads the buffers directly, so it must re-validate
/// the consistency the plan normally checks -- plan construction may have
/// failed before any validation ran.
template <class T>
void validate_gemm_fallback(const GemmShape& s, const CompactBuffer<T>& a,
                            const CompactBuffer<T>& b,
                            const CompactBuffer<T>& c) {
  const bool ta = s.op_a != Op::NoTrans;
  const bool tb = s.op_b != Op::NoTrans;
  IATF_CHECK(s.m >= 0 && s.n >= 0 && s.k >= 0 && s.batch >= 0,
             "gemm: negative dimension");
  IATF_CHECK(a.rows() == (ta ? s.k : s.m) && a.cols() == (ta ? s.m : s.k),
             "gemm: operand A has mismatched dimensions");
  IATF_CHECK(b.rows() == (tb ? s.n : s.k) && b.cols() == (tb ? s.k : s.n),
             "gemm: operand B has mismatched dimensions");
  IATF_CHECK(a.batch() == s.batch && b.batch() == s.batch &&
                 c.batch() == s.batch,
             "gemm: operand batch sizes do not match");
}

template <class T>
void validate_trsm_fallback(const TrsmShape& s, const CompactBuffer<T>& a,
                            const CompactBuffer<T>& b) {
  IATF_CHECK(s.m >= 0 && s.n >= 0 && s.batch >= 0,
             "trsm: negative dimension");
  IATF_CHECK(a.rows() == s.a_dim() && a.cols() == s.a_dim(),
             "trsm: A must be a_dim x a_dim");
  IATF_CHECK(a.batch() == s.batch && b.batch() == s.batch,
             "trsm: operand batch sizes do not match");
}

/// Recompute one lane with the scalar reference GEMM. The lane's C must
/// hold the original (pre-call) values so beta applies correctly.
template <class T>
void ref_gemm_lane(const GemmShape& s, T alpha, const CompactBuffer<T>& a,
                   const CompactBuffer<T>& b, T beta, CompactBuffer<T>& c,
                   index_t lane) {
  const index_t lda = std::max<index_t>(a.rows(), 1);
  const index_t ldb = std::max<index_t>(b.rows(), 1);
  const index_t ldc = std::max<index_t>(c.rows(), 1);
  std::vector<T> ta(static_cast<std::size_t>(a.rows() * a.cols()));
  std::vector<T> tb(static_cast<std::size_t>(b.rows() * b.cols()));
  std::vector<T> tc(static_cast<std::size_t>(c.rows() * c.cols()));
  a.export_colmajor(lane, ta.data(), lda);
  b.export_colmajor(lane, tb.data(), ldb);
  c.export_colmajor(lane, tc.data(), ldc);
  ref::gemm(s.op_a, s.op_b, s.m, s.n, s.k, alpha, ta.data(), lda,
            tb.data(), ldb, beta, tc.data(), ldc);
  c.import_colmajor(lane, tc.data(), ldc);
}

/// Recompute one lane with the scalar reference TRSM. The lane's B must
/// hold the original right-hand side, not the partial fast-path solution.
template <class T>
void ref_trsm_lane(const TrsmShape& s, T alpha, const CompactBuffer<T>& a,
                   CompactBuffer<T>& b, index_t lane) {
  const index_t lda = std::max<index_t>(a.rows(), 1);
  const index_t ldb = std::max<index_t>(b.rows(), 1);
  std::vector<T> ta(static_cast<std::size_t>(a.rows() * a.cols()));
  std::vector<T> tb(static_cast<std::size_t>(b.rows() * b.cols()));
  a.export_colmajor(lane, ta.data(), lda);
  b.export_colmajor(lane, tb.data(), ldb);
  ref::trsm(s.side, s.uplo, s.op_a, s.diag, s.m, s.n, alpha, ta.data(),
            lda, tb.data(), ldb);
  b.import_colmajor(lane, tb.data(), ldb);
}

std::size_t resolve_capacity(std::size_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("IATF_PLAN_CACHE_CAP")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return Engine::kDefaultPlanCacheCapacity;
}

/// Positive integer from the environment, or 0 when unset/malformed.
long long env_positive(const char* name) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return v;
    }
  }
  return 0;
}

/// Map a plan type back to its scalar type and SIMD width so the
/// type-erased cache can attach engine-wide kernel identities.
template <class Plan> struct plan_traits;
template <class T, int B> struct plan_traits<plan::GemmPlan<T, B>> {
  using value_type = T;
  static constexpr int bytes = B;
};
template <class T, int B> struct plan_traits<plan::TrsmPlan<T, B>> {
  using value_type = T;
  static constexpr int bytes = B;
};
template <class T, int B> struct plan_traits<factor::FactorPlan<T, B>> {
  using value_type = T;
  static constexpr int bytes = B;
};

template <class Plan>
std::vector<resilience::KernelId> kernel_ids_of(const Plan& plan) {
  using Traits = plan_traits<Plan>;
  std::vector<resilience::KernelId> ids;
  ids.reserve(plan.kernels_used().size());
  for (const resilience::KernelUse& use : plan.kernels_used()) {
    ids.push_back(resilience::KernelId{
        use.kind, dtype_tag<typename Traits::value_type>(), Traits::bytes,
        use.m, use.n});
  }
  return ids;
}

/// Deterministic canary operand: small exact binary fractions, so the
/// tiled kernels and the scalar reference agree to a few ulps and a
/// mismatch means a broken kernel, not accumulated rounding.
template <class T> T canary_value(int seed) {
  const double re = ((seed % 11) - 5) * 0.0625;
  if constexpr (is_complex_v<T>) {
    const double im = (((seed / 3) % 7) - 3) * 0.125;
    return T(static_cast<real_t<T>>(re), static_cast<real_t<T>>(im));
  } else {
    return static_cast<T>(re);
  }
}

template <class T>
void fill_canary(CompactBuffer<T>& buf, int salt) {
  for (index_t b = 0; b < buf.batch(); ++b) {
    for (index_t j = 0; j < buf.cols(); ++j) {
      for (index_t i = 0; i < buf.rows(); ++i) {
        buf.set(b, i, j,
                canary_value<T>(static_cast<int>(salt + 13 * b + 7 * j +
                                                 3 * i)));
      }
    }
  }
}

/// Well-conditioned canary triangle: power-of-two diagonal (exact
/// reciprocal) with small exact sub-diagonal entries.
template <class T>
void fill_canary_triangle(CompactBuffer<T>& buf, int salt) {
  for (index_t b = 0; b < buf.batch(); ++b) {
    for (index_t j = 0; j < buf.cols(); ++j) {
      for (index_t i = 0; i < buf.rows(); ++i) {
        if (i == j) {
          buf.set(b, i, j, T(2));
        } else {
          buf.set(b, i, j,
                  canary_value<T>(static_cast<int>(salt + 13 * b + 7 * j +
                                                   3 * i)));
        }
      }
    }
  }
}

/// Lane-by-lane comparison of a computed buffer against the scalar
/// reference result, ulp-scaled.
template <class T>
bool canary_lane_matches(const std::vector<T>& got,
                         const std::vector<T>& want) {
  using R = real_t<T>;
  const R tol = std::numeric_limits<R>::epsilon() * R(512);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const R err = static_cast<R>(std::abs(got[i] - want[i]));
    const R mag = static_cast<R>(std::abs(want[i]));
    if (!(err <= tol * (R(1) + mag))) {
      return false; // also catches NaN
    }
  }
  return true;
}

/// Capped exponential backoff before a transient-failure retry; never
/// sleeps past the call deadline.
void backoff_sleep(std::chrono::nanoseconds delay,
                   const Deadline* deadline) {
  if (delay.count() <= 0) {
    return;
  }
  if (deadline != nullptr) {
    const auto left = deadline->at - std::chrono::steady_clock::now();
    if (left <= std::chrono::nanoseconds::zero()) {
      return;
    }
    delay = std::min(delay,
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         left));
  }
  std::this_thread::sleep_for(delay);
}

/// Rebuild a plan whose kernel set intersects the quarantine ledger with
/// descending tile caps until the command queue avoids every quarantined
/// kernel. When no cap combination helps, the plan is pre-marked
/// Quarantined so dispatch ref-routes it without re-running canaries.
template <class T, int Bytes>
void substitute_quarantined(
    std::unique_ptr<plan::GemmPlan<T, Bytes>>& plan, const GemmShape& shape,
    const CacheInfo& cache, const plan::PlanTuning& tuning,
    const resilience::KernelGuard& guard) {
  if (!guard.any_quarantined(kernel_ids_of(*plan))) {
    return;
  }
  using Limits = kernels::KernelLimits<T>;
  for (index_t mc = Limits::gemm_max_mc; mc >= 1; --mc) {
    for (index_t nc = Limits::gemm_max_nc; nc >= 1; --nc) {
      plan::PlanTuning t = tuning;
      t.mc_cap = mc;
      t.nc_cap = nc;
      auto candidate =
          std::make_unique<plan::GemmPlan<T, Bytes>>(shape, cache, t);
      if (!guard.any_quarantined(kernel_ids_of(*candidate))) {
        plan = std::move(candidate);
        return;
      }
    }
  }
  plan->set_verify_state(resilience::PlanVerify::Quarantined);
}

template <class T, int Bytes>
void substitute_quarantined(
    std::unique_ptr<plan::TrsmPlan<T, Bytes>>& plan, const TrsmShape& shape,
    const CacheInfo& cache, const plan::PlanTuning& tuning,
    const resilience::KernelGuard& guard) {
  if (!guard.any_quarantined(kernel_ids_of(*plan))) {
    return;
  }
  using Limits = kernels::KernelLimits<T>;
  for (index_t mc = Limits::trsm_block; mc >= 1; --mc) {
    for (index_t nc = Limits::tri_max_nc; nc >= 1; --nc) {
      plan::PlanTuning t = tuning;
      t.mc_cap = mc;
      t.nc_cap = nc;
      auto candidate =
          std::make_unique<plan::TrsmPlan<T, Bytes>>(shape, cache, t);
      if (!guard.any_quarantined(kernel_ids_of(*candidate))) {
        plan = std::move(candidate);
        return;
      }
    }
  }
  plan->set_verify_state(resilience::PlanVerify::Quarantined);
}

} // namespace

Engine::Engine(CacheInfo cache, std::size_t plan_cache_capacity)
    : cache_(cache) {
  capacity_.store(resolve_capacity(plan_cache_capacity),
                  std::memory_order_relaxed);
  auto config = std::make_shared<TuningConfig>();
  config->generation = 0;
  tuning_.store(std::shared_ptr<const TuningConfig>(std::move(config)),
                std::memory_order_release);
  // Serving-hardening knobs from the environment (DESIGN.md section 11).
  if (const long long v = env_positive("IATF_MAX_INFLIGHT")) {
    max_inflight_.store(static_cast<std::size_t>(v),
                        std::memory_order_relaxed);
  }
  if (const long long w = env_positive("IATF_BREAKER_WINDOW")) {
    resilience::BreakerConfig bc;
    bc.window = static_cast<int>(w);
    bc.threshold = std::max(1, static_cast<int>(w / 4));
    bc.cooldown = static_cast<int>(2 * w);
    breaker_.configure(bc);
  }
  if (const long long r = env_positive("IATF_RETRY_MAX")) {
    retry_attempts_.store(static_cast<int>(r), std::memory_order_relaxed);
  }
  if (const long long s = env_positive("IATF_RETRY_JITTER_SEED")) {
    retry_seed_.store(static_cast<std::uint64_t>(s),
                      std::memory_order_relaxed);
  }
  // Attach the health ledger last: replay seeds breaker slots, and the
  // IATF_BREAKER_WINDOW configure() above resets every slot, so the
  // order matters (DESIGN.md section 14).
  if (const std::string ledger = resilience::HealthLedger::default_path();
      !ledger.empty()) {
    set_health_ledger(ledger);
  }
}

Engine::~Engine() {
  // Shutdown ordering contract (DESIGN.md section 12): a Server's
  // dispatcher thread holds a bare Engine& and may be mid-dispatch, so
  // destroying the engine first is a guaranteed use-after-free. Fail
  // loudly and immediately instead of corrupting memory.
  const std::size_t servers = servers_.load(std::memory_order_relaxed);
  if (servers != 0) {
    std::fprintf(stderr,
                 "iatf: fatal: Engine destroyed while %zu "
                 "iatf::serve::Server instance(s) are still attached; "
                 "destroy (or stop()) every Server before its engine\n",
                 servers);
    std::abort();
  }
}

std::size_t Engine::PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  // FNV-1a over the key's fields.
  std::size_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(k.op) << 8 |
      static_cast<std::uint64_t>(k.dtype));
  mix(static_cast<std::uint64_t>(k.bytes));
  mix(static_cast<std::uint64_t>(k.m));
  mix(static_cast<std::uint64_t>(k.n));
  mix(static_cast<std::uint64_t>(k.k));
  mix(static_cast<std::uint64_t>(k.op_a) | static_cast<std::uint64_t>(k.op_b)
                                               << 8 |
      static_cast<std::uint64_t>(k.side) << 16 |
      static_cast<std::uint64_t>(k.uplo) << 24 |
      static_cast<std::uint64_t>(k.diag) << 32 |
      static_cast<std::uint64_t>(k.layout) << 40);
  mix(static_cast<std::uint64_t>(k.batch));
  return h;
}

Engine::Shard& Engine::shard_for(const PlanKey& key) {
  // FNV's low bits feed the map's bucket choice; take high bits for the
  // shard so the two decisions stay decorrelated.
  const std::size_t h = PlanKeyHash{}(key);
  return shards_[(h >> 56) % kPlanCacheShards];
}

std::size_t Engine::shard_capacity() const noexcept {
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  const std::size_t per = (cap + kPlanCacheShards - 1) / kPlanCacheShards;
  return per > 0 ? per : 1;
}

void Engine::evict_to_capacity(PlanMap& map, std::size_t cap) {
  while (map.size() > cap && !map.empty()) {
    // Fault site: an eviction that throws must not fail the lookup -- the
    // built plan is still returned, just not cached.
    IATF_FAULT_POINT("cache.evict", ::iatf::Status::Internal);
    auto victim = map.begin();
    std::uint64_t oldest =
        victim->second->last_used.load(std::memory_order_relaxed);
    for (auto it = std::next(map.begin()); it != map.end(); ++it) {
      const std::uint64_t used =
          it->second->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = it;
      }
    }
    map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Engine::insert_plan(Shard& shard, const PlanKey& key,
                         std::shared_ptr<const void> plan, bool tuned,
                         std::vector<resilience::KernelId> kernels,
                         std::uint64_t generation, std::uint64_t now) {
  std::lock_guard<std::mutex> lock(shard.mu);
  // The build resolved its tuning against the config of `generation`; if
  // the engine was reconfigured (or the cache cleared) since, this plan
  // would poison the fresh cache -- drop it instead. The caller still
  // returns it to the requesting threads.
  if (generation_.load(std::memory_order_acquire) != generation) {
    return;
  }
  auto old = shard.snapshot.load(std::memory_order_acquire);
  auto next = old ? std::make_shared<PlanMap>(*old)
                  : std::make_shared<PlanMap>();
  evict_to_capacity(*next, shard_capacity() - 1);
  auto entry = std::make_shared<CacheEntry>();
  entry->plan = std::move(plan);
  entry->tuned = tuned;
  entry->kernels = std::move(kernels);
  entry->last_used.store(now, std::memory_order_relaxed);
  (*next)[key] = std::move(entry);
  shard.snapshot.store(std::shared_ptr<const PlanMap>(std::move(next)),
                       std::memory_order_release);
  if (tuned) {
    tuned_.fetch_add(1, std::memory_order_relaxed);
  }
}

template <class Plan, class Make>
std::shared_ptr<const Plan> Engine::lookup(const PlanKey& key, Make&& make) {
  const std::uint64_t now =
      tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = shard_for(key);

  // Fast path: one atomic load of the shard's immutable snapshot. No
  // exclusive lock is taken on a hit.
  if (auto map = shard.snapshot.load(std::memory_order_acquire)) {
    auto it = map->find(key);
    if (it != map->end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      it->second->last_used.store(now, std::memory_order_relaxed);
      return std::static_pointer_cast<const Plan>(it->second->plan);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Re-check: a leader may have published between our snapshot load and
    // here. The miss above already counted, so no extra hit is recorded
    // (hits + misses always equals lookups).
    if (auto map = shard.snapshot.load(std::memory_order_acquire)) {
      auto it = map->find(key);
      if (it != map->end()) {
        it->second->last_used.store(now, std::memory_order_relaxed);
        return std::static_pointer_cast<const Plan>(it->second->plan);
      }
    }
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    auto it = shard.inflight.find(key);
    if (it != shard.inflight.end() && it->second->generation == gen) {
      flight = it->second; // join the in-flight build
    } else {
      flight = std::make_shared<Flight>();
      flight->generation = gen;
      shard.inflight[key] = flight; // replaces a stale-generation flight
      leader = true;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> fl(flight->mu);
    flight->cv.wait(fl, [&] { return flight->done; });
    if (flight->error) {
      std::rethrow_exception(flight->error);
    }
    return std::static_pointer_cast<const Plan>(flight->plan);
  }

  // Single-flight leader: build outside every lock so joiners (and every
  // other shard) are never blocked behind plan construction.
  builds_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const Plan> typed;
  std::shared_ptr<const void> plan;
  bool tuned = false;
  std::uint64_t config_gen = 0;
  std::exception_ptr error;
  try {
    typed = std::shared_ptr<const Plan>(make(&tuned, &config_gen));
    plan = typed;
  } catch (...) {
    error = std::current_exception();
  }

  if (!error) {
    try {
      insert_plan(shard, key, plan, tuned, kernel_ids_of(*typed),
                  config_gen, now);
    } catch (...) {
      // Cache-insert failures (eviction fault, bad_alloc on the map copy)
      // must not fail the call: the plan is returned uncached.
    }
  }

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.inflight.find(key);
    if (it != shard.inflight.end() && it->second == flight) {
      shard.inflight.erase(it); // by identity: never remove a successor
    }
  }
  {
    std::lock_guard<std::mutex> fl(flight->mu);
    flight->plan = plan;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();

  if (error) {
    std::rethrow_exception(error);
  }
  return std::static_pointer_cast<const Plan>(plan);
}

template <class T, int Bytes>
Engine::PlanKey Engine::gemm_plan_key(const GemmShape& shape,
                                      std::uint8_t layout) {
  PlanKey key;
  key.op = 'g';
  key.dtype = dtype_tag<T>();
  key.bytes = Bytes;
  key.m = shape.m;
  key.n = shape.n;
  key.k = shape.k;
  key.op_a = static_cast<std::uint8_t>(shape.op_a);
  key.op_b = static_cast<std::uint8_t>(shape.op_b);
  key.layout = layout;
  key.batch = shape.batch;
  return key;
}

template <class T, int Bytes>
Engine::PlanKey Engine::trsm_plan_key(const TrsmShape& shape,
                                      std::uint8_t layout) {
  PlanKey key;
  key.op = 't';
  key.dtype = dtype_tag<T>();
  key.bytes = Bytes;
  key.m = shape.m;
  key.n = shape.n;
  key.op_a = static_cast<std::uint8_t>(shape.op_a);
  key.side = static_cast<std::uint8_t>(shape.side);
  key.uplo = static_cast<std::uint8_t>(shape.uplo);
  key.diag = static_cast<std::uint8_t>(shape.diag);
  key.layout = layout;
  key.batch = shape.batch;
  return key;
}

/// Factorisations are keyed like GEMM/TRSM: the op tag distinguishes the
/// three routines ('p' Cholesky, 'l' unpivoted LU, 'i' triangular
/// inverse) and `layout` separates the raw-buffer and packed-handle
/// variants so both coexist in the cache.
template <class T, int Bytes>
Engine::PlanKey Engine::factor_plan_key(const factor::FactorShape& shape,
                                        std::uint8_t layout) {
  PlanKey key;
  switch (shape.op) {
  case factor::FactorOp::Potrf:
    key.op = 'p';
    break;
  case factor::FactorOp::GetrfNp:
    key.op = 'l';
    break;
  case factor::FactorOp::Trtri:
    key.op = 'i';
    break;
  }
  key.dtype = dtype_tag<T>();
  key.bytes = Bytes;
  key.m = shape.m;
  key.uplo = static_cast<std::uint8_t>(shape.uplo);
  key.diag = static_cast<std::uint8_t>(shape.diag);
  key.layout = layout;
  key.batch = shape.batch;
  return key;
}

template <class T, int Bytes>
std::shared_ptr<const plan::GemmPlan<T, Bytes>>
Engine::plan_gemm(const GemmShape& shape, std::uint8_t layout) {
  return lookup<plan::GemmPlan<T, Bytes>>(
      gemm_plan_key<T, Bytes>(shape, layout),
      [&](bool* tuned, std::uint64_t* config_gen) {
        IATF_FAULT_POINT("plan.gemm", ::iatf::Status::Unsupported);
        fault::stall_if_armed("plan.stall");
        const auto config = tuning_.load(std::memory_order_acquire);
        *config_gen = config->generation;
        const plan::PlanTuning tuning = resolve_tuning(
            *config, tune::gemm_key<T, Bytes>(shape), tuned);
        auto plan = std::make_unique<plan::GemmPlan<T, Bytes>>(shape,
                                                               cache_,
                                                               tuning);
        if (kernel_verification() && guard_.quarantined_count() > 0) {
          substitute_quarantined<T, Bytes>(plan, shape, cache_, tuning,
                                           guard_);
        }
        return plan.release();
      });
}

template <class T, int Bytes>
std::shared_ptr<const plan::TrsmPlan<T, Bytes>>
Engine::plan_trsm(const TrsmShape& shape, std::uint8_t layout) {
  return lookup<plan::TrsmPlan<T, Bytes>>(
      trsm_plan_key<T, Bytes>(shape, layout),
      [&](bool* tuned, std::uint64_t* config_gen) {
        IATF_FAULT_POINT("plan.trsm", ::iatf::Status::Unsupported);
        fault::stall_if_armed("plan.stall");
        const auto config = tuning_.load(std::memory_order_acquire);
        *config_gen = config->generation;
        const plan::PlanTuning tuning = resolve_tuning(
            *config, tune::trsm_key<T, Bytes>(shape), tuned);
        auto plan = std::make_unique<plan::TrsmPlan<T, Bytes>>(shape,
                                                               cache_,
                                                               tuning);
        if (kernel_verification() && guard_.quarantined_count() > 0) {
          substitute_quarantined<T, Bytes>(plan, shape, cache_, tuning,
                                           guard_);
        }
        return plan.release();
      });
}

template <class T, int Bytes>
std::shared_ptr<const factor::FactorPlan<T, Bytes>>
Engine::plan_factor(const factor::FactorShape& shape, std::uint8_t layout) {
  return lookup<factor::FactorPlan<T, Bytes>>(
      factor_plan_key<T, Bytes>(shape, layout),
      [&](bool* tuned, std::uint64_t* config_gen) {
        IATF_FAULT_POINT("plan.factor", ::iatf::Status::Unsupported);
        fault::stall_if_armed("plan.stall");
        // Factor plans take no tile tuning (the steps are straight-line
        // register sweeps), but the build still resolves against one
        // config generation so reconfigure() gates stale inserts.
        *tuned = false;
        *config_gen =
            tuning_.load(std::memory_order_acquire)->generation;
        return new factor::FactorPlan<T, Bytes>(shape);
      });
}

template <class T, int Bytes>
BatchHealth Engine::gemm(Op op_a, Op op_b, T alpha, const CompactBuffer<T>& a,
                         const CompactBuffer<T>& b, T beta,
                         CompactBuffer<T>& c) {
  return gemm_at<T, Bytes>(op_a, op_b, alpha, a, b, beta, c, /*layout=*/0);
}

template <class T, int Bytes>
BatchHealth Engine::gemm_at(Op op_a, Op op_b, T alpha,
                            const CompactBuffer<T>& a,
                            const CompactBuffer<T>& b, T beta,
                            CompactBuffer<T>& c, std::uint8_t layout) {
  GemmShape shape;
  shape.m = c.rows();
  shape.n = c.cols();
  shape.k = op_a == Op::NoTrans ? a.cols() : a.rows();
  shape.op_a = op_a;
  shape.op_b = op_b;
  shape.batch = c.batch();
  note_width_call(Bytes);

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  ThreadPool* pool = pool_.load(std::memory_order_relaxed);
  const std::int64_t budget = deadline_ns_.load(std::memory_order_relaxed);
  Deadline deadline_at;
  const Deadline* deadline = nullptr;
  if (budget > 0) {
    deadline_at = Deadline::in(std::chrono::nanoseconds(budget));
    deadline = &deadline_at;
  }

  // Admission gate: count the call in (and possibly shed / degrade it),
  // then guarantee the slot is released on every exit path.
  const Admit admitted = admit_call(deadline);
  struct Release {
    Engine* engine;
    ~Release() { engine->release_call(); }
  } release{this};
  if (admitted == Admit::RefRoute) {
    return ref_route_gemm<T, Bytes>(shape, alpha, a, b, beta, c,
                                    DegradeEvent::Overloaded);
  }

  // Per-descriptor-class degradation breaker.
  std::size_t slot = 0;
  bool probe = false;
  if (breaker_.enabled()) {
    slot = PlanKeyHash{}(gemm_plan_key<T, Bytes>(shape, layout));
    switch (breaker_.admit(slot)) {
    case resilience::BreakerDecision::RefRoute:
      return ref_route_gemm<T, Bytes>(shape, alpha, a, b, beta, c,
                                      DegradeEvent::BreakerOpen);
    case resilience::BreakerDecision::Probe:
      probe = true;
      break;
    case resilience::BreakerDecision::Allow:
      break;
    }
    if (probe) {
      try {
        IATF_FAULT_POINT("resilience.probe", ::iatf::Status::Internal);
      } catch (...) {
        // A failed probe re-opens the slot; the call is still served.
        record_breaker(slot, /*degraded=*/true, /*probe=*/true);
        return ref_route_gemm<T, Bytes>(shape, alpha, a, b, beta, c,
                                        DegradeEvent::BreakerOpen);
      }
    }
  }

  try {
    BatchHealth health;
    if (policy == ExecPolicy::Fast) {
      auto plan = plan_gemm<T, Bytes>(shape, layout);
      if (kernel_verification() && !ensure_verified<T, Bytes>(*plan)) {
        health = ref_route_gemm<T, Bytes>(shape, alpha, a, b, beta, c,
                                          DegradeEvent::QuarantinedKernel);
      } else {
        if (pool != nullptr) {
          plan->execute_parallel(a, b, c, alpha, beta, *pool, nullptr,
                                 deadline);
        } else {
          plan->execute(a, b, c, alpha, beta, nullptr, deadline);
        }
        health.batch = shape.batch;
      }
    } else {
      health = guarded_gemm<T, Bytes>(shape, alpha, a, b, beta, c, policy,
                                      pool, deadline, layout);
    }
    if (breaker_.enabled()) {
      record_breaker(slot, health.events != DegradeEvent::None, probe);
    }
    return health;
  } catch (const Error& e) {
    if (e.status() == Status::Timeout) {
      timeout_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    if (breaker_.enabled()) {
      record_breaker(slot, /*degraded=*/true, probe);
    }
    throw;
  } catch (...) {
    if (breaker_.enabled()) {
      record_breaker(slot, /*degraded=*/true, probe);
    }
    throw;
  }
}

template <class T, int Bytes>
BatchHealth Engine::guarded_gemm(const GemmShape& shape, T alpha,
                                 const CompactBuffer<T>& a,
                                 const CompactBuffer<T>& b, T beta,
                                 CompactBuffer<T>& c, ExecPolicy policy,
                                 ThreadPool* pool, const Deadline* deadline,
                                 std::uint8_t layout) {
  using R = real_t<T>;
  BatchHealth health;
  health.batch = shape.batch;
  const bool fallback = policy == ExecPolicy::Fallback;

  // C is read (beta) and written by the fast path, so a retry needs the
  // pre-call values. Snapshot only when we are allowed to retry.
  std::vector<R> snapshot;
  if (fallback) {
    snapshot.assign(c.data(), c.data() + c.size());
  }

  // Transient-failure retry (Fallback only: a retry needs the snapshot).
  const int max_attempts =
      fallback ? std::max(1, retry_attempts_.load(std::memory_order_relaxed))
               : 1;
  std::chrono::nanoseconds delay(
      retry_base_ns_.load(std::memory_order_relaxed));
  const std::chrono::nanoseconds delay_cap = delay * 64;

  HealthRecorder rec(shape.batch);
  for (int attempt = 1;; ++attempt) {
    try {
      auto plan = plan_gemm<T, Bytes>(shape, layout);
      if (kernel_verification() && !ensure_verified<T, Bytes>(*plan)) {
        // Quarantine is detected before execution, so C still holds the
        // original values and the reference path applies beta directly.
        return ref_route_gemm<T, Bytes>(shape, alpha, a, b, beta, c,
                                        DegradeEvent::QuarantinedKernel);
      }
      if (pool != nullptr) {
        plan->execute_parallel(a, b, c, alpha, beta, *pool, &rec, deadline);
      } else {
        plan->execute(a, b, c, alpha, beta, &rec, deadline);
      }
      break;
    } catch (...) {
      if (!fallback) {
        throw; // Check: observe-only, failures still propagate
      }
      // rethrows InvalidArg and Timeout
      const DegradeEvent event = classify_failure();
      const bool transient = event == DegradeEvent::AllocFailure ||
                             event == DegradeEvent::WorkerFailure;
      if (transient && attempt < max_attempts &&
          (deadline == nullptr || !deadline->expired())) {
        std::copy(snapshot.begin(), snapshot.end(), c.data());
        rec = HealthRecorder(shape.batch);
        const std::uint64_t seq =
            retries_.fetch_add(1, std::memory_order_relaxed);
        backoff_sleep(resilience::jittered_backoff(
                          delay,
                          retry_seed_.load(std::memory_order_relaxed), seq),
                      deadline);
        delay = std::min(delay * 2, delay_cap);
        continue;
      }
      validate_gemm_fallback(shape, a, b, c);
      std::copy(snapshot.begin(), snapshot.end(), c.data());
      for (index_t lane = 0; lane < shape.batch; ++lane) {
        ref_gemm_lane(shape, alpha, a, b, beta, c, lane);
      }
      health.events |= event;
      health.fallback = shape.batch;
      health.first_fallback = shape.batch > 0 ? 0 : -1;
      degraded_calls_.fetch_add(1, std::memory_order_relaxed);
      fallback_lanes_.fetch_add(
          static_cast<std::uint64_t>(health.fallback),
          std::memory_order_relaxed);
      return health;
    }
  }

  rec.fill(health);
  if (health.nonfinite != 0) {
    health.events |= DegradeEvent::NumericalHazard;
    if (fallback) {
      for (index_t lane = 0; lane < shape.batch; ++lane) {
        if (!rec.flagged(lane)) {
          continue;
        }
        restore_lane(c, snapshot, lane);
        ref_gemm_lane(shape, alpha, a, b, beta, c, lane);
        if (health.first_fallback < 0) {
          health.first_fallback = lane;
        }
        ++health.fallback;
      }
      if (health.fallback > 0) {
        degraded_calls_.fetch_add(1, std::memory_order_relaxed);
        fallback_lanes_.fetch_add(
            static_cast<std::uint64_t>(health.fallback),
            std::memory_order_relaxed);
      }
    }
  }
  return health;
}

template <class T, int Bytes>
BatchHealth Engine::trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                         const CompactBuffer<T>& a, CompactBuffer<T>& b) {
  return trsm_at<T, Bytes>(side, uplo, op_a, diag, alpha, a, b,
                           /*layout=*/0);
}

template <class T, int Bytes>
BatchHealth Engine::trsm_at(Side side, Uplo uplo, Op op_a, Diag diag,
                            T alpha, const CompactBuffer<T>& a,
                            CompactBuffer<T>& b, std::uint8_t layout) {
  TrsmShape shape;
  shape.m = b.rows();
  shape.n = b.cols();
  shape.side = side;
  shape.uplo = uplo;
  shape.op_a = op_a;
  shape.diag = diag;
  shape.batch = b.batch();
  note_width_call(Bytes);

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  ThreadPool* pool = pool_.load(std::memory_order_relaxed);
  const std::int64_t budget = deadline_ns_.load(std::memory_order_relaxed);
  Deadline deadline_at;
  const Deadline* deadline = nullptr;
  if (budget > 0) {
    deadline_at = Deadline::in(std::chrono::nanoseconds(budget));
    deadline = &deadline_at;
  }

  const Admit admitted = admit_call(deadline);
  struct Release {
    Engine* engine;
    ~Release() { engine->release_call(); }
  } release{this};
  if (admitted == Admit::RefRoute) {
    return ref_route_trsm<T, Bytes>(shape, alpha, a, b,
                                    DegradeEvent::Overloaded);
  }

  std::size_t slot = 0;
  bool probe = false;
  if (breaker_.enabled()) {
    slot = PlanKeyHash{}(trsm_plan_key<T, Bytes>(shape, layout));
    switch (breaker_.admit(slot)) {
    case resilience::BreakerDecision::RefRoute:
      return ref_route_trsm<T, Bytes>(shape, alpha, a, b,
                                      DegradeEvent::BreakerOpen);
    case resilience::BreakerDecision::Probe:
      probe = true;
      break;
    case resilience::BreakerDecision::Allow:
      break;
    }
    if (probe) {
      try {
        IATF_FAULT_POINT("resilience.probe", ::iatf::Status::Internal);
      } catch (...) {
        record_breaker(slot, /*degraded=*/true, /*probe=*/true);
        return ref_route_trsm<T, Bytes>(shape, alpha, a, b,
                                        DegradeEvent::BreakerOpen);
      }
    }
  }

  try {
    BatchHealth health;
    if (policy == ExecPolicy::Fast) {
      auto plan = plan_trsm<T, Bytes>(shape, layout);
      if (kernel_verification() && !ensure_verified<T, Bytes>(*plan)) {
        health = ref_route_trsm<T, Bytes>(shape, alpha, a, b,
                                          DegradeEvent::QuarantinedKernel);
      } else {
        if (pool != nullptr) {
          plan->execute_parallel(a, b, alpha, *pool, nullptr, deadline);
        } else {
          plan->execute(a, b, alpha, nullptr, deadline);
        }
        health.batch = shape.batch;
      }
    } else {
      health = guarded_trsm<T, Bytes>(shape, alpha, a, b, policy, pool,
                                      deadline, layout);
    }
    if (breaker_.enabled()) {
      record_breaker(slot, health.events != DegradeEvent::None, probe);
    }
    return health;
  } catch (const Error& e) {
    if (e.status() == Status::Timeout) {
      timeout_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    if (breaker_.enabled()) {
      record_breaker(slot, /*degraded=*/true, probe);
    }
    throw;
  } catch (...) {
    if (breaker_.enabled()) {
      record_breaker(slot, /*degraded=*/true, probe);
    }
    throw;
  }
}

template <class T, int Bytes>
BatchHealth Engine::guarded_trsm(const TrsmShape& shape, T alpha,
                                 const CompactBuffer<T>& a,
                                 CompactBuffer<T>& b, ExecPolicy policy,
                                 ThreadPool* pool, const Deadline* deadline,
                                 std::uint8_t layout) {
  using R = real_t<T>;
  BatchHealth health;
  health.batch = shape.batch;
  const bool fallback = policy == ExecPolicy::Fallback;

  // TRSM overwrites B with X, so a retry needs the original right-hand
  // side back. Snapshot only when we are allowed to retry.
  std::vector<R> snapshot;
  if (fallback) {
    snapshot.assign(b.data(), b.data() + b.size());
  }

  const int max_attempts =
      fallback ? std::max(1, retry_attempts_.load(std::memory_order_relaxed))
               : 1;
  std::chrono::nanoseconds delay(
      retry_base_ns_.load(std::memory_order_relaxed));
  const std::chrono::nanoseconds delay_cap = delay * 64;

  HealthRecorder rec(shape.batch);
  for (int attempt = 1;; ++attempt) {
    try {
      auto plan = plan_trsm<T, Bytes>(shape, layout);
      if (kernel_verification() && !ensure_verified<T, Bytes>(*plan)) {
        // Quarantine is detected before execution: B still holds the
        // original right-hand side.
        return ref_route_trsm<T, Bytes>(shape, alpha, a, b,
                                        DegradeEvent::QuarantinedKernel);
      }
      if (pool != nullptr) {
        plan->execute_parallel(a, b, alpha, *pool, &rec, deadline);
      } else {
        plan->execute(a, b, alpha, &rec, deadline);
      }
      break;
    } catch (...) {
      if (!fallback) {
        throw; // Check: observe-only, failures still propagate
      }
      // rethrows InvalidArg and Timeout
      const DegradeEvent event = classify_failure();
      const bool transient = event == DegradeEvent::AllocFailure ||
                             event == DegradeEvent::WorkerFailure;
      if (transient && attempt < max_attempts &&
          (deadline == nullptr || !deadline->expired())) {
        std::copy(snapshot.begin(), snapshot.end(), b.data());
        rec = HealthRecorder(shape.batch);
        const std::uint64_t seq =
            retries_.fetch_add(1, std::memory_order_relaxed);
        backoff_sleep(resilience::jittered_backoff(
                          delay,
                          retry_seed_.load(std::memory_order_relaxed), seq),
                      deadline);
        delay = std::min(delay * 2, delay_cap);
        continue;
      }
      validate_trsm_fallback(shape, a, b);
      std::copy(snapshot.begin(), snapshot.end(), b.data());
      for (index_t lane = 0; lane < shape.batch; ++lane) {
        ref_trsm_lane(shape, alpha, a, b, lane);
      }
      health.events |= event;
      health.fallback = shape.batch;
      health.first_fallback = shape.batch > 0 ? 0 : -1;
      degraded_calls_.fetch_add(1, std::memory_order_relaxed);
      fallback_lanes_.fetch_add(
          static_cast<std::uint64_t>(health.fallback),
          std::memory_order_relaxed);
      return health;
    }
  }

  rec.fill(health);
  if (health.nonfinite != 0 || health.singular != 0) {
    health.events |= DegradeEvent::NumericalHazard;
    if (fallback) {
      for (index_t lane = 0; lane < shape.batch; ++lane) {
        if (!rec.flagged(lane)) {
          continue;
        }
        restore_lane(b, snapshot, lane);
        ref_trsm_lane(shape, alpha, a, b, lane);
        if (health.first_fallback < 0) {
          health.first_fallback = lane;
        }
        ++health.fallback;
      }
      if (health.fallback > 0) {
        degraded_calls_.fetch_add(1, std::memory_order_relaxed);
        fallback_lanes_.fetch_add(
            static_cast<std::uint64_t>(health.fallback),
            std::memory_order_relaxed);
      }
    }
  }
  return health;
}

void Engine::record_grouped_plans(std::size_t distinct) noexcept {
  // Bucket upper bounds: 1, 2, 4, 8, inf (EngineStats doc).
  std::size_t bucket = 4;
  if (distinct <= 1) {
    bucket = 0;
  } else if (distinct == 2) {
    bucket = 1;
  } else if (distinct <= 4) {
    bucket = 2;
  } else if (distinct <= 8) {
    bucket = 3;
  }
  grouped_plan_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
}

template <class T, int Bytes>
std::vector<BatchHealth>
Engine::gemm_grouped(std::span<const sched::GemmSegment<T>> segments) {
  using R = real_t<T>;
  grouped_calls_.fetch_add(1, std::memory_order_relaxed);
  note_width_call(Bytes);
  const std::size_t count = segments.size();
  std::vector<BatchHealth> healths(count);
  if (count == 0) {
    return healths;
  }

  std::vector<GemmShape> shapes(count);
  std::vector<sched::ClassKey> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    const sched::GemmSegment<T>& seg = segments[i];
    IATF_CHECK(seg.a != nullptr && seg.b != nullptr && seg.c != nullptr,
               "gemm_grouped: segment with a null buffer");
    GemmShape& s = shapes[i];
    s.m = seg.c->rows();
    s.n = seg.c->cols();
    s.k = seg.op_a == Op::NoTrans ? seg.a->cols() : seg.a->rows();
    s.op_a = seg.op_a;
    s.op_b = seg.op_b;
    s.batch = seg.c->batch();
    healths[i].batch = s.batch;
    sched::ClassKey& key = keys[i];
    key.op = 'g';
    key.m = s.m;
    key.n = s.n;
    key.k = s.k;
    key.op_a = static_cast<std::uint8_t>(s.op_a);
    key.op_b = static_cast<std::uint8_t>(s.op_b);
    key.batch = s.batch;
  }

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  ThreadPool* pool = pool_.load(std::memory_order_relaxed);
  const std::int64_t budget = deadline_ns_.load(std::memory_order_relaxed);
  Deadline deadline_at;
  const Deadline* deadline = nullptr;
  if (budget > 0) {
    deadline_at = Deadline::in(std::chrono::nanoseconds(budget));
    deadline = &deadline_at;
  }

  const Admit admitted = admit_call(deadline);
  struct Release {
    Engine* engine;
    ~Release() { engine->release_call(); }
  } release{this};

  // Serve one segment entirely on the scalar reference path.
  const auto route_segment = [&](std::size_t i, DegradeEvent event) {
    const sched::GemmSegment<T>& seg = segments[i];
    validate_gemm_fallback(shapes[i], *seg.a, *seg.b, *seg.c);
    for (index_t lane = 0; lane < shapes[i].batch; ++lane) {
      ref_gemm_lane(shapes[i], seg.alpha, *seg.a, *seg.b, seg.beta,
                    *seg.c, lane);
    }
    healths[i].events |= event;
    healths[i].fallback = shapes[i].batch;
    healths[i].first_fallback = shapes[i].batch > 0 ? 0 : -1;
  };

  try {
    const bool guarded = policy != ExecPolicy::Fast;
    const bool fallback = policy == ExecPolicy::Fallback;

    if (admitted == Admit::RefRoute) {
      std::uint64_t lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        route_segment(i, DegradeEvent::Overloaded);
        lanes += static_cast<std::uint64_t>(shapes[i].batch);
      }
      degraded_calls_.fetch_add(1, std::memory_order_relaxed);
      fallback_lanes_.fetch_add(lanes, std::memory_order_relaxed);
      ref_routed_calls_.fetch_add(1, std::memory_order_relaxed);
      return healths;
    }

    // Snapshots and recorders are captured BEFORE any binning/planning
    // so the whole-call fallback below can restore even when the
    // scheduler or the planner throws.
    std::vector<std::unique_ptr<HealthRecorder>> recs(count);
    std::vector<std::vector<R>> snapshots(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (guarded) {
        recs[i] = std::make_unique<HealthRecorder>(shapes[i].batch);
      }
      if (fallback) {
        const CompactBuffer<T>& c = *segments[i].c;
        snapshots[i].assign(c.data(), c.data() + c.size());
      }
    }

    std::vector<std::shared_ptr<const plan::GemmPlan<T, Bytes>>> plans(
        count);
    // Per-descriptor-class degradation routing: BreakerOpen or
    // QuarantinedKernel sends just that class to the reference path while
    // the other classes keep their fast path.
    std::vector<DegradeEvent> routed(count, DegradeEvent::None);
    struct ClassGate {
      std::size_t slot = 0;
      bool probe = false;
      std::vector<std::size_t> segs;
    };
    std::vector<ClassGate> gates;

    try {
      // One plan resolution per distinct descriptor; segments in the same
      // size class share the shared_ptr, and single-flight collapses
      // concurrent cold misses exactly as for the fixed-size path.
      const std::vector<sched::SizeClass> classes =
          sched::bin_by_descriptor(keys);
      for (const sched::SizeClass& cls : classes) {
        const GemmShape& cshape = shapes[cls.segments.front()];
        std::size_t slot = 0;
        bool probe = false;
        bool route = false;
        if (breaker_.enabled()) {
          slot = PlanKeyHash{}(gemm_plan_key<T, Bytes>(cshape));
          switch (breaker_.admit(slot)) {
          case resilience::BreakerDecision::RefRoute:
            route = true;
            break;
          case resilience::BreakerDecision::Probe:
            probe = true;
            try {
              IATF_FAULT_POINT("resilience.probe",
                               ::iatf::Status::Internal);
            } catch (...) {
              record_breaker(slot, /*degraded=*/true, /*probe=*/true);
              probe = false;
              route = true;
            }
            break;
          case resilience::BreakerDecision::Allow:
            break;
          }
        }
        if (route) {
          for (const std::size_t idx : cls.segments) {
            routed[idx] = DegradeEvent::BreakerOpen;
          }
          continue;
        }
        auto plan = plan_gemm<T, Bytes>(cshape);
        if (kernel_verification() && !ensure_verified<T, Bytes>(*plan)) {
          for (const std::size_t idx : cls.segments) {
            routed[idx] = DegradeEvent::QuarantinedKernel;
          }
          if (breaker_.enabled()) {
            record_breaker(slot, /*degraded=*/true, probe);
          }
          continue;
        }
        for (const std::size_t idx : cls.segments) {
          plans[idx] = plan;
        }
        gates.push_back(ClassGate{slot, probe, cls.segments});
      }
      record_grouped_plans(classes.size());

      // Ref-route the degraded classes up front; they are independent of
      // the fast-path segments below.
      std::uint64_t route_lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (routed[i] != DegradeEvent::None) {
          route_segment(i, routed[i]);
          route_lanes += static_cast<std::uint64_t>(shapes[i].batch);
        }
      }
      if (route_lanes > 0) {
        degraded_calls_.fetch_add(1, std::memory_order_relaxed);
        fallback_lanes_.fetch_add(route_lanes, std::memory_order_relaxed);
        ref_routed_calls_.fetch_add(1, std::memory_order_relaxed);
      }

      if (pool != nullptr) {
        // Interleave per-segment batch-slice work items round-robin
        // across segments so the pool alternates between size classes.
        const index_t grain_env = tune::env_group_grain();
        std::vector<sched::SegmentExtent> extents(count);
        for (std::size_t i = 0; i < count; ++i) {
          if (routed[i] != DegradeEvent::None) {
            continue; // already served on the reference path
          }
          extents[i].groups = segments[i].c->groups();
          const index_t tuned =
              grain_env > 0 ? grain_env : plans[i]->chunk_groups();
          extents[i].item_groups = sched::item_granularity(
              extents[i].groups, plans[i]->slice_groups(), tuned,
              static_cast<index_t>(pool->size()));
          if (extents[i].groups == 0) {
            // No work item will touch this segment: validate it here so
            // caller bugs surface identically in both execution modes.
            const sched::GemmSegment<T>& seg = segments[i];
            plans[i]->execute(*seg.a, *seg.b, *seg.c, seg.alpha, seg.beta,
                              nullptr, nullptr);
          }
        }
        const std::vector<sched::WorkItem> items =
            sched::interleave_slices(extents);
        pool->parallel_for(
            0, static_cast<index_t>(items.size()),
            [&](index_t ib, index_t ie) {
              for (index_t ii = ib; ii < ie; ++ii) {
                const sched::WorkItem& it =
                    items[static_cast<std::size_t>(ii)];
                const sched::GemmSegment<T>& seg = segments[it.segment];
                plans[it.segment]->execute_range(
                    *seg.a, *seg.b, *seg.c, seg.alpha, seg.beta,
                    it.g_begin, it.g_end,
                    guarded ? recs[it.segment].get() : nullptr, deadline);
              }
            },
            /*grain=*/1, deadline);
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          if (routed[i] != DegradeEvent::None) {
            continue;
          }
          const sched::GemmSegment<T>& seg = segments[i];
          plans[i]->execute(*seg.a, *seg.b, *seg.c, seg.alpha, seg.beta,
                            guarded ? recs[i].get() : nullptr, deadline);
        }
      }
    } catch (...) {
      if (!fallback) {
        for (const ClassGate& gate : gates) {
          record_breaker(gate.slot, /*degraded=*/true, gate.probe);
        }
        throw; // Fast/Check: failures still propagate
      }
      // rethrows InvalidArg and Timeout
      const DegradeEvent event = classify_failure();
      for (std::size_t i = 0; i < count; ++i) {
        validate_gemm_fallback(shapes[i], *segments[i].a, *segments[i].b,
                               *segments[i].c);
      }
      // Any segment may hold partial fast-path output; restore and
      // recompute every lane of every segment on the reference path.
      std::uint64_t lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        const sched::GemmSegment<T>& seg = segments[i];
        std::copy(snapshots[i].begin(), snapshots[i].end(),
                  seg.c->data());
        for (index_t lane = 0; lane < shapes[i].batch; ++lane) {
          ref_gemm_lane(shapes[i], seg.alpha, *seg.a, *seg.b, seg.beta,
                        *seg.c, lane);
        }
        healths[i].events |= event;
        healths[i].fallback = shapes[i].batch;
        healths[i].first_fallback = shapes[i].batch > 0 ? 0 : -1;
        lanes += static_cast<std::uint64_t>(shapes[i].batch);
      }
      degraded_calls_.fetch_add(1, std::memory_order_relaxed);
      fallback_lanes_.fetch_add(lanes, std::memory_order_relaxed);
      for (const ClassGate& gate : gates) {
        record_breaker(gate.slot, /*degraded=*/true, gate.probe);
      }
      return healths;
    }

    if (guarded) {
      std::uint64_t lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (routed[i] != DegradeEvent::None) {
          continue; // reference results; nothing to scan or repair
        }
        recs[i]->fill(healths[i]);
        if (healths[i].nonfinite == 0) {
          continue;
        }
        healths[i].events |= DegradeEvent::NumericalHazard;
        if (!fallback) {
          continue;
        }
        const sched::GemmSegment<T>& seg = segments[i];
        for (index_t lane = 0; lane < shapes[i].batch; ++lane) {
          if (!recs[i]->flagged(lane)) {
            continue;
          }
          restore_lane(*seg.c, snapshots[i], lane);
          ref_gemm_lane(shapes[i], seg.alpha, *seg.a, *seg.b, seg.beta,
                        *seg.c, lane);
          if (healths[i].first_fallback < 0) {
            healths[i].first_fallback = lane;
          }
          ++healths[i].fallback;
        }
        lanes += static_cast<std::uint64_t>(healths[i].fallback);
      }
      if (fallback && lanes > 0) {
        degraded_calls_.fetch_add(1, std::memory_order_relaxed);
        fallback_lanes_.fetch_add(lanes, std::memory_order_relaxed);
      }
    }
    for (const ClassGate& gate : gates) {
      bool degraded = false;
      for (const std::size_t idx : gate.segs) {
        degraded = degraded || healths[idx].events != DegradeEvent::None;
      }
      record_breaker(gate.slot, degraded, gate.probe);
    }
    return healths;
  } catch (const Error& e) {
    if (e.status() == Status::Timeout) {
      timeout_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    throw;
  }
}

template <class T, int Bytes>
std::vector<BatchHealth>
Engine::trsm_grouped(std::span<const sched::TrsmSegment<T>> segments) {
  using R = real_t<T>;
  grouped_calls_.fetch_add(1, std::memory_order_relaxed);
  note_width_call(Bytes);
  const std::size_t count = segments.size();
  std::vector<BatchHealth> healths(count);
  if (count == 0) {
    return healths;
  }

  std::vector<TrsmShape> shapes(count);
  std::vector<sched::ClassKey> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    const sched::TrsmSegment<T>& seg = segments[i];
    IATF_CHECK(seg.a != nullptr && seg.b != nullptr,
               "trsm_grouped: segment with a null buffer");
    TrsmShape& s = shapes[i];
    s.m = seg.b->rows();
    s.n = seg.b->cols();
    s.side = seg.side;
    s.uplo = seg.uplo;
    s.op_a = seg.op_a;
    s.diag = seg.diag;
    s.batch = seg.b->batch();
    healths[i].batch = s.batch;
    sched::ClassKey& key = keys[i];
    key.op = 't';
    key.m = s.m;
    key.n = s.n;
    key.op_a = static_cast<std::uint8_t>(s.op_a);
    key.side = static_cast<std::uint8_t>(s.side);
    key.uplo = static_cast<std::uint8_t>(s.uplo);
    key.diag = static_cast<std::uint8_t>(s.diag);
    key.batch = s.batch;
  }

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  ThreadPool* pool = pool_.load(std::memory_order_relaxed);
  const std::int64_t budget = deadline_ns_.load(std::memory_order_relaxed);
  Deadline deadline_at;
  const Deadline* deadline = nullptr;
  if (budget > 0) {
    deadline_at = Deadline::in(std::chrono::nanoseconds(budget));
    deadline = &deadline_at;
  }

  const Admit admitted = admit_call(deadline);
  struct Release {
    Engine* engine;
    ~Release() { engine->release_call(); }
  } release{this};

  const auto route_segment = [&](std::size_t i, DegradeEvent event) {
    const sched::TrsmSegment<T>& seg = segments[i];
    validate_trsm_fallback(shapes[i], *seg.a, *seg.b);
    for (index_t lane = 0; lane < shapes[i].batch; ++lane) {
      ref_trsm_lane(shapes[i], seg.alpha, *seg.a, *seg.b, lane);
    }
    healths[i].events |= event;
    healths[i].fallback = shapes[i].batch;
    healths[i].first_fallback = shapes[i].batch > 0 ? 0 : -1;
  };

  try {
    const bool guarded = policy != ExecPolicy::Fast;
    const bool fallback = policy == ExecPolicy::Fallback;

    if (admitted == Admit::RefRoute) {
      std::uint64_t lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        route_segment(i, DegradeEvent::Overloaded);
        lanes += static_cast<std::uint64_t>(shapes[i].batch);
      }
      degraded_calls_.fetch_add(1, std::memory_order_relaxed);
      fallback_lanes_.fetch_add(lanes, std::memory_order_relaxed);
      ref_routed_calls_.fetch_add(1, std::memory_order_relaxed);
      return healths;
    }

    // Snapshots and recorders are captured BEFORE any binning/planning
    // so the whole-call fallback below can restore even when the
    // scheduler or the planner throws.
    std::vector<std::unique_ptr<HealthRecorder>> recs(count);
    std::vector<std::vector<R>> snapshots(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (guarded) {
        recs[i] = std::make_unique<HealthRecorder>(shapes[i].batch);
      }
      if (fallback) {
        const CompactBuffer<T>& b = *segments[i].b;
        snapshots[i].assign(b.data(), b.data() + b.size());
      }
    }

    std::vector<std::shared_ptr<const plan::TrsmPlan<T, Bytes>>> plans(
        count);
    std::vector<DegradeEvent> routed(count, DegradeEvent::None);
    struct ClassGate {
      std::size_t slot = 0;
      bool probe = false;
      std::vector<std::size_t> segs;
    };
    std::vector<ClassGate> gates;

    try {
      const std::vector<sched::SizeClass> classes =
          sched::bin_by_descriptor(keys);
      for (const sched::SizeClass& cls : classes) {
        const TrsmShape& cshape = shapes[cls.segments.front()];
        std::size_t slot = 0;
        bool probe = false;
        bool route = false;
        if (breaker_.enabled()) {
          slot = PlanKeyHash{}(trsm_plan_key<T, Bytes>(cshape));
          switch (breaker_.admit(slot)) {
          case resilience::BreakerDecision::RefRoute:
            route = true;
            break;
          case resilience::BreakerDecision::Probe:
            probe = true;
            try {
              IATF_FAULT_POINT("resilience.probe",
                               ::iatf::Status::Internal);
            } catch (...) {
              record_breaker(slot, /*degraded=*/true, /*probe=*/true);
              probe = false;
              route = true;
            }
            break;
          case resilience::BreakerDecision::Allow:
            break;
          }
        }
        if (route) {
          for (const std::size_t idx : cls.segments) {
            routed[idx] = DegradeEvent::BreakerOpen;
          }
          continue;
        }
        auto plan = plan_trsm<T, Bytes>(cshape);
        if (kernel_verification() && !ensure_verified<T, Bytes>(*plan)) {
          for (const std::size_t idx : cls.segments) {
            routed[idx] = DegradeEvent::QuarantinedKernel;
          }
          if (breaker_.enabled()) {
            record_breaker(slot, /*degraded=*/true, probe);
          }
          continue;
        }
        for (const std::size_t idx : cls.segments) {
          plans[idx] = plan;
        }
        gates.push_back(ClassGate{slot, probe, cls.segments});
      }
      record_grouped_plans(classes.size());

      std::uint64_t route_lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (routed[i] != DegradeEvent::None) {
          route_segment(i, routed[i]);
          route_lanes += static_cast<std::uint64_t>(shapes[i].batch);
        }
      }
      if (route_lanes > 0) {
        degraded_calls_.fetch_add(1, std::memory_order_relaxed);
        fallback_lanes_.fetch_add(route_lanes, std::memory_order_relaxed);
        ref_routed_calls_.fetch_add(1, std::memory_order_relaxed);
      }

      if (pool != nullptr) {
        const index_t grain_env = tune::env_group_grain();
        std::vector<sched::SegmentExtent> extents(count);
        for (std::size_t i = 0; i < count; ++i) {
          if (routed[i] != DegradeEvent::None) {
            continue;
          }
          extents[i].groups = segments[i].b->groups();
          const index_t tuned =
              grain_env > 0 ? grain_env : plans[i]->chunk_groups();
          extents[i].item_groups = sched::item_granularity(
              extents[i].groups, plans[i]->slice_groups(), tuned,
              static_cast<index_t>(pool->size()));
          if (extents[i].groups == 0) {
            const sched::TrsmSegment<T>& seg = segments[i];
            plans[i]->execute(*seg.a, *seg.b, seg.alpha, nullptr, nullptr);
          }
        }
        const std::vector<sched::WorkItem> items =
            sched::interleave_slices(extents);
        pool->parallel_for(
            0, static_cast<index_t>(items.size()),
            [&](index_t ib, index_t ie) {
              for (index_t ii = ib; ii < ie; ++ii) {
                const sched::WorkItem& it =
                    items[static_cast<std::size_t>(ii)];
                const sched::TrsmSegment<T>& seg = segments[it.segment];
                plans[it.segment]->execute_range(
                    *seg.a, *seg.b, seg.alpha, it.g_begin, it.g_end,
                    guarded ? recs[it.segment].get() : nullptr, deadline);
              }
            },
            /*grain=*/1, deadline);
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          if (routed[i] != DegradeEvent::None) {
            continue;
          }
          const sched::TrsmSegment<T>& seg = segments[i];
          plans[i]->execute(*seg.a, *seg.b, seg.alpha,
                            guarded ? recs[i].get() : nullptr, deadline);
        }
      }
    } catch (...) {
      if (!fallback) {
        for (const ClassGate& gate : gates) {
          record_breaker(gate.slot, /*degraded=*/true, gate.probe);
        }
        throw; // Fast/Check: failures still propagate
      }
      // rethrows InvalidArg and Timeout
      const DegradeEvent event = classify_failure();
      for (std::size_t i = 0; i < count; ++i) {
        validate_trsm_fallback(shapes[i], *segments[i].a, *segments[i].b);
      }
      std::uint64_t lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        const sched::TrsmSegment<T>& seg = segments[i];
        std::copy(snapshots[i].begin(), snapshots[i].end(),
                  seg.b->data());
        for (index_t lane = 0; lane < shapes[i].batch; ++lane) {
          ref_trsm_lane(shapes[i], seg.alpha, *seg.a, *seg.b, lane);
        }
        healths[i].events |= event;
        healths[i].fallback = shapes[i].batch;
        healths[i].first_fallback = shapes[i].batch > 0 ? 0 : -1;
        lanes += static_cast<std::uint64_t>(shapes[i].batch);
      }
      degraded_calls_.fetch_add(1, std::memory_order_relaxed);
      fallback_lanes_.fetch_add(lanes, std::memory_order_relaxed);
      for (const ClassGate& gate : gates) {
        record_breaker(gate.slot, /*degraded=*/true, gate.probe);
      }
      return healths;
    }

    if (guarded) {
      std::uint64_t lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (routed[i] != DegradeEvent::None) {
          continue; // reference results; nothing to scan or repair
        }
        recs[i]->fill(healths[i]);
        if (healths[i].nonfinite == 0 && healths[i].singular == 0) {
          continue;
        }
        healths[i].events |= DegradeEvent::NumericalHazard;
        if (!fallback) {
          continue;
        }
        const sched::TrsmSegment<T>& seg = segments[i];
        for (index_t lane = 0; lane < shapes[i].batch; ++lane) {
          if (!recs[i]->flagged(lane)) {
            continue;
          }
          restore_lane(*seg.b, snapshots[i], lane);
          ref_trsm_lane(shapes[i], seg.alpha, *seg.a, *seg.b, lane);
          if (healths[i].first_fallback < 0) {
            healths[i].first_fallback = lane;
          }
          ++healths[i].fallback;
        }
        lanes += static_cast<std::uint64_t>(healths[i].fallback);
      }
      if (fallback && lanes > 0) {
        degraded_calls_.fetch_add(1, std::memory_order_relaxed);
        fallback_lanes_.fetch_add(lanes, std::memory_order_relaxed);
      }
    }
    for (const ClassGate& gate : gates) {
      bool degraded = false;
      for (const std::size_t idx : gate.segs) {
        degraded = degraded || healths[idx].events != DegradeEvent::None;
      }
      record_breaker(gate.slot, degraded, gate.probe);
    }
    return healths;
  } catch (const Error& e) {
    if (e.status() == Status::Timeout) {
      timeout_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    throw;
  }
}

plan::PlanTuning Engine::resolve_tuning(const TuningConfig& config,
                                        const tune::TuneKey& key,
                                        bool* from_table) const {
  *from_table = false;
  if (config.table != nullptr) {
    if (const tune::TuneRecord* rec = config.table->lookup(key)) {
      *from_table = true;
      return rec->tuning();
    }
  }
  if (config.has_manual) {
    return config.manual;
  }
  // Re-read per plan-cache miss: cheap, and it keeps the environment
  // overrides testable after clear_plan_cache().
  return tune::env_plan_tuning();
}

void Engine::reconfigure(std::shared_ptr<TuningConfig> next) {
  std::lock_guard<std::mutex> lock(config_mu_);
  // Ordering matters: bump the generation first (gating out every build
  // that resolved against the outgoing config), then wipe the shards, then
  // publish the new config. A build that loads the new config necessarily
  // inserts after the wipe; a build holding the old config sees a
  // generation mismatch and is dropped instead of repopulating the fresh
  // cache with stale tuning.
  next->generation =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> sl(shard.mu);
    shard.snapshot.store(std::shared_ptr<const PlanMap>(),
                         std::memory_order_release);
  }
  tuning_.store(std::shared_ptr<const TuningConfig>(std::move(next)),
                std::memory_order_release);
  tuned_.store(0, std::memory_order_relaxed);
}

void Engine::set_tuning_table(
    std::shared_ptr<const tune::TuningTable> table) {
  const auto current = tuning_.load(std::memory_order_acquire);
  auto next = std::make_shared<TuningConfig>(*current);
  next->table = std::move(table);
  reconfigure(std::move(next));
}

std::shared_ptr<const tune::TuningTable> Engine::tuning_table() const {
  return tuning_.load(std::memory_order_acquire)->table;
}

void Engine::set_plan_tuning(const plan::PlanTuning& tuning) {
  const auto current = tuning_.load(std::memory_order_acquire);
  auto next = std::make_shared<TuningConfig>(*current);
  next->manual = tuning;
  next->has_manual = true;
  reconfigure(std::move(next));
}

void Engine::clear_plan_tuning() {
  const auto current = tuning_.load(std::memory_order_acquire);
  auto next = std::make_shared<TuningConfig>(*current);
  next->manual = plan::PlanTuning{};
  next->has_manual = false;
  reconfigure(std::move(next));
}

plan::PlanTuning Engine::plan_tuning() const {
  const auto config = tuning_.load(std::memory_order_acquire);
  return config->has_manual ? config->manual : plan::PlanTuning{};
}

void Engine::set_plan_cache_capacity(std::size_t capacity) {
  IATF_CHECK(capacity >= 1, "engine: plan cache capacity must be >= 1");
  capacity_.store(capacity, std::memory_order_relaxed);
  const std::size_t cap = shard_capacity();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto old = shard.snapshot.load(std::memory_order_acquire);
    if (!old || old->size() <= cap) {
      continue;
    }
    auto next = std::make_shared<PlanMap>(*old);
    evict_to_capacity(*next, cap);
    shard.snapshot.store(std::shared_ptr<const PlanMap>(std::move(next)),
                         std::memory_order_release);
  }
}

std::size_t Engine::plan_cache_size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    if (auto map = shard.snapshot.load(std::memory_order_acquire)) {
      total += map->size();
    }
  }
  return total;
}

void Engine::clear_plan_cache() {
  const auto current = tuning_.load(std::memory_order_acquire);
  reconfigure(std::make_shared<TuningConfig>(*current));
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  builds_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.plan_cache_size = plan_cache_size();
  s.plan_cache_capacity = plan_cache_capacity();
  s.hits = plan_cache_hits();
  s.misses = plan_cache_misses();
  s.builds = plan_cache_builds();
  s.tuned = plan_cache_tuned();
  s.evictions = plan_cache_evictions();
  s.degraded_calls = static_cast<std::size_t>(
      degraded_calls_.load(std::memory_order_relaxed));
  s.fallback_lanes = static_cast<std::size_t>(
      fallback_lanes_.load(std::memory_order_relaxed));
  s.timeout_calls = static_cast<std::size_t>(
      timeout_calls_.load(std::memory_order_relaxed));
  s.grouped_calls = static_cast<std::size_t>(
      grouped_calls_.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < EngineStats::kGroupedPlanBuckets; ++i) {
    s.distinct_plans_per_call[i] = static_cast<std::size_t>(
        grouped_plan_hist_[i].load(std::memory_order_relaxed));
  }
  s.shed_calls = static_cast<std::size_t>(
      shed_calls_.load(std::memory_order_relaxed));
  s.ref_routed_calls = static_cast<std::size_t>(
      ref_routed_calls_.load(std::memory_order_relaxed));
  s.retries =
      static_cast<std::size_t>(retries_.load(std::memory_order_relaxed));
  s.packed_reuse_hits = static_cast<std::size_t>(
      packed_reuse_hits_.load(std::memory_order_relaxed));
  s.packed_repacks = static_cast<std::size_t>(
      packed_repacks_.load(std::memory_order_relaxed));
  s.verified_kernels = guard_.verified_count();
  s.quarantined_kernels = guard_.quarantined_count();
  s.breaker_transitions = breaker_.summary().transitions;
  s.width16_calls = static_cast<std::size_t>(
      width_calls_[0].load(std::memory_order_relaxed));
  s.width32_calls = static_cast<std::size_t>(
      width_calls_[1].load(std::memory_order_relaxed));
  s.width64_calls = static_cast<std::size_t>(
      width_calls_[2].load(std::memory_order_relaxed));
  return s;
}

void Engine::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  builds_.store(0, std::memory_order_relaxed);
  tuned_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  degraded_calls_.store(0, std::memory_order_relaxed);
  fallback_lanes_.store(0, std::memory_order_relaxed);
  timeout_calls_.store(0, std::memory_order_relaxed);
  grouped_calls_.store(0, std::memory_order_relaxed);
  for (auto& bucket : grouped_plan_hist_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  shed_calls_.store(0, std::memory_order_relaxed);
  ref_routed_calls_.store(0, std::memory_order_relaxed);
  retries_.store(0, std::memory_order_relaxed);
  packed_reuse_hits_.store(0, std::memory_order_relaxed);
  packed_repacks_.store(0, std::memory_order_relaxed);
  for (auto& w : width_calls_) {
    w.store(0, std::memory_order_relaxed);
  }
}

EngineHealth Engine::health() const {
  EngineHealth h;
  h.verified_kernels = guard_.verified_count();
  h.quarantined_kernels = guard_.quarantined_count();
  const resilience::CircuitBreaker::Summary s = breaker_.summary();
  h.breaker_closed = s.closed;
  h.breaker_open = s.open;
  h.breaker_half_open = s.half_open;
  h.breaker_transitions = s.transitions;
  h.inflight = inflight_.load(std::memory_order_relaxed);
  h.max_inflight = max_inflight_.load(std::memory_order_relaxed);
  h.shed_calls = static_cast<std::size_t>(
      shed_calls_.load(std::memory_order_relaxed));
  h.ref_routed_calls = static_cast<std::size_t>(
      ref_routed_calls_.load(std::memory_order_relaxed));
  h.retries =
      static_cast<std::size_t>(retries_.load(std::memory_order_relaxed));
  return h;
}

Engine::Admit Engine::admit_call(const Deadline* deadline) {
  const auto try_acquire = [this]() -> bool {
    const std::size_t max = max_inflight_.load(std::memory_order_relaxed);
    std::size_t cur = inflight_.load(std::memory_order_relaxed);
    for (;;) {
      if (max != 0 && cur >= max) {
        return false;
      }
      if (inflight_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_relaxed)) {
        return true;
      }
    }
  };
  if (try_acquire()) {
    return Admit::Run;
  }
  switch (overload_policy()) {
  case resilience::OverloadPolicy::ShedNewest:
    // The call never enters the engine: no inflight slot is taken, so
    // the caller must NOT pair this with release_call(). Engine::gemm
    // et al. construct their Release guard only after admit_call
    // returns, which gives exactly that pairing.
    shed_calls_.fetch_add(1, std::memory_order_relaxed);
    throw OverloadError(inflight_.load(std::memory_order_relaxed),
                        max_inflight_.load(std::memory_order_relaxed));
  case resilience::OverloadPolicy::DegradeToRef:
    inflight_.fetch_add(1, std::memory_order_relaxed);
    return Admit::RefRoute;
  case resilience::OverloadPolicy::Block:
    break;
  }
  std::unique_lock<std::mutex> lock(admit_mu_);
  for (;;) {
    if (try_acquire()) {
      return Admit::Run;
    }
    if (deadline != nullptr) {
      if (deadline->expired() ||
          admit_cv_.wait_until(lock, deadline->at) ==
              std::cv_status::timeout) {
        if (try_acquire()) {
          return Admit::Run;
        }
        // Counted here: the caller's Timeout accounting lives inside
        // its try block, which the call never reached.
        timeout_calls_.fetch_add(1, std::memory_order_relaxed);
        throw TimeoutError(0, 1);
      }
    } else {
      // Bounded wait instead of a bare wait(): a release_call or
      // set_max_inflight racing the predicate check can then delay the
      // re-check by at most one tick, never deadlock it.
      admit_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
}

void Engine::release_call() noexcept {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  if (max_inflight_.load(std::memory_order_relaxed) != 0) {
    // Empty critical section orders the decrement before any blocked
    // admitter's predicate re-check (classic lost-wakeup guard).
    { std::lock_guard<std::mutex> lock(admit_mu_); }
    admit_cv_.notify_one();
  }
}

template <class T, int Bytes>
BatchHealth Engine::ref_route_gemm(const GemmShape& shape, T alpha,
                                   const CompactBuffer<T>& a,
                                   const CompactBuffer<T>& b, T beta,
                                   CompactBuffer<T>& c, DegradeEvent event) {
  validate_gemm_fallback(shape, a, b, c);
  BatchHealth health;
  health.batch = shape.batch;
  for (index_t lane = 0; lane < shape.batch; ++lane) {
    ref_gemm_lane(shape, alpha, a, b, beta, c, lane);
  }
  health.events |= event;
  health.fallback = shape.batch;
  health.first_fallback = shape.batch > 0 ? 0 : -1;
  degraded_calls_.fetch_add(1, std::memory_order_relaxed);
  fallback_lanes_.fetch_add(static_cast<std::uint64_t>(shape.batch),
                            std::memory_order_relaxed);
  ref_routed_calls_.fetch_add(1, std::memory_order_relaxed);
  return health;
}

template <class T, int Bytes>
BatchHealth Engine::ref_route_trsm(const TrsmShape& shape, T alpha,
                                   const CompactBuffer<T>& a,
                                   CompactBuffer<T>& b, DegradeEvent event) {
  validate_trsm_fallback(shape, a, b);
  BatchHealth health;
  health.batch = shape.batch;
  for (index_t lane = 0; lane < shape.batch; ++lane) {
    ref_trsm_lane(shape, alpha, a, b, lane);
  }
  health.events |= event;
  health.fallback = shape.batch;
  health.first_fallback = shape.batch > 0 ? 0 : -1;
  degraded_calls_.fetch_add(1, std::memory_order_relaxed);
  fallback_lanes_.fetch_add(static_cast<std::uint64_t>(shape.batch),
                            std::memory_order_relaxed);
  ref_routed_calls_.fetch_add(1, std::memory_order_relaxed);
  return health;
}

template <class T, int Bytes, class Plan>
bool Engine::ensure_verified(const Plan& plan) {
  switch (plan.verify_state()) {
  case resilience::PlanVerify::Verified:
    return true;
  case resilience::PlanVerify::Quarantined:
    return false;
  case resilience::PlanVerify::Untested:
    break;
  }
  // First dispatch of this plan object: canary every still-untested
  // kernel it references. Concurrent first dispatches may both run the
  // same canary; the ledger transitions are idempotent, so the race only
  // costs a duplicate micro-canary, never an inconsistent verdict.
  bool ok = true;
  for (const resilience::KernelUse& use : plan.kernels_used()) {
    const resilience::KernelId id{use.kind, dtype_tag<T>(), Bytes, use.m,
                                  use.n};
    switch (guard_.state(id)) {
    case resilience::KernelState::Verified:
      continue;
    case resilience::KernelState::Quarantined:
      ok = false;
      continue;
    case resilience::KernelState::Untested:
      break;
    }
    if (verify_kernel<T, Bytes>(use)) {
      guard_.mark_verified(id);
    } else {
      guard_.mark_quarantined(id);
      journal_quarantine(id);
      ok = false;
    }
  }
  plan.set_verify_state(ok ? resilience::PlanVerify::Verified
                           : resilience::PlanVerify::Quarantined);
  if (!ok) {
    invalidate_quarantined_plans();
  }
  return ok;
}

template <class T, int Bytes>
bool Engine::verify_kernel(const resilience::KernelUse& use) {
  try {
    // The verification itself is a fault site (tests quarantine a chosen
    // kernel by arming it). Everything below runs with unrelated
    // injection suppressed: an armed "alloc" fault meant for the call
    // under test must be neither consumed by the canary nor allowed to
    // quarantine a good kernel.
    IATF_FAULT_POINT("resilience.verify", ::iatf::Status::Internal);
    fault::SuppressionScope suppress;
    switch (use.kind) {
    case 'g':
      return run_gemm_canary<T, Bytes>(use);
    case 't':
    case 'r':
      return run_trsm_canary<T, Bytes>(use);
    default:
      return true;
    }
  } catch (...) {
    return false; // a throwing kernel is as quarantined as a wrong one
  }
}

template <class T, int Bytes>
bool Engine::run_gemm_canary(const resilience::KernelUse& use) {
  using PlanT = plan::GemmPlan<T, Bytes>;
  GemmShape shape;
  shape.m = use.m;
  shape.n = use.n;
  shape.k = 3;
  shape.op_a = Op::NoTrans;
  shape.op_b = Op::NoTrans;
  shape.batch = PlanT::pack_width();
  // Built directly, not through the cache: canaries leave the hit/miss/
  // build counters untouched. Default tuning on an (m, n) within the
  // register-budget caps yields exactly one tile -- the kernel under
  // test, alone.
  const PlanT plan(shape, cache_, plan::PlanTuning{});
  const index_t pw = PlanT::pack_width();
  CompactBuffer<T> a(shape.m, shape.k, shape.batch, pw);
  CompactBuffer<T> b(shape.k, shape.n, shape.batch, pw);
  CompactBuffer<T> c(shape.m, shape.n, shape.batch, pw);
  fill_canary(a, 1);
  fill_canary(b, 2);
  fill_canary(c, 3);
  const index_t lda = std::max<index_t>(a.rows(), 1);
  const index_t ldb = std::max<index_t>(b.rows(), 1);
  const index_t ldc = std::max<index_t>(c.rows(), 1);
  // Pre-call C per lane, for the beta term of the reference result.
  std::vector<std::vector<T>> c0(static_cast<std::size_t>(shape.batch));
  for (index_t lane = 0; lane < shape.batch; ++lane) {
    auto& lane0 = c0[static_cast<std::size_t>(lane)];
    lane0.resize(static_cast<std::size_t>(c.rows() * c.cols()));
    c.export_colmajor(lane, lane0.data(), ldc);
  }
  const T alpha = T(0.5);
  const T beta = T(0.25);
  plan.execute(a, b, c, alpha, beta, nullptr, nullptr);

  std::vector<T> ta(static_cast<std::size_t>(a.rows() * a.cols()));
  std::vector<T> tb(static_cast<std::size_t>(b.rows() * b.cols()));
  std::vector<T> got(static_cast<std::size_t>(c.rows() * c.cols()));
  for (index_t lane = 0; lane < shape.batch; ++lane) {
    a.export_colmajor(lane, ta.data(), lda);
    b.export_colmajor(lane, tb.data(), ldb);
    c.export_colmajor(lane, got.data(), ldc);
    std::vector<T>& want = c0[static_cast<std::size_t>(lane)];
    ref::gemm(Op::NoTrans, Op::NoTrans, shape.m, shape.n, shape.k, alpha,
              ta.data(), lda, tb.data(), ldb, beta, want.data(), ldc);
    if (!canary_lane_matches(got, want)) {
      return false;
    }
  }
  return true;
}

template <class T, int Bytes>
bool Engine::run_trsm_canary(const resilience::KernelUse& use) {
  using PlanT = plan::TrsmPlan<T, Bytes>;
  // Attribution guard for rect kernels: the blocked canary below
  // exercises tri(m, n) too, so a broken tri partner would condemn an
  // innocent rect. Canary the tri first; if IT is broken, report the
  // rect as passing -- every plan dispatching rect(m, n) also dispatches
  // tri(m, n), whose own quarantine already taints the plan.
  if (use.kind == 'r' &&
      !run_trsm_canary<T, Bytes>(resilience::KernelUse{'t', use.m, use.n})) {
    return true;
  }
  TrsmShape shape;
  shape.side = Side::Left;
  shape.uplo = Uplo::Lower;
  shape.op_a = Op::NoTrans;
  shape.diag = Diag::NonUnit;
  shape.n = use.n;
  plan::PlanTuning tuning;
  if (use.kind == 'r') {
    // Two block rows of the rect's row size: the plan solves
    // tri(m, n) on the diagonal block and updates the second block row
    // through rect(m, n).
    shape.m = 2 * use.m;
    tuning.mc_cap = use.m;
    tuning.nc_cap = use.n;
  } else {
    shape.m = use.m; // small path: one triangular kernel, no blocking
  }
  shape.batch = PlanT::pack_width();
  const PlanT plan(shape, cache_, tuning);
  const index_t pw = PlanT::pack_width();
  CompactBuffer<T> a(shape.a_dim(), shape.a_dim(), shape.batch, pw);
  CompactBuffer<T> b(shape.m, shape.n, shape.batch, pw);
  fill_canary_triangle(a, 4);
  fill_canary(b, 5);
  const index_t lda = std::max<index_t>(a.rows(), 1);
  const index_t ldb = std::max<index_t>(b.rows(), 1);
  // Original right-hand side per lane; the plan solves in place.
  std::vector<std::vector<T>> b0(static_cast<std::size_t>(shape.batch));
  for (index_t lane = 0; lane < shape.batch; ++lane) {
    auto& lane0 = b0[static_cast<std::size_t>(lane)];
    lane0.resize(static_cast<std::size_t>(b.rows() * b.cols()));
    b.export_colmajor(lane, lane0.data(), ldb);
  }
  const T alpha = T(0.5);
  plan.execute(a, b, alpha, nullptr, nullptr);

  std::vector<T> ta(static_cast<std::size_t>(a.rows() * a.cols()));
  std::vector<T> got(static_cast<std::size_t>(b.rows() * b.cols()));
  for (index_t lane = 0; lane < shape.batch; ++lane) {
    a.export_colmajor(lane, ta.data(), lda);
    b.export_colmajor(lane, got.data(), ldb);
    std::vector<T>& want = b0[static_cast<std::size_t>(lane)];
    ref::trsm(shape.side, shape.uplo, shape.op_a, shape.diag, shape.m,
              shape.n, alpha, ta.data(), lda, want.data(), ldb);
    if (!canary_lane_matches(got, want)) {
      return false;
    }
  }
  return true;
}

void Engine::invalidate_quarantined_plans() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto old = shard.snapshot.load(std::memory_order_acquire);
    if (!old) {
      continue;
    }
    bool dirty = false;
    auto next = std::make_shared<PlanMap>();
    next->reserve(old->size());
    for (const auto& [key, entry] : *old) {
      if (guard_.any_quarantined(entry->kernels)) {
        dirty = true;
        continue; // drop: rebuilt via single-flight on the next miss
      }
      (*next)[key] = entry;
    }
    if (dirty) {
      shard.snapshot.store(std::shared_ptr<const PlanMap>(std::move(next)),
                           std::memory_order_release);
    }
  }
}

template <class T, int Bytes>
std::size_t Engine::self_test_type() {
  using Limits = kernels::KernelLimits<T>;
  std::size_t quarantined = 0;
  const auto check = [&](char kind, int m, int n) {
    const resilience::KernelId id{kind, dtype_tag<T>(), Bytes, m, n};
    switch (guard_.state(id)) {
    case resilience::KernelState::Quarantined:
      ++quarantined;
      return;
    case resilience::KernelState::Verified:
      return;
    case resilience::KernelState::Untested:
      break;
    }
    if (verify_kernel<T, Bytes>(resilience::KernelUse{kind, m, n})) {
      guard_.mark_verified(id);
    } else {
      guard_.mark_quarantined(id);
      journal_quarantine(id);
      ++quarantined;
    }
  };
  for (int m = 1; m <= Limits::gemm_max_mc; ++m) {
    for (int n = 1; n <= Limits::gemm_max_nc; ++n) {
      check('g', m, n);
    }
  }
  for (int m = 1; m <= Limits::tri_max_m; ++m) {
    for (int n = 1; n <= Limits::tri_max_nc; ++n) {
      check('t', m, n);
    }
  }
  for (int m = 1; m <= Limits::rect_max_mc; ++m) {
    for (int n = 1; n <= Limits::rect_max_nc; ++n) {
      check('r', m, n);
    }
  }
  return quarantined;
}

std::size_t Engine::self_test() {
  std::size_t quarantined = 0;
  quarantined += self_test_type<float, 16>();
  quarantined += self_test_type<double, 16>();
  quarantined += self_test_type<std::complex<float>, 16>();
  quarantined += self_test_type<std::complex<double>, 16>();
  quarantined += self_test_type<float, 32>();
  quarantined += self_test_type<double, 32>();
  quarantined += self_test_type<std::complex<float>, 32>();
  quarantined += self_test_type<std::complex<double>, 32>();
  quarantined += self_test_type<float, 64>();
  quarantined += self_test_type<double, 64>();
  quarantined += self_test_type<std::complex<float>, 64>();
  quarantined += self_test_type<std::complex<double>, 64>();
  if (quarantined > 0) {
    invalidate_quarantined_plans();
  }
  return quarantined;
}

template <class T, int Bytes>
resilience::BreakerState
Engine::gemm_breaker_state(const GemmShape& shape) const {
  return breaker_.slot_state(PlanKeyHash{}(gemm_plan_key<T, Bytes>(shape)));
}

template <class T, int Bytes>
resilience::BreakerState
Engine::trsm_breaker_state(const TrsmShape& shape) const {
  return breaker_.slot_state(PlanKeyHash{}(trsm_plan_key<T, Bytes>(shape)));
}

// --- Crash-consistent health ledger (DESIGN.md section 14) --------------

resilience::LedgerLoad Engine::set_health_ledger(const std::string& path) {
  auto ledger = std::make_shared<resilience::HealthLedger>(path);
  const resilience::LedgerLoad result = ledger->load();
  // Replay before publishing: journaling is suspended until the new
  // ledger is installed, so replayed quarantines are not re-appended.
  bool any_quarantine = false;
  for (const resilience::LedgerRecord& rec : ledger->records()) {
    switch (rec.kind) {
    case resilience::LedgerRecord::Kind::KernelQuarantine:
      // Replay only ever quarantines -- a ledger cannot mark anything
      // Verified, so "verify never resurrects" holds across restarts.
      guard_.mark_quarantined(rec.kernel);
      any_quarantine = true;
      break;
    case resilience::LedgerRecord::Kind::BreakerTrip:
    case resilience::LedgerRecord::Kind::WatchdogReclaim:
      // Restart posture for a recently-tripped class: probe before
      // trusting the fast path again. No-op while the breaker is
      // disabled (the record stays journaled for a configured restart).
      breaker_.seed_half_open(static_cast<std::size_t>(rec.slot));
      break;
    case resilience::LedgerRecord::Kind::Degrade:
      break; // informational: stats only
    }
  }
  if (any_quarantine) {
    invalidate_quarantined_plans();
  }
  {
    std::lock_guard<std::mutex> lk(ledger_mu_);
    ledger_ = std::move(ledger);
  }
  return result;
}

std::shared_ptr<resilience::HealthLedger> Engine::health_ledger() const {
  std::lock_guard<std::mutex> lk(ledger_mu_);
  return ledger_;
}

void Engine::journal_quarantine(const resilience::KernelId& id) {
  if (auto ledger = health_ledger()) {
    resilience::LedgerRecord rec;
    rec.kind = resilience::LedgerRecord::Kind::KernelQuarantine;
    rec.kernel = id;
    ledger->append(rec);
  }
}

void Engine::journal_breaker_trip(std::size_t slot_hash) {
  if (auto ledger = health_ledger()) {
    resilience::LedgerRecord rec;
    rec.kind = resilience::LedgerRecord::Kind::BreakerTrip;
    rec.slot = static_cast<std::uint64_t>(slot_hash);
    ledger->append(rec);
  }
}

void Engine::journal_watchdog(std::size_t slot_hash) {
  if (auto ledger = health_ledger()) {
    resilience::LedgerRecord rec;
    rec.kind = resilience::LedgerRecord::Kind::WatchdogReclaim;
    rec.slot = static_cast<std::uint64_t>(slot_hash);
    ledger->append(rec);
  }
}

void Engine::journal_degrade(unsigned events) {
  if (auto ledger = health_ledger()) {
    resilience::LedgerRecord rec;
    rec.kind = resilience::LedgerRecord::Kind::Degrade;
    rec.events = events;
    ledger->append(rec);
  }
}

void Engine::record_breaker(std::size_t slot_hash, bool degraded,
                            bool probe) {
  if (breaker_.record(slot_hash, degraded, probe)) {
    journal_breaker_trip(slot_hash);
  }
}

template <class T, int Bytes>
void Engine::trip_gemm_class(const GemmShape& shape, int cooldown_calls) {
  const std::size_t slot = PlanKeyHash{}(gemm_plan_key<T, Bytes>(shape));
  if (cooldown_calls < 0) {
    cooldown_calls = breaker_.config().cooldown;
  }
  breaker_.force_open(slot, cooldown_calls);
  journal_watchdog(slot);
  journal_degrade(static_cast<unsigned>(DegradeEvent::BreakerOpen));
}

template <class T, int Bytes>
void Engine::trip_trsm_class(const TrsmShape& shape, int cooldown_calls) {
  const std::size_t slot = PlanKeyHash{}(trsm_plan_key<T, Bytes>(shape));
  if (cooldown_calls < 0) {
    cooldown_calls = breaker_.config().cooldown;
  }
  breaker_.force_open(slot, cooldown_calls);
  journal_watchdog(slot);
  journal_degrade(static_cast<unsigned>(DegradeEvent::BreakerOpen));
}

Engine& Engine::default_engine() {
  // Function-local static: constructed on first use, destroyed in reverse
  // construction order during static destruction. ThreadPool::global()
  // (when used) is its own function-local static whose destructor joins
  // the workers, so by the time this engine is destroyed no worker can be
  // touching a cached plan. See the header for the full teardown contract.
  static Engine engine;
  return engine;
}

#define IATF_INSTANTIATE_ENGINE(T, Bytes)                                    \
  template std::shared_ptr<const plan::GemmPlan<T, Bytes>>                  \
  Engine::plan_gemm<T, Bytes>(const GemmShape&, std::uint8_t);              \
  template std::shared_ptr<const plan::TrsmPlan<T, Bytes>>                  \
  Engine::plan_trsm<T, Bytes>(const TrsmShape&, std::uint8_t);              \
  template std::shared_ptr<const factor::FactorPlan<T, Bytes>>              \
  Engine::plan_factor<T, Bytes>(const factor::FactorShape&, std::uint8_t);  \
  template BatchHealth Engine::gemm<T, Bytes>(                              \
      Op, Op, T, const CompactBuffer<T>&, const CompactBuffer<T>&, T,       \
      CompactBuffer<T>&);                                                   \
  template BatchHealth Engine::gemm_at<T, Bytes>(                           \
      Op, Op, T, const CompactBuffer<T>&, const CompactBuffer<T>&, T,       \
      CompactBuffer<T>&, std::uint8_t);                                     \
  template BatchHealth Engine::trsm<T, Bytes>(Side, Uplo, Op, Diag, T,      \
                                              const CompactBuffer<T>&,      \
                                              CompactBuffer<T>&);           \
  template BatchHealth Engine::trsm_at<T, Bytes>(                           \
      Side, Uplo, Op, Diag, T, const CompactBuffer<T>&, CompactBuffer<T>&,  \
      std::uint8_t);                                                        \
  template std::vector<BatchHealth> Engine::gemm_grouped<T, Bytes>(         \
      std::span<const sched::GemmSegment<T>>);                              \
  template std::vector<BatchHealth> Engine::trsm_grouped<T, Bytes>(         \
      std::span<const sched::TrsmSegment<T>>);                              \
  template resilience::BreakerState Engine::gemm_breaker_state<T, Bytes>(   \
      const GemmShape&) const;                                              \
  template resilience::BreakerState Engine::trsm_breaker_state<T, Bytes>(   \
      const TrsmShape&) const;                                              \
  template void Engine::trip_gemm_class<T, Bytes>(const GemmShape&, int);   \
  template void Engine::trip_trsm_class<T, Bytes>(const TrsmShape&, int);

IATF_INSTANTIATE_ENGINE(float, 16)
IATF_INSTANTIATE_ENGINE(double, 16)
IATF_INSTANTIATE_ENGINE(std::complex<float>, 16)
IATF_INSTANTIATE_ENGINE(std::complex<double>, 16)
IATF_INSTANTIATE_ENGINE(float, 32)
IATF_INSTANTIATE_ENGINE(double, 32)
IATF_INSTANTIATE_ENGINE(std::complex<float>, 32)
IATF_INSTANTIATE_ENGINE(std::complex<double>, 32)
IATF_INSTANTIATE_ENGINE(float, 64)
IATF_INSTANTIATE_ENGINE(double, 64)
IATF_INSTANTIATE_ENGINE(std::complex<float>, 64)
IATF_INSTANTIATE_ENGINE(std::complex<double>, 64)

#undef IATF_INSTANTIATE_ENGINE

} // namespace iatf
