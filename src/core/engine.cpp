#include "iatf/core/engine.hpp"

#include <algorithm>
#include <complex>
#include <exception>
#include <vector>

#include "iatf/common/error.hpp"
#include "iatf/common/fault_inject.hpp"
#include "iatf/ref/ref_blas.hpp"
#include "iatf/tune/descriptor.hpp"
#include "iatf/tune/tuning_table.hpp"

namespace iatf {
namespace {

template <class T> constexpr char dtype_tag() {
  return blas_prefix_v<T>[0];
}

bool site_prefix(const std::string& site, const char* prefix) {
  return site.rfind(prefix, 0) == 0;
}

/// Classify the in-flight exception as a degradation event. InvalidArg
/// errors are caller bugs and must never be silently degraded, so they are
/// rethrown; everything else maps to the event the fallback records.
DegradeEvent classify_failure() {
  try {
    throw;
  } catch (const fault::FaultInjected& f) {
    if (site_prefix(f.site(), "registry")) {
      return DegradeEvent::MissingKernel;
    }
    if (site_prefix(f.site(), "plan")) {
      return DegradeEvent::UnsupportedPlan;
    }
    if (site_prefix(f.site(), "threadpool")) {
      return DegradeEvent::WorkerFailure;
    }
    return DegradeEvent::AllocFailure;
  } catch (const Error& e) {
    switch (e.status()) {
    case Status::InvalidArg:
      throw;
    case Status::Unsupported:
      return DegradeEvent::UnsupportedPlan;
    case Status::AllocFailure:
      return DegradeEvent::AllocFailure;
    default:
      return DegradeEvent::WorkerFailure;
    }
  } catch (const std::bad_alloc&) {
    return DegradeEvent::AllocFailure;
  } catch (...) {
    return DegradeEvent::WorkerFailure;
  }
}

/// The fallback path reads the buffers directly, so it must re-validate
/// the consistency the plan normally checks -- plan construction may have
/// failed before any validation ran.
template <class T>
void validate_gemm_fallback(const GemmShape& s, const CompactBuffer<T>& a,
                            const CompactBuffer<T>& b,
                            const CompactBuffer<T>& c) {
  const bool ta = s.op_a != Op::NoTrans;
  const bool tb = s.op_b != Op::NoTrans;
  IATF_CHECK(s.m >= 0 && s.n >= 0 && s.k >= 0 && s.batch >= 0,
             "gemm: negative dimension");
  IATF_CHECK(a.rows() == (ta ? s.k : s.m) && a.cols() == (ta ? s.m : s.k),
             "gemm: operand A has mismatched dimensions");
  IATF_CHECK(b.rows() == (tb ? s.n : s.k) && b.cols() == (tb ? s.k : s.n),
             "gemm: operand B has mismatched dimensions");
  IATF_CHECK(a.batch() == s.batch && b.batch() == s.batch &&
                 c.batch() == s.batch,
             "gemm: operand batch sizes do not match");
}

template <class T>
void validate_trsm_fallback(const TrsmShape& s, const CompactBuffer<T>& a,
                            const CompactBuffer<T>& b) {
  IATF_CHECK(s.m >= 0 && s.n >= 0 && s.batch >= 0,
             "trsm: negative dimension");
  IATF_CHECK(a.rows() == s.a_dim() && a.cols() == s.a_dim(),
             "trsm: A must be a_dim x a_dim");
  IATF_CHECK(a.batch() == s.batch && b.batch() == s.batch,
             "trsm: operand batch sizes do not match");
}

/// Restore one lane of `buf` from a raw snapshot of its storage.
template <class T>
void restore_lane(CompactBuffer<T>& buf,
                  const std::vector<real_t<T>>& snapshot, index_t lane) {
  using R = real_t<T>;
  const index_t pw = buf.pack_width();
  const index_t g = lane / pw;
  const index_t l = lane % pw;
  const index_t es = buf.element_stride();
  const index_t elems = buf.rows() * buf.cols();
  R* gdata = buf.group_data(g);
  const R* sdata = snapshot.data() + g * buf.group_stride();
  for (index_t e = 0; e < elems; ++e) {
    gdata[e * es + l] = sdata[e * es + l];
    if constexpr (is_complex_v<T>) {
      gdata[e * es + pw + l] = sdata[e * es + pw + l];
    }
  }
}

/// Recompute one lane with the scalar reference GEMM. The lane's C must
/// hold the original (pre-call) values so beta applies correctly.
template <class T>
void ref_gemm_lane(const GemmShape& s, T alpha, const CompactBuffer<T>& a,
                   const CompactBuffer<T>& b, T beta, CompactBuffer<T>& c,
                   index_t lane) {
  const index_t lda = std::max<index_t>(a.rows(), 1);
  const index_t ldb = std::max<index_t>(b.rows(), 1);
  const index_t ldc = std::max<index_t>(c.rows(), 1);
  std::vector<T> ta(static_cast<std::size_t>(a.rows() * a.cols()));
  std::vector<T> tb(static_cast<std::size_t>(b.rows() * b.cols()));
  std::vector<T> tc(static_cast<std::size_t>(c.rows() * c.cols()));
  a.export_colmajor(lane, ta.data(), lda);
  b.export_colmajor(lane, tb.data(), ldb);
  c.export_colmajor(lane, tc.data(), ldc);
  ref::gemm(s.op_a, s.op_b, s.m, s.n, s.k, alpha, ta.data(), lda,
            tb.data(), ldb, beta, tc.data(), ldc);
  c.import_colmajor(lane, tc.data(), ldc);
}

/// Recompute one lane with the scalar reference TRSM. The lane's B must
/// hold the original right-hand side, not the partial fast-path solution.
template <class T>
void ref_trsm_lane(const TrsmShape& s, T alpha, const CompactBuffer<T>& a,
                   CompactBuffer<T>& b, index_t lane) {
  const index_t lda = std::max<index_t>(a.rows(), 1);
  const index_t ldb = std::max<index_t>(b.rows(), 1);
  std::vector<T> ta(static_cast<std::size_t>(a.rows() * a.cols()));
  std::vector<T> tb(static_cast<std::size_t>(b.rows() * b.cols()));
  a.export_colmajor(lane, ta.data(), lda);
  b.export_colmajor(lane, tb.data(), ldb);
  ref::trsm(s.side, s.uplo, s.op_a, s.diag, s.m, s.n, alpha, ta.data(),
            lda, tb.data(), ldb);
  b.import_colmajor(lane, tb.data(), ldb);
}

} // namespace

std::size_t Engine::PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  // FNV-1a over the key's fields.
  std::size_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(k.op) << 8 |
      static_cast<std::uint64_t>(k.dtype));
  mix(static_cast<std::uint64_t>(k.bytes));
  mix(static_cast<std::uint64_t>(k.m));
  mix(static_cast<std::uint64_t>(k.n));
  mix(static_cast<std::uint64_t>(k.k));
  mix(static_cast<std::uint64_t>(k.op_a) | static_cast<std::uint64_t>(k.op_b)
                                               << 8 |
      static_cast<std::uint64_t>(k.side) << 16 |
      static_cast<std::uint64_t>(k.uplo) << 24 |
      static_cast<std::uint64_t>(k.diag) << 32);
  mix(static_cast<std::uint64_t>(k.batch));
  return h;
}

template <class Plan, class Make>
std::shared_ptr<const Plan> Engine::lookup(const PlanKey& key, Make&& make) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++hits_;
    return std::static_pointer_cast<const Plan>(it->second);
  }
  ++misses_;
  auto plan = std::shared_ptr<const Plan>(make());
  plans_.emplace(key, plan);
  return plan;
}

template <class T, int Bytes>
std::shared_ptr<const plan::GemmPlan<T, Bytes>>
Engine::plan_gemm(const GemmShape& shape) {
  PlanKey key;
  key.op = 'g';
  key.dtype = dtype_tag<T>();
  key.bytes = Bytes;
  key.m = shape.m;
  key.n = shape.n;
  key.k = shape.k;
  key.op_a = static_cast<std::uint8_t>(shape.op_a);
  key.op_b = static_cast<std::uint8_t>(shape.op_b);
  key.batch = shape.batch;
  return lookup<plan::GemmPlan<T, Bytes>>(key, [&] {
    IATF_FAULT_POINT("plan.gemm", ::iatf::Status::Unsupported);
    bool from_table = false;
    const plan::PlanTuning tuning =
        resolve_tuning_locked(tune::gemm_key<T, Bytes>(shape), &from_table);
    if (from_table) {
      ++tuned_;
    }
    return new plan::GemmPlan<T, Bytes>(shape, cache_, tuning);
  });
}

template <class T, int Bytes>
std::shared_ptr<const plan::TrsmPlan<T, Bytes>>
Engine::plan_trsm(const TrsmShape& shape) {
  PlanKey key;
  key.op = 't';
  key.dtype = dtype_tag<T>();
  key.bytes = Bytes;
  key.m = shape.m;
  key.n = shape.n;
  key.op_a = static_cast<std::uint8_t>(shape.op_a);
  key.side = static_cast<std::uint8_t>(shape.side);
  key.uplo = static_cast<std::uint8_t>(shape.uplo);
  key.diag = static_cast<std::uint8_t>(shape.diag);
  key.batch = shape.batch;
  return lookup<plan::TrsmPlan<T, Bytes>>(key, [&] {
    IATF_FAULT_POINT("plan.trsm", ::iatf::Status::Unsupported);
    bool from_table = false;
    const plan::PlanTuning tuning =
        resolve_tuning_locked(tune::trsm_key<T, Bytes>(shape), &from_table);
    if (from_table) {
      ++tuned_;
    }
    return new plan::TrsmPlan<T, Bytes>(shape, cache_, tuning);
  });
}

template <class T, int Bytes>
BatchHealth Engine::gemm(Op op_a, Op op_b, T alpha, const CompactBuffer<T>& a,
                         const CompactBuffer<T>& b, T beta,
                         CompactBuffer<T>& c) {
  GemmShape shape;
  shape.m = c.rows();
  shape.n = c.cols();
  shape.k = op_a == Op::NoTrans ? a.cols() : a.rows();
  shape.op_a = op_a;
  shape.op_b = op_b;
  shape.batch = c.batch();

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  ThreadPool* pool = pool_.load(std::memory_order_relaxed);
  if (policy == ExecPolicy::Fast) {
    auto plan = plan_gemm<T, Bytes>(shape);
    if (pool != nullptr) {
      plan->execute_parallel(a, b, c, alpha, beta, *pool);
    } else {
      plan->execute(a, b, c, alpha, beta);
    }
    BatchHealth health;
    health.batch = shape.batch;
    return health;
  }
  return guarded_gemm<T, Bytes>(shape, alpha, a, b, beta, c, policy, pool);
}

template <class T, int Bytes>
BatchHealth Engine::guarded_gemm(const GemmShape& shape, T alpha,
                                 const CompactBuffer<T>& a,
                                 const CompactBuffer<T>& b, T beta,
                                 CompactBuffer<T>& c, ExecPolicy policy,
                                 ThreadPool* pool) {
  using R = real_t<T>;
  BatchHealth health;
  health.batch = shape.batch;
  const bool fallback = policy == ExecPolicy::Fallback;

  // C is read (beta) and written by the fast path, so a retry needs the
  // pre-call values. Snapshot only when we are allowed to retry.
  std::vector<R> snapshot;
  if (fallback) {
    snapshot.assign(c.data(), c.data() + c.size());
  }

  HealthRecorder rec(shape.batch);
  try {
    auto plan = plan_gemm<T, Bytes>(shape);
    if (pool != nullptr) {
      plan->execute_parallel(a, b, c, alpha, beta, *pool, &rec);
    } else {
      plan->execute(a, b, c, alpha, beta, &rec);
    }
  } catch (...) {
    if (!fallback) {
      throw; // Check: observe-only, failures still propagate
    }
    const DegradeEvent event = classify_failure(); // rethrows InvalidArg
    validate_gemm_fallback(shape, a, b, c);
    std::copy(snapshot.begin(), snapshot.end(), c.data());
    for (index_t lane = 0; lane < shape.batch; ++lane) {
      ref_gemm_lane(shape, alpha, a, b, beta, c, lane);
    }
    health.events |= event;
    health.fallback = shape.batch;
    health.first_fallback = shape.batch > 0 ? 0 : -1;
    return health;
  }

  rec.fill(health);
  if (health.nonfinite != 0) {
    health.events |= DegradeEvent::NumericalHazard;
    if (fallback) {
      for (index_t lane = 0; lane < shape.batch; ++lane) {
        if (!rec.flagged(lane)) {
          continue;
        }
        restore_lane(c, snapshot, lane);
        ref_gemm_lane(shape, alpha, a, b, beta, c, lane);
        if (health.first_fallback < 0) {
          health.first_fallback = lane;
        }
        ++health.fallback;
      }
    }
  }
  return health;
}

template <class T, int Bytes>
BatchHealth Engine::trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                         const CompactBuffer<T>& a, CompactBuffer<T>& b) {
  TrsmShape shape;
  shape.m = b.rows();
  shape.n = b.cols();
  shape.side = side;
  shape.uplo = uplo;
  shape.op_a = op_a;
  shape.diag = diag;
  shape.batch = b.batch();

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  ThreadPool* pool = pool_.load(std::memory_order_relaxed);
  if (policy == ExecPolicy::Fast) {
    auto plan = plan_trsm<T, Bytes>(shape);
    if (pool != nullptr) {
      plan->execute_parallel(a, b, alpha, *pool);
    } else {
      plan->execute(a, b, alpha);
    }
    BatchHealth health;
    health.batch = shape.batch;
    return health;
  }
  return guarded_trsm<T, Bytes>(shape, alpha, a, b, policy, pool);
}

template <class T, int Bytes>
BatchHealth Engine::guarded_trsm(const TrsmShape& shape, T alpha,
                                 const CompactBuffer<T>& a,
                                 CompactBuffer<T>& b, ExecPolicy policy,
                                 ThreadPool* pool) {
  using R = real_t<T>;
  BatchHealth health;
  health.batch = shape.batch;
  const bool fallback = policy == ExecPolicy::Fallback;

  // TRSM overwrites B with X, so a retry needs the original right-hand
  // side back. Snapshot only when we are allowed to retry.
  std::vector<R> snapshot;
  if (fallback) {
    snapshot.assign(b.data(), b.data() + b.size());
  }

  HealthRecorder rec(shape.batch);
  try {
    auto plan = plan_trsm<T, Bytes>(shape);
    if (pool != nullptr) {
      plan->execute_parallel(a, b, alpha, *pool, &rec);
    } else {
      plan->execute(a, b, alpha, &rec);
    }
  } catch (...) {
    if (!fallback) {
      throw; // Check: observe-only, failures still propagate
    }
    const DegradeEvent event = classify_failure(); // rethrows InvalidArg
    validate_trsm_fallback(shape, a, b);
    std::copy(snapshot.begin(), snapshot.end(), b.data());
    for (index_t lane = 0; lane < shape.batch; ++lane) {
      ref_trsm_lane(shape, alpha, a, b, lane);
    }
    health.events |= event;
    health.fallback = shape.batch;
    health.first_fallback = shape.batch > 0 ? 0 : -1;
    return health;
  }

  rec.fill(health);
  if (health.nonfinite != 0 || health.singular != 0) {
    health.events |= DegradeEvent::NumericalHazard;
    if (fallback) {
      for (index_t lane = 0; lane < shape.batch; ++lane) {
        if (!rec.flagged(lane)) {
          continue;
        }
        restore_lane(b, snapshot, lane);
        ref_trsm_lane(shape, alpha, a, b, lane);
        if (health.first_fallback < 0) {
          health.first_fallback = lane;
        }
        ++health.fallback;
      }
    }
  }
  return health;
}

plan::PlanTuning Engine::resolve_tuning_locked(const tune::TuneKey& key,
                                               bool* from_table) const {
  *from_table = false;
  if (tune_table_ != nullptr) {
    if (const tune::TuneRecord* rec = tune_table_->lookup(key)) {
      *from_table = true;
      return rec->tuning();
    }
  }
  if (has_manual_tuning_) {
    return manual_tuning_;
  }
  // Re-read per plan-cache miss: cheap, and it keeps the environment
  // overrides testable after clear_plan_cache().
  return tune::env_plan_tuning();
}

void Engine::set_tuning_table(
    std::shared_ptr<const tune::TuningTable> table) {
  std::lock_guard<std::mutex> lock(mutex_);
  tune_table_ = std::move(table);
  plans_.clear();
  tuned_ = 0;
}

std::shared_ptr<const tune::TuningTable> Engine::tuning_table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tune_table_;
}

void Engine::set_plan_tuning(const plan::PlanTuning& tuning) {
  std::lock_guard<std::mutex> lock(mutex_);
  manual_tuning_ = tuning;
  has_manual_tuning_ = true;
  plans_.clear();
  tuned_ = 0;
}

void Engine::clear_plan_tuning() {
  std::lock_guard<std::mutex> lock(mutex_);
  manual_tuning_ = plan::PlanTuning{};
  has_manual_tuning_ = false;
  plans_.clear();
  tuned_ = 0;
}

plan::PlanTuning Engine::plan_tuning() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return has_manual_tuning_ ? manual_tuning_ : plan::PlanTuning{};
}

std::size_t Engine::plan_cache_tuned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tuned_;
}

std::size_t Engine::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

std::size_t Engine::plan_cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t Engine::plan_cache_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void Engine::clear_plan_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  hits_ = 0;
  misses_ = 0;
  tuned_ = 0;
}

Engine& Engine::default_engine() {
  static Engine engine;
  return engine;
}

#define IATF_INSTANTIATE_ENGINE(T, Bytes)                                    \
  template std::shared_ptr<const plan::GemmPlan<T, Bytes>>                  \
  Engine::plan_gemm<T, Bytes>(const GemmShape&);                            \
  template std::shared_ptr<const plan::TrsmPlan<T, Bytes>>                  \
  Engine::plan_trsm<T, Bytes>(const TrsmShape&);                            \
  template BatchHealth Engine::gemm<T, Bytes>(                              \
      Op, Op, T, const CompactBuffer<T>&, const CompactBuffer<T>&, T,       \
      CompactBuffer<T>&);                                                   \
  template BatchHealth Engine::trsm<T, Bytes>(Side, Uplo, Op, Diag, T,      \
                                              const CompactBuffer<T>&,      \
                                              CompactBuffer<T>&);

IATF_INSTANTIATE_ENGINE(float, 16)
IATF_INSTANTIATE_ENGINE(double, 16)
IATF_INSTANTIATE_ENGINE(std::complex<float>, 16)
IATF_INSTANTIATE_ENGINE(std::complex<double>, 16)
IATF_INSTANTIATE_ENGINE(float, 32)
IATF_INSTANTIATE_ENGINE(double, 32)
IATF_INSTANTIATE_ENGINE(std::complex<float>, 32)
IATF_INSTANTIATE_ENGINE(std::complex<double>, 32)

#undef IATF_INSTANTIATE_ENGINE

} // namespace iatf
