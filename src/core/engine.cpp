#include "iatf/core/engine.hpp"

#include <complex>

#include "iatf/common/error.hpp"

namespace iatf {
namespace {

template <class T> constexpr char dtype_tag() {
  return blas_prefix_v<T>[0];
}

} // namespace

std::size_t Engine::PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  // FNV-1a over the key's fields.
  std::size_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(k.op) << 8 |
      static_cast<std::uint64_t>(k.dtype));
  mix(static_cast<std::uint64_t>(k.bytes));
  mix(static_cast<std::uint64_t>(k.m));
  mix(static_cast<std::uint64_t>(k.n));
  mix(static_cast<std::uint64_t>(k.k));
  mix(static_cast<std::uint64_t>(k.op_a) | static_cast<std::uint64_t>(k.op_b)
                                               << 8 |
      static_cast<std::uint64_t>(k.side) << 16 |
      static_cast<std::uint64_t>(k.uplo) << 24 |
      static_cast<std::uint64_t>(k.diag) << 32);
  mix(static_cast<std::uint64_t>(k.batch));
  return h;
}

template <class Plan, class Make>
std::shared_ptr<const Plan> Engine::lookup(const PlanKey& key, Make&& make) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++hits_;
    return std::static_pointer_cast<const Plan>(it->second);
  }
  ++misses_;
  auto plan = std::shared_ptr<const Plan>(make());
  plans_.emplace(key, plan);
  return plan;
}

template <class T, int Bytes>
std::shared_ptr<const plan::GemmPlan<T, Bytes>>
Engine::plan_gemm(const GemmShape& shape) {
  PlanKey key;
  key.op = 'g';
  key.dtype = dtype_tag<T>();
  key.bytes = Bytes;
  key.m = shape.m;
  key.n = shape.n;
  key.k = shape.k;
  key.op_a = static_cast<std::uint8_t>(shape.op_a);
  key.op_b = static_cast<std::uint8_t>(shape.op_b);
  key.batch = shape.batch;
  return lookup<plan::GemmPlan<T, Bytes>>(key, [&] {
    return new plan::GemmPlan<T, Bytes>(shape, cache_);
  });
}

template <class T, int Bytes>
std::shared_ptr<const plan::TrsmPlan<T, Bytes>>
Engine::plan_trsm(const TrsmShape& shape) {
  PlanKey key;
  key.op = 't';
  key.dtype = dtype_tag<T>();
  key.bytes = Bytes;
  key.m = shape.m;
  key.n = shape.n;
  key.op_a = static_cast<std::uint8_t>(shape.op_a);
  key.side = static_cast<std::uint8_t>(shape.side);
  key.uplo = static_cast<std::uint8_t>(shape.uplo);
  key.diag = static_cast<std::uint8_t>(shape.diag);
  key.batch = shape.batch;
  return lookup<plan::TrsmPlan<T, Bytes>>(key, [&] {
    return new plan::TrsmPlan<T, Bytes>(shape, cache_);
  });
}

template <class T, int Bytes>
void Engine::gemm(Op op_a, Op op_b, T alpha, const CompactBuffer<T>& a,
                  const CompactBuffer<T>& b, T beta, CompactBuffer<T>& c) {
  GemmShape shape;
  shape.m = c.rows();
  shape.n = c.cols();
  shape.k = op_a == Op::NoTrans ? a.cols() : a.rows();
  shape.op_a = op_a;
  shape.op_b = op_b;
  shape.batch = c.batch();
  plan_gemm<T, Bytes>(shape)->execute(a, b, c, alpha, beta);
}

template <class T, int Bytes>
void Engine::trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                  const CompactBuffer<T>& a, CompactBuffer<T>& b) {
  TrsmShape shape;
  shape.m = b.rows();
  shape.n = b.cols();
  shape.side = side;
  shape.uplo = uplo;
  shape.op_a = op_a;
  shape.diag = diag;
  shape.batch = b.batch();
  plan_trsm<T, Bytes>(shape)->execute(a, b, alpha);
}

std::size_t Engine::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

std::size_t Engine::plan_cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t Engine::plan_cache_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void Engine::clear_plan_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  hits_ = 0;
  misses_ = 0;
}

Engine& Engine::default_engine() {
  static Engine engine;
  return engine;
}

#define IATF_INSTANTIATE_ENGINE(T, Bytes)                                    \
  template std::shared_ptr<const plan::GemmPlan<T, Bytes>>                  \
  Engine::plan_gemm<T, Bytes>(const GemmShape&);                            \
  template std::shared_ptr<const plan::TrsmPlan<T, Bytes>>                  \
  Engine::plan_trsm<T, Bytes>(const TrsmShape&);                            \
  template void Engine::gemm<T, Bytes>(Op, Op, T, const CompactBuffer<T>&,  \
                                       const CompactBuffer<T>&, T,          \
                                       CompactBuffer<T>&);                  \
  template void Engine::trsm<T, Bytes>(Side, Uplo, Op, Diag, T,             \
                                       const CompactBuffer<T>&,             \
                                       CompactBuffer<T>&);

IATF_INSTANTIATE_ENGINE(float, 16)
IATF_INSTANTIATE_ENGINE(double, 16)
IATF_INSTANTIATE_ENGINE(std::complex<float>, 16)
IATF_INSTANTIATE_ENGINE(std::complex<double>, 16)
IATF_INSTANTIATE_ENGINE(float, 32)
IATF_INSTANTIATE_ENGINE(double, 32)
IATF_INSTANTIATE_ENGINE(std::complex<float>, 32)
IATF_INSTANTIATE_ENGINE(std::complex<double>, 32)

#undef IATF_INSTANTIATE_ENGINE

} // namespace iatf
