#include "iatf/core/engine.hpp"

#include <algorithm>
#include <complex>
#include <cstdlib>
#include <exception>
#include <vector>

#include "iatf/common/error.hpp"
#include "iatf/common/fault_inject.hpp"
#include "iatf/ref/ref_blas.hpp"
#include "iatf/tune/descriptor.hpp"
#include "iatf/tune/tuning_table.hpp"

namespace iatf {
namespace {

template <class T> constexpr char dtype_tag() {
  return blas_prefix_v<T>[0];
}

bool site_prefix(const std::string& site, const char* prefix) {
  return site.rfind(prefix, 0) == 0;
}

/// Classify the in-flight exception as a degradation event. InvalidArg
/// errors are caller bugs and must never be silently degraded, so they are
/// rethrown; Timeout likewise -- a deadline already blown cannot be helped
/// by a slower scalar recompute. Everything else maps to the event the
/// fallback records.
DegradeEvent classify_failure() {
  try {
    throw;
  } catch (const fault::FaultInjected& f) {
    if (site_prefix(f.site(), "registry")) {
      return DegradeEvent::MissingKernel;
    }
    if (site_prefix(f.site(), "plan")) {
      return DegradeEvent::UnsupportedPlan;
    }
    if (site_prefix(f.site(), "threadpool")) {
      return DegradeEvent::WorkerFailure;
    }
    return DegradeEvent::AllocFailure;
  } catch (const Error& e) {
    switch (e.status()) {
    case Status::InvalidArg:
    case Status::Timeout:
      throw;
    case Status::Unsupported:
      return DegradeEvent::UnsupportedPlan;
    case Status::AllocFailure:
      return DegradeEvent::AllocFailure;
    default:
      return DegradeEvent::WorkerFailure;
    }
  } catch (const std::bad_alloc&) {
    return DegradeEvent::AllocFailure;
  } catch (...) {
    return DegradeEvent::WorkerFailure;
  }
}

/// The fallback path reads the buffers directly, so it must re-validate
/// the consistency the plan normally checks -- plan construction may have
/// failed before any validation ran.
template <class T>
void validate_gemm_fallback(const GemmShape& s, const CompactBuffer<T>& a,
                            const CompactBuffer<T>& b,
                            const CompactBuffer<T>& c) {
  const bool ta = s.op_a != Op::NoTrans;
  const bool tb = s.op_b != Op::NoTrans;
  IATF_CHECK(s.m >= 0 && s.n >= 0 && s.k >= 0 && s.batch >= 0,
             "gemm: negative dimension");
  IATF_CHECK(a.rows() == (ta ? s.k : s.m) && a.cols() == (ta ? s.m : s.k),
             "gemm: operand A has mismatched dimensions");
  IATF_CHECK(b.rows() == (tb ? s.n : s.k) && b.cols() == (tb ? s.k : s.n),
             "gemm: operand B has mismatched dimensions");
  IATF_CHECK(a.batch() == s.batch && b.batch() == s.batch &&
                 c.batch() == s.batch,
             "gemm: operand batch sizes do not match");
}

template <class T>
void validate_trsm_fallback(const TrsmShape& s, const CompactBuffer<T>& a,
                            const CompactBuffer<T>& b) {
  IATF_CHECK(s.m >= 0 && s.n >= 0 && s.batch >= 0,
             "trsm: negative dimension");
  IATF_CHECK(a.rows() == s.a_dim() && a.cols() == s.a_dim(),
             "trsm: A must be a_dim x a_dim");
  IATF_CHECK(a.batch() == s.batch && b.batch() == s.batch,
             "trsm: operand batch sizes do not match");
}

/// Restore one lane of `buf` from a raw snapshot of its storage.
template <class T>
void restore_lane(CompactBuffer<T>& buf,
                  const std::vector<real_t<T>>& snapshot, index_t lane) {
  using R = real_t<T>;
  const index_t pw = buf.pack_width();
  const index_t g = lane / pw;
  const index_t l = lane % pw;
  const index_t es = buf.element_stride();
  const index_t elems = buf.rows() * buf.cols();
  R* gdata = buf.group_data(g);
  const R* sdata = snapshot.data() + g * buf.group_stride();
  for (index_t e = 0; e < elems; ++e) {
    gdata[e * es + l] = sdata[e * es + l];
    if constexpr (is_complex_v<T>) {
      gdata[e * es + pw + l] = sdata[e * es + pw + l];
    }
  }
}

/// Recompute one lane with the scalar reference GEMM. The lane's C must
/// hold the original (pre-call) values so beta applies correctly.
template <class T>
void ref_gemm_lane(const GemmShape& s, T alpha, const CompactBuffer<T>& a,
                   const CompactBuffer<T>& b, T beta, CompactBuffer<T>& c,
                   index_t lane) {
  const index_t lda = std::max<index_t>(a.rows(), 1);
  const index_t ldb = std::max<index_t>(b.rows(), 1);
  const index_t ldc = std::max<index_t>(c.rows(), 1);
  std::vector<T> ta(static_cast<std::size_t>(a.rows() * a.cols()));
  std::vector<T> tb(static_cast<std::size_t>(b.rows() * b.cols()));
  std::vector<T> tc(static_cast<std::size_t>(c.rows() * c.cols()));
  a.export_colmajor(lane, ta.data(), lda);
  b.export_colmajor(lane, tb.data(), ldb);
  c.export_colmajor(lane, tc.data(), ldc);
  ref::gemm(s.op_a, s.op_b, s.m, s.n, s.k, alpha, ta.data(), lda,
            tb.data(), ldb, beta, tc.data(), ldc);
  c.import_colmajor(lane, tc.data(), ldc);
}

/// Recompute one lane with the scalar reference TRSM. The lane's B must
/// hold the original right-hand side, not the partial fast-path solution.
template <class T>
void ref_trsm_lane(const TrsmShape& s, T alpha, const CompactBuffer<T>& a,
                   CompactBuffer<T>& b, index_t lane) {
  const index_t lda = std::max<index_t>(a.rows(), 1);
  const index_t ldb = std::max<index_t>(b.rows(), 1);
  std::vector<T> ta(static_cast<std::size_t>(a.rows() * a.cols()));
  std::vector<T> tb(static_cast<std::size_t>(b.rows() * b.cols()));
  a.export_colmajor(lane, ta.data(), lda);
  b.export_colmajor(lane, tb.data(), ldb);
  ref::trsm(s.side, s.uplo, s.op_a, s.diag, s.m, s.n, alpha, ta.data(),
            lda, tb.data(), ldb);
  b.import_colmajor(lane, tb.data(), ldb);
}

std::size_t resolve_capacity(std::size_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("IATF_PLAN_CACHE_CAP")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return Engine::kDefaultPlanCacheCapacity;
}

} // namespace

Engine::Engine(CacheInfo cache, std::size_t plan_cache_capacity)
    : cache_(cache) {
  capacity_.store(resolve_capacity(plan_cache_capacity),
                  std::memory_order_relaxed);
  auto config = std::make_shared<TuningConfig>();
  config->generation = 0;
  tuning_.store(std::shared_ptr<const TuningConfig>(std::move(config)),
                std::memory_order_release);
}

std::size_t Engine::PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  // FNV-1a over the key's fields.
  std::size_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(k.op) << 8 |
      static_cast<std::uint64_t>(k.dtype));
  mix(static_cast<std::uint64_t>(k.bytes));
  mix(static_cast<std::uint64_t>(k.m));
  mix(static_cast<std::uint64_t>(k.n));
  mix(static_cast<std::uint64_t>(k.k));
  mix(static_cast<std::uint64_t>(k.op_a) | static_cast<std::uint64_t>(k.op_b)
                                               << 8 |
      static_cast<std::uint64_t>(k.side) << 16 |
      static_cast<std::uint64_t>(k.uplo) << 24 |
      static_cast<std::uint64_t>(k.diag) << 32);
  mix(static_cast<std::uint64_t>(k.batch));
  return h;
}

Engine::Shard& Engine::shard_for(const PlanKey& key) {
  // FNV's low bits feed the map's bucket choice; take high bits for the
  // shard so the two decisions stay decorrelated.
  const std::size_t h = PlanKeyHash{}(key);
  return shards_[(h >> 56) % kPlanCacheShards];
}

std::size_t Engine::shard_capacity() const noexcept {
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  const std::size_t per = (cap + kPlanCacheShards - 1) / kPlanCacheShards;
  return per > 0 ? per : 1;
}

void Engine::evict_to_capacity(PlanMap& map, std::size_t cap) {
  while (map.size() > cap && !map.empty()) {
    // Fault site: an eviction that throws must not fail the lookup -- the
    // built plan is still returned, just not cached.
    IATF_FAULT_POINT("cache.evict", ::iatf::Status::Internal);
    auto victim = map.begin();
    std::uint64_t oldest =
        victim->second->last_used.load(std::memory_order_relaxed);
    for (auto it = std::next(map.begin()); it != map.end(); ++it) {
      const std::uint64_t used =
          it->second->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = it;
      }
    }
    map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Engine::insert_plan(Shard& shard, const PlanKey& key,
                         std::shared_ptr<const void> plan, bool tuned,
                         std::uint64_t generation, std::uint64_t now) {
  std::lock_guard<std::mutex> lock(shard.mu);
  // The build resolved its tuning against the config of `generation`; if
  // the engine was reconfigured (or the cache cleared) since, this plan
  // would poison the fresh cache -- drop it instead. The caller still
  // returns it to the requesting threads.
  if (generation_.load(std::memory_order_acquire) != generation) {
    return;
  }
  auto old = shard.snapshot.load(std::memory_order_acquire);
  auto next = old ? std::make_shared<PlanMap>(*old)
                  : std::make_shared<PlanMap>();
  evict_to_capacity(*next, shard_capacity() - 1);
  auto entry = std::make_shared<CacheEntry>();
  entry->plan = std::move(plan);
  entry->tuned = tuned;
  entry->last_used.store(now, std::memory_order_relaxed);
  (*next)[key] = std::move(entry);
  shard.snapshot.store(std::shared_ptr<const PlanMap>(std::move(next)),
                       std::memory_order_release);
  if (tuned) {
    tuned_.fetch_add(1, std::memory_order_relaxed);
  }
}

template <class Plan, class Make>
std::shared_ptr<const Plan> Engine::lookup(const PlanKey& key, Make&& make) {
  const std::uint64_t now =
      tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = shard_for(key);

  // Fast path: one atomic load of the shard's immutable snapshot. No
  // exclusive lock is taken on a hit.
  if (auto map = shard.snapshot.load(std::memory_order_acquire)) {
    auto it = map->find(key);
    if (it != map->end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      it->second->last_used.store(now, std::memory_order_relaxed);
      return std::static_pointer_cast<const Plan>(it->second->plan);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Re-check: a leader may have published between our snapshot load and
    // here. The miss above already counted, so no extra hit is recorded
    // (hits + misses always equals lookups).
    if (auto map = shard.snapshot.load(std::memory_order_acquire)) {
      auto it = map->find(key);
      if (it != map->end()) {
        it->second->last_used.store(now, std::memory_order_relaxed);
        return std::static_pointer_cast<const Plan>(it->second->plan);
      }
    }
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    auto it = shard.inflight.find(key);
    if (it != shard.inflight.end() && it->second->generation == gen) {
      flight = it->second; // join the in-flight build
    } else {
      flight = std::make_shared<Flight>();
      flight->generation = gen;
      shard.inflight[key] = flight; // replaces a stale-generation flight
      leader = true;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> fl(flight->mu);
    flight->cv.wait(fl, [&] { return flight->done; });
    if (flight->error) {
      std::rethrow_exception(flight->error);
    }
    return std::static_pointer_cast<const Plan>(flight->plan);
  }

  // Single-flight leader: build outside every lock so joiners (and every
  // other shard) are never blocked behind plan construction.
  builds_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const void> plan;
  bool tuned = false;
  std::uint64_t config_gen = 0;
  std::exception_ptr error;
  try {
    plan = std::shared_ptr<const Plan>(make(&tuned, &config_gen));
  } catch (...) {
    error = std::current_exception();
  }

  if (!error) {
    try {
      insert_plan(shard, key, plan, tuned, config_gen, now);
    } catch (...) {
      // Cache-insert failures (eviction fault, bad_alloc on the map copy)
      // must not fail the call: the plan is returned uncached.
    }
  }

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.inflight.find(key);
    if (it != shard.inflight.end() && it->second == flight) {
      shard.inflight.erase(it); // by identity: never remove a successor
    }
  }
  {
    std::lock_guard<std::mutex> fl(flight->mu);
    flight->plan = plan;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();

  if (error) {
    std::rethrow_exception(error);
  }
  return std::static_pointer_cast<const Plan>(plan);
}

template <class T, int Bytes>
std::shared_ptr<const plan::GemmPlan<T, Bytes>>
Engine::plan_gemm(const GemmShape& shape) {
  PlanKey key;
  key.op = 'g';
  key.dtype = dtype_tag<T>();
  key.bytes = Bytes;
  key.m = shape.m;
  key.n = shape.n;
  key.k = shape.k;
  key.op_a = static_cast<std::uint8_t>(shape.op_a);
  key.op_b = static_cast<std::uint8_t>(shape.op_b);
  key.batch = shape.batch;
  return lookup<plan::GemmPlan<T, Bytes>>(
      key, [&](bool* tuned, std::uint64_t* config_gen) {
        IATF_FAULT_POINT("plan.gemm", ::iatf::Status::Unsupported);
        fault::stall_if_armed("plan.stall");
        const auto config = tuning_.load(std::memory_order_acquire);
        *config_gen = config->generation;
        const plan::PlanTuning tuning = resolve_tuning(
            *config, tune::gemm_key<T, Bytes>(shape), tuned);
        return new plan::GemmPlan<T, Bytes>(shape, cache_, tuning);
      });
}

template <class T, int Bytes>
std::shared_ptr<const plan::TrsmPlan<T, Bytes>>
Engine::plan_trsm(const TrsmShape& shape) {
  PlanKey key;
  key.op = 't';
  key.dtype = dtype_tag<T>();
  key.bytes = Bytes;
  key.m = shape.m;
  key.n = shape.n;
  key.op_a = static_cast<std::uint8_t>(shape.op_a);
  key.side = static_cast<std::uint8_t>(shape.side);
  key.uplo = static_cast<std::uint8_t>(shape.uplo);
  key.diag = static_cast<std::uint8_t>(shape.diag);
  key.batch = shape.batch;
  return lookup<plan::TrsmPlan<T, Bytes>>(
      key, [&](bool* tuned, std::uint64_t* config_gen) {
        IATF_FAULT_POINT("plan.trsm", ::iatf::Status::Unsupported);
        fault::stall_if_armed("plan.stall");
        const auto config = tuning_.load(std::memory_order_acquire);
        *config_gen = config->generation;
        const plan::PlanTuning tuning = resolve_tuning(
            *config, tune::trsm_key<T, Bytes>(shape), tuned);
        return new plan::TrsmPlan<T, Bytes>(shape, cache_, tuning);
      });
}

template <class T, int Bytes>
BatchHealth Engine::gemm(Op op_a, Op op_b, T alpha, const CompactBuffer<T>& a,
                         const CompactBuffer<T>& b, T beta,
                         CompactBuffer<T>& c) {
  GemmShape shape;
  shape.m = c.rows();
  shape.n = c.cols();
  shape.k = op_a == Op::NoTrans ? a.cols() : a.rows();
  shape.op_a = op_a;
  shape.op_b = op_b;
  shape.batch = c.batch();

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  ThreadPool* pool = pool_.load(std::memory_order_relaxed);
  const std::int64_t budget = deadline_ns_.load(std::memory_order_relaxed);
  Deadline deadline_at;
  const Deadline* deadline = nullptr;
  if (budget > 0) {
    deadline_at = Deadline::in(std::chrono::nanoseconds(budget));
    deadline = &deadline_at;
  }

  try {
    if (policy == ExecPolicy::Fast) {
      auto plan = plan_gemm<T, Bytes>(shape);
      if (pool != nullptr) {
        plan->execute_parallel(a, b, c, alpha, beta, *pool, nullptr,
                               deadline);
      } else {
        plan->execute(a, b, c, alpha, beta, nullptr, deadline);
      }
      BatchHealth health;
      health.batch = shape.batch;
      return health;
    }
    return guarded_gemm<T, Bytes>(shape, alpha, a, b, beta, c, policy, pool,
                                  deadline);
  } catch (const Error& e) {
    if (e.status() == Status::Timeout) {
      timeout_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    throw;
  }
}

template <class T, int Bytes>
BatchHealth Engine::guarded_gemm(const GemmShape& shape, T alpha,
                                 const CompactBuffer<T>& a,
                                 const CompactBuffer<T>& b, T beta,
                                 CompactBuffer<T>& c, ExecPolicy policy,
                                 ThreadPool* pool,
                                 const Deadline* deadline) {
  using R = real_t<T>;
  BatchHealth health;
  health.batch = shape.batch;
  const bool fallback = policy == ExecPolicy::Fallback;

  // C is read (beta) and written by the fast path, so a retry needs the
  // pre-call values. Snapshot only when we are allowed to retry.
  std::vector<R> snapshot;
  if (fallback) {
    snapshot.assign(c.data(), c.data() + c.size());
  }

  HealthRecorder rec(shape.batch);
  try {
    auto plan = plan_gemm<T, Bytes>(shape);
    if (pool != nullptr) {
      plan->execute_parallel(a, b, c, alpha, beta, *pool, &rec, deadline);
    } else {
      plan->execute(a, b, c, alpha, beta, &rec, deadline);
    }
  } catch (...) {
    if (!fallback) {
      throw; // Check: observe-only, failures still propagate
    }
    // rethrows InvalidArg and Timeout
    const DegradeEvent event = classify_failure();
    validate_gemm_fallback(shape, a, b, c);
    std::copy(snapshot.begin(), snapshot.end(), c.data());
    for (index_t lane = 0; lane < shape.batch; ++lane) {
      ref_gemm_lane(shape, alpha, a, b, beta, c, lane);
    }
    health.events |= event;
    health.fallback = shape.batch;
    health.first_fallback = shape.batch > 0 ? 0 : -1;
    degraded_calls_.fetch_add(1, std::memory_order_relaxed);
    fallback_lanes_.fetch_add(
        static_cast<std::uint64_t>(health.fallback),
        std::memory_order_relaxed);
    return health;
  }

  rec.fill(health);
  if (health.nonfinite != 0) {
    health.events |= DegradeEvent::NumericalHazard;
    if (fallback) {
      for (index_t lane = 0; lane < shape.batch; ++lane) {
        if (!rec.flagged(lane)) {
          continue;
        }
        restore_lane(c, snapshot, lane);
        ref_gemm_lane(shape, alpha, a, b, beta, c, lane);
        if (health.first_fallback < 0) {
          health.first_fallback = lane;
        }
        ++health.fallback;
      }
      if (health.fallback > 0) {
        degraded_calls_.fetch_add(1, std::memory_order_relaxed);
        fallback_lanes_.fetch_add(
            static_cast<std::uint64_t>(health.fallback),
            std::memory_order_relaxed);
      }
    }
  }
  return health;
}

template <class T, int Bytes>
BatchHealth Engine::trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                         const CompactBuffer<T>& a, CompactBuffer<T>& b) {
  TrsmShape shape;
  shape.m = b.rows();
  shape.n = b.cols();
  shape.side = side;
  shape.uplo = uplo;
  shape.op_a = op_a;
  shape.diag = diag;
  shape.batch = b.batch();

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  ThreadPool* pool = pool_.load(std::memory_order_relaxed);
  const std::int64_t budget = deadline_ns_.load(std::memory_order_relaxed);
  Deadline deadline_at;
  const Deadline* deadline = nullptr;
  if (budget > 0) {
    deadline_at = Deadline::in(std::chrono::nanoseconds(budget));
    deadline = &deadline_at;
  }

  try {
    if (policy == ExecPolicy::Fast) {
      auto plan = plan_trsm<T, Bytes>(shape);
      if (pool != nullptr) {
        plan->execute_parallel(a, b, alpha, *pool, nullptr, deadline);
      } else {
        plan->execute(a, b, alpha, nullptr, deadline);
      }
      BatchHealth health;
      health.batch = shape.batch;
      return health;
    }
    return guarded_trsm<T, Bytes>(shape, alpha, a, b, policy, pool,
                                  deadline);
  } catch (const Error& e) {
    if (e.status() == Status::Timeout) {
      timeout_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    throw;
  }
}

template <class T, int Bytes>
BatchHealth Engine::guarded_trsm(const TrsmShape& shape, T alpha,
                                 const CompactBuffer<T>& a,
                                 CompactBuffer<T>& b, ExecPolicy policy,
                                 ThreadPool* pool,
                                 const Deadline* deadline) {
  using R = real_t<T>;
  BatchHealth health;
  health.batch = shape.batch;
  const bool fallback = policy == ExecPolicy::Fallback;

  // TRSM overwrites B with X, so a retry needs the original right-hand
  // side back. Snapshot only when we are allowed to retry.
  std::vector<R> snapshot;
  if (fallback) {
    snapshot.assign(b.data(), b.data() + b.size());
  }

  HealthRecorder rec(shape.batch);
  try {
    auto plan = plan_trsm<T, Bytes>(shape);
    if (pool != nullptr) {
      plan->execute_parallel(a, b, alpha, *pool, &rec, deadline);
    } else {
      plan->execute(a, b, alpha, &rec, deadline);
    }
  } catch (...) {
    if (!fallback) {
      throw; // Check: observe-only, failures still propagate
    }
    // rethrows InvalidArg and Timeout
    const DegradeEvent event = classify_failure();
    validate_trsm_fallback(shape, a, b);
    std::copy(snapshot.begin(), snapshot.end(), b.data());
    for (index_t lane = 0; lane < shape.batch; ++lane) {
      ref_trsm_lane(shape, alpha, a, b, lane);
    }
    health.events |= event;
    health.fallback = shape.batch;
    health.first_fallback = shape.batch > 0 ? 0 : -1;
    degraded_calls_.fetch_add(1, std::memory_order_relaxed);
    fallback_lanes_.fetch_add(
        static_cast<std::uint64_t>(health.fallback),
        std::memory_order_relaxed);
    return health;
  }

  rec.fill(health);
  if (health.nonfinite != 0 || health.singular != 0) {
    health.events |= DegradeEvent::NumericalHazard;
    if (fallback) {
      for (index_t lane = 0; lane < shape.batch; ++lane) {
        if (!rec.flagged(lane)) {
          continue;
        }
        restore_lane(b, snapshot, lane);
        ref_trsm_lane(shape, alpha, a, b, lane);
        if (health.first_fallback < 0) {
          health.first_fallback = lane;
        }
        ++health.fallback;
      }
      if (health.fallback > 0) {
        degraded_calls_.fetch_add(1, std::memory_order_relaxed);
        fallback_lanes_.fetch_add(
            static_cast<std::uint64_t>(health.fallback),
            std::memory_order_relaxed);
      }
    }
  }
  return health;
}

void Engine::record_grouped_plans(std::size_t distinct) noexcept {
  // Bucket upper bounds: 1, 2, 4, 8, inf (EngineStats doc).
  std::size_t bucket = 4;
  if (distinct <= 1) {
    bucket = 0;
  } else if (distinct == 2) {
    bucket = 1;
  } else if (distinct <= 4) {
    bucket = 2;
  } else if (distinct <= 8) {
    bucket = 3;
  }
  grouped_plan_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
}

template <class T, int Bytes>
std::vector<BatchHealth>
Engine::gemm_grouped(std::span<const sched::GemmSegment<T>> segments) {
  using R = real_t<T>;
  grouped_calls_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t count = segments.size();
  std::vector<BatchHealth> healths(count);
  if (count == 0) {
    return healths;
  }

  std::vector<GemmShape> shapes(count);
  std::vector<sched::ClassKey> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    const sched::GemmSegment<T>& seg = segments[i];
    IATF_CHECK(seg.a != nullptr && seg.b != nullptr && seg.c != nullptr,
               "gemm_grouped: segment with a null buffer");
    GemmShape& s = shapes[i];
    s.m = seg.c->rows();
    s.n = seg.c->cols();
    s.k = seg.op_a == Op::NoTrans ? seg.a->cols() : seg.a->rows();
    s.op_a = seg.op_a;
    s.op_b = seg.op_b;
    s.batch = seg.c->batch();
    healths[i].batch = s.batch;
    sched::ClassKey& key = keys[i];
    key.op = 'g';
    key.m = s.m;
    key.n = s.n;
    key.k = s.k;
    key.op_a = static_cast<std::uint8_t>(s.op_a);
    key.op_b = static_cast<std::uint8_t>(s.op_b);
    key.batch = s.batch;
  }

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  ThreadPool* pool = pool_.load(std::memory_order_relaxed);
  const std::int64_t budget = deadline_ns_.load(std::memory_order_relaxed);
  Deadline deadline_at;
  const Deadline* deadline = nullptr;
  if (budget > 0) {
    deadline_at = Deadline::in(std::chrono::nanoseconds(budget));
    deadline = &deadline_at;
  }

  try {
    // One plan resolution per distinct descriptor; segments in the same
    // size class share the shared_ptr, and single-flight collapses
    // concurrent cold misses exactly as for the fixed-size path.
    const std::vector<sched::SizeClass> classes =
        sched::bin_by_descriptor(keys);
    std::vector<std::shared_ptr<const plan::GemmPlan<T, Bytes>>> plans(
        count);
    for (const sched::SizeClass& cls : classes) {
      auto plan = plan_gemm<T, Bytes>(shapes[cls.segments.front()]);
      for (const std::size_t idx : cls.segments) {
        plans[idx] = plan;
      }
    }
    record_grouped_plans(classes.size());

    const bool guarded = policy != ExecPolicy::Fast;
    const bool fallback = policy == ExecPolicy::Fallback;

    std::vector<std::unique_ptr<HealthRecorder>> recs(count);
    std::vector<std::vector<R>> snapshots(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (guarded) {
        recs[i] = std::make_unique<HealthRecorder>(shapes[i].batch);
      }
      if (fallback) {
        const CompactBuffer<T>& c = *segments[i].c;
        snapshots[i].assign(c.data(), c.data() + c.size());
      }
    }

    try {
      if (pool != nullptr) {
        // Interleave per-segment batch-slice work items round-robin
        // across segments so the pool alternates between size classes.
        const index_t grain_env = tune::env_group_grain();
        std::vector<sched::SegmentExtent> extents(count);
        for (std::size_t i = 0; i < count; ++i) {
          extents[i].groups = segments[i].c->groups();
          const index_t tuned =
              grain_env > 0 ? grain_env : plans[i]->chunk_groups();
          extents[i].item_groups = sched::item_granularity(
              extents[i].groups, plans[i]->slice_groups(), tuned,
              static_cast<index_t>(pool->size()));
          if (extents[i].groups == 0) {
            // No work item will touch this segment: validate it here so
            // caller bugs surface identically in both execution modes.
            const sched::GemmSegment<T>& seg = segments[i];
            plans[i]->execute(*seg.a, *seg.b, *seg.c, seg.alpha, seg.beta,
                              nullptr, nullptr);
          }
        }
        const std::vector<sched::WorkItem> items =
            sched::interleave_slices(extents);
        pool->parallel_for(
            0, static_cast<index_t>(items.size()),
            [&](index_t ib, index_t ie) {
              for (index_t ii = ib; ii < ie; ++ii) {
                const sched::WorkItem& it =
                    items[static_cast<std::size_t>(ii)];
                const sched::GemmSegment<T>& seg = segments[it.segment];
                plans[it.segment]->execute_range(
                    *seg.a, *seg.b, *seg.c, seg.alpha, seg.beta,
                    it.g_begin, it.g_end,
                    guarded ? recs[it.segment].get() : nullptr, deadline);
              }
            },
            /*grain=*/1, deadline);
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          const sched::GemmSegment<T>& seg = segments[i];
          plans[i]->execute(*seg.a, *seg.b, *seg.c, seg.alpha, seg.beta,
                            guarded ? recs[i].get() : nullptr, deadline);
        }
      }
    } catch (...) {
      if (!fallback) {
        throw; // Fast/Check: failures still propagate
      }
      // rethrows InvalidArg and Timeout
      const DegradeEvent event = classify_failure();
      for (std::size_t i = 0; i < count; ++i) {
        validate_gemm_fallback(shapes[i], *segments[i].a, *segments[i].b,
                               *segments[i].c);
      }
      // Any segment may hold partial fast-path output; restore and
      // recompute every lane of every segment on the reference path.
      std::uint64_t lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        const sched::GemmSegment<T>& seg = segments[i];
        std::copy(snapshots[i].begin(), snapshots[i].end(),
                  seg.c->data());
        for (index_t lane = 0; lane < shapes[i].batch; ++lane) {
          ref_gemm_lane(shapes[i], seg.alpha, *seg.a, *seg.b, seg.beta,
                        *seg.c, lane);
        }
        healths[i].events |= event;
        healths[i].fallback = shapes[i].batch;
        healths[i].first_fallback = shapes[i].batch > 0 ? 0 : -1;
        lanes += static_cast<std::uint64_t>(shapes[i].batch);
      }
      degraded_calls_.fetch_add(1, std::memory_order_relaxed);
      fallback_lanes_.fetch_add(lanes, std::memory_order_relaxed);
      return healths;
    }

    if (guarded) {
      std::uint64_t lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        recs[i]->fill(healths[i]);
        if (healths[i].nonfinite == 0) {
          continue;
        }
        healths[i].events |= DegradeEvent::NumericalHazard;
        if (!fallback) {
          continue;
        }
        const sched::GemmSegment<T>& seg = segments[i];
        for (index_t lane = 0; lane < shapes[i].batch; ++lane) {
          if (!recs[i]->flagged(lane)) {
            continue;
          }
          restore_lane(*seg.c, snapshots[i], lane);
          ref_gemm_lane(shapes[i], seg.alpha, *seg.a, *seg.b, seg.beta,
                        *seg.c, lane);
          if (healths[i].first_fallback < 0) {
            healths[i].first_fallback = lane;
          }
          ++healths[i].fallback;
        }
        lanes += static_cast<std::uint64_t>(healths[i].fallback);
      }
      if (fallback && lanes > 0) {
        degraded_calls_.fetch_add(1, std::memory_order_relaxed);
        fallback_lanes_.fetch_add(lanes, std::memory_order_relaxed);
      }
    }
    return healths;
  } catch (const Error& e) {
    if (e.status() == Status::Timeout) {
      timeout_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    throw;
  }
}

template <class T, int Bytes>
std::vector<BatchHealth>
Engine::trsm_grouped(std::span<const sched::TrsmSegment<T>> segments) {
  using R = real_t<T>;
  grouped_calls_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t count = segments.size();
  std::vector<BatchHealth> healths(count);
  if (count == 0) {
    return healths;
  }

  std::vector<TrsmShape> shapes(count);
  std::vector<sched::ClassKey> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    const sched::TrsmSegment<T>& seg = segments[i];
    IATF_CHECK(seg.a != nullptr && seg.b != nullptr,
               "trsm_grouped: segment with a null buffer");
    TrsmShape& s = shapes[i];
    s.m = seg.b->rows();
    s.n = seg.b->cols();
    s.side = seg.side;
    s.uplo = seg.uplo;
    s.op_a = seg.op_a;
    s.diag = seg.diag;
    s.batch = seg.b->batch();
    healths[i].batch = s.batch;
    sched::ClassKey& key = keys[i];
    key.op = 't';
    key.m = s.m;
    key.n = s.n;
    key.op_a = static_cast<std::uint8_t>(s.op_a);
    key.side = static_cast<std::uint8_t>(s.side);
    key.uplo = static_cast<std::uint8_t>(s.uplo);
    key.diag = static_cast<std::uint8_t>(s.diag);
    key.batch = s.batch;
  }

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  ThreadPool* pool = pool_.load(std::memory_order_relaxed);
  const std::int64_t budget = deadline_ns_.load(std::memory_order_relaxed);
  Deadline deadline_at;
  const Deadline* deadline = nullptr;
  if (budget > 0) {
    deadline_at = Deadline::in(std::chrono::nanoseconds(budget));
    deadline = &deadline_at;
  }

  try {
    const std::vector<sched::SizeClass> classes =
        sched::bin_by_descriptor(keys);
    std::vector<std::shared_ptr<const plan::TrsmPlan<T, Bytes>>> plans(
        count);
    for (const sched::SizeClass& cls : classes) {
      auto plan = plan_trsm<T, Bytes>(shapes[cls.segments.front()]);
      for (const std::size_t idx : cls.segments) {
        plans[idx] = plan;
      }
    }
    record_grouped_plans(classes.size());

    const bool guarded = policy != ExecPolicy::Fast;
    const bool fallback = policy == ExecPolicy::Fallback;

    std::vector<std::unique_ptr<HealthRecorder>> recs(count);
    std::vector<std::vector<R>> snapshots(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (guarded) {
        recs[i] = std::make_unique<HealthRecorder>(shapes[i].batch);
      }
      if (fallback) {
        const CompactBuffer<T>& b = *segments[i].b;
        snapshots[i].assign(b.data(), b.data() + b.size());
      }
    }

    try {
      if (pool != nullptr) {
        const index_t grain_env = tune::env_group_grain();
        std::vector<sched::SegmentExtent> extents(count);
        for (std::size_t i = 0; i < count; ++i) {
          extents[i].groups = segments[i].b->groups();
          const index_t tuned =
              grain_env > 0 ? grain_env : plans[i]->chunk_groups();
          extents[i].item_groups = sched::item_granularity(
              extents[i].groups, plans[i]->slice_groups(), tuned,
              static_cast<index_t>(pool->size()));
          if (extents[i].groups == 0) {
            const sched::TrsmSegment<T>& seg = segments[i];
            plans[i]->execute(*seg.a, *seg.b, seg.alpha, nullptr, nullptr);
          }
        }
        const std::vector<sched::WorkItem> items =
            sched::interleave_slices(extents);
        pool->parallel_for(
            0, static_cast<index_t>(items.size()),
            [&](index_t ib, index_t ie) {
              for (index_t ii = ib; ii < ie; ++ii) {
                const sched::WorkItem& it =
                    items[static_cast<std::size_t>(ii)];
                const sched::TrsmSegment<T>& seg = segments[it.segment];
                plans[it.segment]->execute_range(
                    *seg.a, *seg.b, seg.alpha, it.g_begin, it.g_end,
                    guarded ? recs[it.segment].get() : nullptr, deadline);
              }
            },
            /*grain=*/1, deadline);
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          const sched::TrsmSegment<T>& seg = segments[i];
          plans[i]->execute(*seg.a, *seg.b, seg.alpha,
                            guarded ? recs[i].get() : nullptr, deadline);
        }
      }
    } catch (...) {
      if (!fallback) {
        throw; // Fast/Check: failures still propagate
      }
      // rethrows InvalidArg and Timeout
      const DegradeEvent event = classify_failure();
      for (std::size_t i = 0; i < count; ++i) {
        validate_trsm_fallback(shapes[i], *segments[i].a, *segments[i].b);
      }
      std::uint64_t lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        const sched::TrsmSegment<T>& seg = segments[i];
        std::copy(snapshots[i].begin(), snapshots[i].end(),
                  seg.b->data());
        for (index_t lane = 0; lane < shapes[i].batch; ++lane) {
          ref_trsm_lane(shapes[i], seg.alpha, *seg.a, *seg.b, lane);
        }
        healths[i].events |= event;
        healths[i].fallback = shapes[i].batch;
        healths[i].first_fallback = shapes[i].batch > 0 ? 0 : -1;
        lanes += static_cast<std::uint64_t>(shapes[i].batch);
      }
      degraded_calls_.fetch_add(1, std::memory_order_relaxed);
      fallback_lanes_.fetch_add(lanes, std::memory_order_relaxed);
      return healths;
    }

    if (guarded) {
      std::uint64_t lanes = 0;
      for (std::size_t i = 0; i < count; ++i) {
        recs[i]->fill(healths[i]);
        if (healths[i].nonfinite == 0 && healths[i].singular == 0) {
          continue;
        }
        healths[i].events |= DegradeEvent::NumericalHazard;
        if (!fallback) {
          continue;
        }
        const sched::TrsmSegment<T>& seg = segments[i];
        for (index_t lane = 0; lane < shapes[i].batch; ++lane) {
          if (!recs[i]->flagged(lane)) {
            continue;
          }
          restore_lane(*seg.b, snapshots[i], lane);
          ref_trsm_lane(shapes[i], seg.alpha, *seg.a, *seg.b, lane);
          if (healths[i].first_fallback < 0) {
            healths[i].first_fallback = lane;
          }
          ++healths[i].fallback;
        }
        lanes += static_cast<std::uint64_t>(healths[i].fallback);
      }
      if (fallback && lanes > 0) {
        degraded_calls_.fetch_add(1, std::memory_order_relaxed);
        fallback_lanes_.fetch_add(lanes, std::memory_order_relaxed);
      }
    }
    return healths;
  } catch (const Error& e) {
    if (e.status() == Status::Timeout) {
      timeout_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    throw;
  }
}

plan::PlanTuning Engine::resolve_tuning(const TuningConfig& config,
                                        const tune::TuneKey& key,
                                        bool* from_table) const {
  *from_table = false;
  if (config.table != nullptr) {
    if (const tune::TuneRecord* rec = config.table->lookup(key)) {
      *from_table = true;
      return rec->tuning();
    }
  }
  if (config.has_manual) {
    return config.manual;
  }
  // Re-read per plan-cache miss: cheap, and it keeps the environment
  // overrides testable after clear_plan_cache().
  return tune::env_plan_tuning();
}

void Engine::reconfigure(std::shared_ptr<TuningConfig> next) {
  std::lock_guard<std::mutex> lock(config_mu_);
  // Ordering matters: bump the generation first (gating out every build
  // that resolved against the outgoing config), then wipe the shards, then
  // publish the new config. A build that loads the new config necessarily
  // inserts after the wipe; a build holding the old config sees a
  // generation mismatch and is dropped instead of repopulating the fresh
  // cache with stale tuning.
  next->generation =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> sl(shard.mu);
    shard.snapshot.store(std::shared_ptr<const PlanMap>(),
                         std::memory_order_release);
  }
  tuning_.store(std::shared_ptr<const TuningConfig>(std::move(next)),
                std::memory_order_release);
  tuned_.store(0, std::memory_order_relaxed);
}

void Engine::set_tuning_table(
    std::shared_ptr<const tune::TuningTable> table) {
  const auto current = tuning_.load(std::memory_order_acquire);
  auto next = std::make_shared<TuningConfig>(*current);
  next->table = std::move(table);
  reconfigure(std::move(next));
}

std::shared_ptr<const tune::TuningTable> Engine::tuning_table() const {
  return tuning_.load(std::memory_order_acquire)->table;
}

void Engine::set_plan_tuning(const plan::PlanTuning& tuning) {
  const auto current = tuning_.load(std::memory_order_acquire);
  auto next = std::make_shared<TuningConfig>(*current);
  next->manual = tuning;
  next->has_manual = true;
  reconfigure(std::move(next));
}

void Engine::clear_plan_tuning() {
  const auto current = tuning_.load(std::memory_order_acquire);
  auto next = std::make_shared<TuningConfig>(*current);
  next->manual = plan::PlanTuning{};
  next->has_manual = false;
  reconfigure(std::move(next));
}

plan::PlanTuning Engine::plan_tuning() const {
  const auto config = tuning_.load(std::memory_order_acquire);
  return config->has_manual ? config->manual : plan::PlanTuning{};
}

void Engine::set_plan_cache_capacity(std::size_t capacity) {
  IATF_CHECK(capacity >= 1, "engine: plan cache capacity must be >= 1");
  capacity_.store(capacity, std::memory_order_relaxed);
  const std::size_t cap = shard_capacity();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto old = shard.snapshot.load(std::memory_order_acquire);
    if (!old || old->size() <= cap) {
      continue;
    }
    auto next = std::make_shared<PlanMap>(*old);
    evict_to_capacity(*next, cap);
    shard.snapshot.store(std::shared_ptr<const PlanMap>(std::move(next)),
                         std::memory_order_release);
  }
}

std::size_t Engine::plan_cache_size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    if (auto map = shard.snapshot.load(std::memory_order_acquire)) {
      total += map->size();
    }
  }
  return total;
}

void Engine::clear_plan_cache() {
  const auto current = tuning_.load(std::memory_order_acquire);
  reconfigure(std::make_shared<TuningConfig>(*current));
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  builds_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.plan_cache_size = plan_cache_size();
  s.plan_cache_capacity = plan_cache_capacity();
  s.hits = plan_cache_hits();
  s.misses = plan_cache_misses();
  s.builds = plan_cache_builds();
  s.tuned = plan_cache_tuned();
  s.evictions = plan_cache_evictions();
  s.degraded_calls = static_cast<std::size_t>(
      degraded_calls_.load(std::memory_order_relaxed));
  s.fallback_lanes = static_cast<std::size_t>(
      fallback_lanes_.load(std::memory_order_relaxed));
  s.timeout_calls = static_cast<std::size_t>(
      timeout_calls_.load(std::memory_order_relaxed));
  s.grouped_calls = static_cast<std::size_t>(
      grouped_calls_.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < EngineStats::kGroupedPlanBuckets; ++i) {
    s.distinct_plans_per_call[i] = static_cast<std::size_t>(
        grouped_plan_hist_[i].load(std::memory_order_relaxed));
  }
  return s;
}

Engine& Engine::default_engine() {
  // Function-local static: constructed on first use, destroyed in reverse
  // construction order during static destruction. ThreadPool::global()
  // (when used) is its own function-local static whose destructor joins
  // the workers, so by the time this engine is destroyed no worker can be
  // touching a cached plan. See the header for the full teardown contract.
  static Engine engine;
  return engine;
}

#define IATF_INSTANTIATE_ENGINE(T, Bytes)                                    \
  template std::shared_ptr<const plan::GemmPlan<T, Bytes>>                  \
  Engine::plan_gemm<T, Bytes>(const GemmShape&);                            \
  template std::shared_ptr<const plan::TrsmPlan<T, Bytes>>                  \
  Engine::plan_trsm<T, Bytes>(const TrsmShape&);                            \
  template BatchHealth Engine::gemm<T, Bytes>(                              \
      Op, Op, T, const CompactBuffer<T>&, const CompactBuffer<T>&, T,       \
      CompactBuffer<T>&);                                                   \
  template BatchHealth Engine::trsm<T, Bytes>(Side, Uplo, Op, Diag, T,      \
                                              const CompactBuffer<T>&,      \
                                              CompactBuffer<T>&);           \
  template std::vector<BatchHealth> Engine::gemm_grouped<T, Bytes>(         \
      std::span<const sched::GemmSegment<T>>);                              \
  template std::vector<BatchHealth> Engine::trsm_grouped<T, Bytes>(         \
      std::span<const sched::TrsmSegment<T>>);

IATF_INSTANTIATE_ENGINE(float, 16)
IATF_INSTANTIATE_ENGINE(double, 16)
IATF_INSTANTIATE_ENGINE(std::complex<float>, 16)
IATF_INSTANTIATE_ENGINE(std::complex<double>, 16)
IATF_INSTANTIATE_ENGINE(float, 32)
IATF_INSTANTIATE_ENGINE(double, 32)
IATF_INSTANTIATE_ENGINE(std::complex<float>, 32)
IATF_INSTANTIATE_ENGINE(std::complex<double>, 32)

#undef IATF_INSTANTIATE_ENGINE

} // namespace iatf
