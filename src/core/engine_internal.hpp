// Engine-internal helpers shared by the engine's translation units
// (engine.cpp for GEMM/TRSM, engine_factor.cpp for the packed-layout and
// factorisation entry points). Not installed; not part of the public API.
#pragma once

#include <string>
#include <vector>

#include "iatf/common/error.hpp"
#include "iatf/common/fault_inject.hpp"
#include "iatf/common/status.hpp"
#include "iatf/common/types.hpp"
#include "iatf/layout/compact.hpp"

namespace iatf::detail {

inline bool site_prefix(const std::string& site, const char* prefix) {
  return site.rfind(prefix, 0) == 0;
}

/// Classify the in-flight exception as a degradation event. InvalidArg
/// errors are caller bugs and must never be silently degraded, so they are
/// rethrown; Timeout likewise -- a deadline already blown cannot be helped
/// by a slower scalar recompute. Everything else maps to the event the
/// fallback records.
inline DegradeEvent classify_failure() {
  try {
    throw;
  } catch (const fault::FaultInjected& f) {
    if (site_prefix(f.site(), "registry")) {
      return DegradeEvent::MissingKernel;
    }
    if (site_prefix(f.site(), "plan")) {
      return DegradeEvent::UnsupportedPlan;
    }
    if (site_prefix(f.site(), "threadpool") ||
        site_prefix(f.site(), "sched") ||
        site_prefix(f.site(), "resilience")) {
      return DegradeEvent::WorkerFailure;
    }
    return DegradeEvent::AllocFailure;
  } catch (const Error& e) {
    switch (e.status()) {
    case Status::InvalidArg:
    case Status::Timeout:
      throw;
    case Status::Unsupported:
      return DegradeEvent::UnsupportedPlan;
    case Status::AllocFailure:
      return DegradeEvent::AllocFailure;
    default:
      return DegradeEvent::WorkerFailure;
    }
  } catch (const std::bad_alloc&) {
    return DegradeEvent::AllocFailure;
  } catch (...) {
    return DegradeEvent::WorkerFailure;
  }
}

/// Restore one lane of `buf` from a raw snapshot of its storage.
template <class T>
void restore_lane(CompactBuffer<T>& buf,
                  const std::vector<real_t<T>>& snapshot, index_t lane) {
  using R = real_t<T>;
  const index_t pw = buf.pack_width();
  const index_t g = lane / pw;
  const index_t l = lane % pw;
  const index_t es = buf.element_stride();
  const index_t elems = buf.rows() * buf.cols();
  R* gdata = buf.group_data(g);
  const R* sdata = snapshot.data() + g * buf.group_stride();
  for (index_t e = 0; e < elems; ++e) {
    gdata[e * es + l] = sdata[e * es + l];
    if constexpr (is_complex_v<T>) {
      gdata[e * es + pw + l] = sdata[e * es + pw + l];
    }
  }
}

} // namespace iatf::detail
