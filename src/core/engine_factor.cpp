// Persistent packed layouts and fused batched factorisations: the engine
// entry points behind PackedHandle and potrf/getrf_nopiv/trtri_batch
// (DESIGN.md section 13).
//
// Layout propagation lives here: the packed-handle overloads feed the
// shared gemm_at/trsm_at pipelines with layout state 1, so their plans
// are cached beside -- never instead of -- the raw-buffer variants, and
// a chain of handle calls touches interleaved storage end-to-end with
// exactly one pack at the front and one unpack at the back. The engine
// counts both sides (packed_reuse_hits / packed_repacks) so the payoff
// is observable.
//
// Factorisations reuse the guarded-execution shape of guarded_trsm but
// not its transient retry loop: a FactorPlan allocates nothing and
// dispatches no registry kernels during execute, so the only failures
// are injected faults, deadline expiry, and numerical hazards -- and
// hazards are handled per lane, not per call. Non-SPD / hard-singular
// lanes are flagged and (under Fallback) ref-repaired or restored to
// their original input instead of poisoning the rest of the batch.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <vector>

#include "engine_internal.hpp"
#include "iatf/core/engine.hpp"
#include "iatf/ref/ref_blas.hpp"
#include "iatf/sched/group_scheduler.hpp"

namespace iatf {

namespace {

using detail::classify_failure;
using detail::restore_lane;

template <class T> bool finite_scalar(T v) {
  if constexpr (is_complex_v<T>) {
    return std::isfinite(v.real()) && std::isfinite(v.imag());
  } else {
    return std::isfinite(v);
  }
}

/// Does the factorisation write element (i, j)? Potrf touches the lower
/// triangle only, LU the full matrix, Trtri its own triangle (diagonal
/// included only when it is stored).
bool in_written_region(const factor::FactorShape& s, index_t i, index_t j) {
  switch (s.op) {
  case factor::FactorOp::Potrf:
    return i >= j;
  case factor::FactorOp::GetrfNp:
    return true;
  case factor::FactorOp::Trtri:
    if (i == j) {
      return s.diag == Diag::NonUnit;
    }
    return s.uplo == Uplo::Lower ? i > j : i < j;
  }
  return true;
}

template <class T>
void validate_factor(const factor::FactorShape& s, const CompactBuffer<T>& a) {
  IATF_CHECK(s.m >= 0 && s.batch >= 0, "factor: negative dimension");
  IATF_CHECK(a.rows() == s.m && a.cols() == s.m,
             "factor: matrices must be square and match the call");
  IATF_CHECK(a.batch() == s.batch, "factor: batch does not match");
}

/// Recompute one lane with the scalar reference factorisation,
/// out-of-place. The lane is written back only when the reference result
/// is defined -- ref::potrf accepted the input and the written region is
/// free of Inf/NaN. Otherwise returns false and leaves the lane exactly
/// as it was (the caller has already restored the original input there).
template <class T>
bool ref_factor_lane(const factor::FactorShape& s, CompactBuffer<T>& a,
                     index_t lane) {
  const index_t lda = std::max<index_t>(a.rows(), 1);
  std::vector<T> ta(static_cast<std::size_t>(a.rows() * a.cols()));
  a.export_colmajor(lane, ta.data(), lda);
  try {
    switch (s.op) {
    case factor::FactorOp::Potrf:
      ref::potrf(s.m, ta.data(), lda);
      break;
    case factor::FactorOp::GetrfNp:
      ref::getrf_np(s.m, ta.data(), lda);
      break;
    case factor::FactorOp::Trtri:
      ref::trtri(s.uplo, s.diag, s.m, ta.data(), lda);
      break;
    }
  } catch (const Error&) {
    return false; // ref::potrf refuses non-positive-definite input
  }
  for (index_t j = 0; j < s.m; ++j) {
    for (index_t i = 0; i < s.m; ++i) {
      if (in_written_region(s, i, j) &&
          !finite_scalar(ta[static_cast<std::size_t>(j * lda + i)])) {
        return false; // quiet zero pivot: as failed as a throwing one
      }
    }
  }
  a.import_colmajor(lane, ta.data(), lda);
  return true;
}

/// Post-execution hazard scan over the written region. The plan's pivot
/// scan catches bad pivots as they are formed; this catches Inf/NaN that
/// propagated into the output without passing through a scanned diagonal
/// (a non-finite off-diagonal input under Trtri, for example).
template <class T>
void scan_factor_output(const factor::FactorShape& s,
                        const CompactBuffer<T>& a, HealthRecorder& rec) {
  for (index_t lane = 0; lane < s.batch; ++lane) {
    if (rec.flagged(lane)) {
      continue;
    }
    bool bad = false;
    for (index_t j = 0; j < s.m && !bad; ++j) {
      for (index_t i = 0; i < s.m; ++i) {
        if (in_written_region(s, i, j) &&
            !finite_scalar(a.get(lane, i, j))) {
          bad = true;
          break;
        }
      }
    }
    if (bad) {
      rec.note_nonfinite(lane);
    }
  }
}

} // namespace

// --- Persistent packed layouts -------------------------------------------

template <class T>
factor::PackedHandle<T> Engine::pack(const T* src, index_t rows,
                                     index_t cols, index_t ld,
                                     index_t matrix_stride, index_t batch,
                                     index_t pack_width) {
  IATF_CHECK(src != nullptr || batch == 0, "pack: null source");
  IATF_CHECK(matrix_stride >= 0, "pack: negative matrix stride");
  CompactBuffer<T> buf =
      to_compact(src, rows, cols, ld, matrix_stride, batch, pack_width);
  packed_repacks_.fetch_add(1, std::memory_order_relaxed);
  return factor::PackedHandle<T>(std::move(buf));
}

template <class T>
factor::PackedHandle<T> Engine::adopt_packed(CompactBuffer<T> buf) {
  return factor::PackedHandle<T>(std::move(buf));
}

template <class T>
void Engine::repack(factor::PackedHandle<T>& handle, const T* src,
                    index_t ld, index_t matrix_stride) {
  IATF_CHECK(handle.valid(), "repack: invalid packed handle");
  IATF_CHECK(src != nullptr || handle.batch() == 0, "repack: null source");
  IATF_CHECK(matrix_stride >= 0, "repack: negative matrix stride");
  CompactBuffer<T>& buf = handle.buffer();
  for (index_t b = 0; b < buf.batch(); ++b) {
    buf.import_colmajor(b, src + b * matrix_stride, ld);
  }
  packed_repacks_.fetch_add(1, std::memory_order_relaxed);
  handle.bump_epoch();
}

template <class T>
void Engine::unpack(const factor::PackedHandle<T>& handle, T* dst,
                    index_t ld, index_t matrix_stride) {
  IATF_CHECK(handle.valid(), "unpack: invalid packed handle");
  IATF_CHECK(dst != nullptr || handle.batch() == 0,
             "unpack: null destination");
  IATF_CHECK(matrix_stride >= 0, "unpack: negative matrix stride");
  from_compact(handle.buffer(), dst, ld, matrix_stride);
}

template <class T, int Bytes>
BatchHealth Engine::gemm(Op op_a, Op op_b, T alpha,
                         const factor::PackedHandle<T>& a,
                         const factor::PackedHandle<T>& b, T beta,
                         factor::PackedHandle<T>& c) {
  IATF_CHECK(a.valid() && b.valid() && c.valid(),
             "gemm: invalid packed handle");
  packed_reuse_hits_.fetch_add(3, std::memory_order_relaxed);
  BatchHealth health = gemm_at<T, Bytes>(op_a, op_b, alpha, a.buffer(),
                                         b.buffer(), beta, c.buffer(),
                                         /*layout=*/1);
  c.bump_epoch();
  return health;
}

template <class T, int Bytes>
BatchHealth Engine::trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                         const factor::PackedHandle<T>& a,
                         factor::PackedHandle<T>& b) {
  IATF_CHECK(a.valid() && b.valid(), "trsm: invalid packed handle");
  packed_reuse_hits_.fetch_add(2, std::memory_order_relaxed);
  BatchHealth health = trsm_at<T, Bytes>(side, uplo, op_a, diag, alpha,
                                         a.buffer(), b.buffer(),
                                         /*layout=*/1);
  b.bump_epoch();
  return health;
}

// --- Fused batched factorisations ----------------------------------------

template <class T, int Bytes>
BatchHealth Engine::potrf_batch(CompactBuffer<T>& a) {
  factor::FactorShape shape;
  shape.op = factor::FactorOp::Potrf;
  shape.m = a.rows();
  shape.batch = a.batch();
  return factor_dispatch<T, Bytes>(shape, a, /*layout=*/0);
}

template <class T, int Bytes>
BatchHealth Engine::getrf_nopiv_batch(CompactBuffer<T>& a) {
  factor::FactorShape shape;
  shape.op = factor::FactorOp::GetrfNp;
  shape.m = a.rows();
  shape.batch = a.batch();
  return factor_dispatch<T, Bytes>(shape, a, /*layout=*/0);
}

template <class T, int Bytes>
BatchHealth Engine::trtri_batch(Uplo uplo, Diag diag, CompactBuffer<T>& a) {
  factor::FactorShape shape;
  shape.op = factor::FactorOp::Trtri;
  shape.m = a.rows();
  shape.uplo = uplo;
  shape.diag = diag;
  shape.batch = a.batch();
  return factor_dispatch<T, Bytes>(shape, a, /*layout=*/0);
}

template <class T, int Bytes>
BatchHealth Engine::potrf_batch(factor::PackedHandle<T>& a) {
  IATF_CHECK(a.valid(), "potrf_batch: invalid packed handle");
  packed_reuse_hits_.fetch_add(1, std::memory_order_relaxed);
  factor::FactorShape shape;
  shape.op = factor::FactorOp::Potrf;
  shape.m = a.rows();
  shape.batch = a.batch();
  BatchHealth health = factor_dispatch<T, Bytes>(shape, a.buffer(),
                                                 /*layout=*/1);
  a.bump_epoch();
  return health;
}

template <class T, int Bytes>
BatchHealth Engine::getrf_nopiv_batch(factor::PackedHandle<T>& a) {
  IATF_CHECK(a.valid(), "getrf_nopiv_batch: invalid packed handle");
  packed_reuse_hits_.fetch_add(1, std::memory_order_relaxed);
  factor::FactorShape shape;
  shape.op = factor::FactorOp::GetrfNp;
  shape.m = a.rows();
  shape.batch = a.batch();
  BatchHealth health = factor_dispatch<T, Bytes>(shape, a.buffer(),
                                                 /*layout=*/1);
  a.bump_epoch();
  return health;
}

template <class T, int Bytes>
BatchHealth Engine::trtri_batch(Uplo uplo, Diag diag,
                                factor::PackedHandle<T>& a) {
  IATF_CHECK(a.valid(), "trtri_batch: invalid packed handle");
  packed_reuse_hits_.fetch_add(1, std::memory_order_relaxed);
  factor::FactorShape shape;
  shape.op = factor::FactorOp::Trtri;
  shape.m = a.rows();
  shape.uplo = uplo;
  shape.diag = diag;
  shape.batch = a.batch();
  BatchHealth health = factor_dispatch<T, Bytes>(shape, a.buffer(),
                                                 /*layout=*/1);
  a.bump_epoch();
  return health;
}

template <class T, int Bytes>
BatchHealth Engine::factor_dispatch(const factor::FactorShape& shape,
                                    CompactBuffer<T>& a,
                                    std::uint8_t layout) {
  note_width_call(Bytes);
  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  const std::int64_t budget = deadline_ns_.load(std::memory_order_relaxed);
  Deadline deadline_at;
  const Deadline* deadline = nullptr;
  if (budget > 0) {
    deadline_at = Deadline::in(std::chrono::nanoseconds(budget));
    deadline = &deadline_at;
  }

  const Admit admitted = admit_call(deadline);
  struct Release {
    Engine* engine;
    ~Release() { engine->release_call(); }
  } release{this};
  if (admitted == Admit::RefRoute) {
    return ref_route_factor<T, Bytes>(shape, a, DegradeEvent::Overloaded);
  }

  // No breaker slot and no verify-and-quarantine gate here: a FactorPlan
  // is a fixed register sweep that dispatches no registry kernels, so
  // there is nothing to canary and no per-kernel failure domain to trip.
  try {
    return factor_execute<T, Bytes>(shape, a, policy, deadline, layout);
  } catch (const Error& e) {
    if (e.status() == Status::Timeout) {
      timeout_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    throw;
  }
}

template <class T, int Bytes>
BatchHealth Engine::factor_execute(const factor::FactorShape& shape,
                                   CompactBuffer<T>& a, ExecPolicy policy,
                                   const Deadline* deadline,
                                   std::uint8_t layout) {
  using R = real_t<T>;
  BatchHealth health;
  health.batch = shape.batch;
  const bool guarded = policy != ExecPolicy::Fast;
  const bool fallback = policy == ExecPolicy::Fallback;

  // Factorisations divide by the pad-lane diagonals, so make them unit
  // before touching the data (to_compact zero-fills the padding).
  a.pad_identity();

  // In-place factorisation: repairing a lane needs its input back.
  std::vector<R> snapshot;
  if (fallback) {
    snapshot.assign(a.data(), a.data() + a.size());
  }

  HealthRecorder rec(shape.batch);
  try {
    auto plan = plan_factor<T, Bytes>(shape, layout);
    plan->execute(a, guarded ? &rec : nullptr, deadline);
  } catch (...) {
    if (!fallback) {
      throw; // Fast/Check: failures still propagate
    }
    // rethrows InvalidArg and Timeout
    const DegradeEvent event = classify_failure();
    validate_factor(shape, a);
    std::copy(snapshot.begin(), snapshot.end(), a.data());
    for (index_t lane = 0; lane < shape.batch; ++lane) {
      if (!ref_factor_lane(shape, a, lane)) {
        // Reference refused the lane (non-SPD / hard singular): it keeps
        // its restored original input and is flagged, like the fast
        // path's hazard handling.
        ++health.singular;
        if (health.first_singular < 0) {
          health.first_singular = lane;
        }
        health.events |= DegradeEvent::NumericalHazard;
      }
    }
    health.events |= event;
    health.fallback = shape.batch;
    health.first_fallback = shape.batch > 0 ? 0 : -1;
    degraded_calls_.fetch_add(1, std::memory_order_relaxed);
    fallback_lanes_.fetch_add(static_cast<std::uint64_t>(health.fallback),
                              std::memory_order_relaxed);
    return health;
  }

  if (guarded) {
    scan_factor_output(shape, a, rec);
    rec.fill(health);
    if (health.nonfinite != 0 || health.singular != 0) {
      health.events |= DegradeEvent::NumericalHazard;
      if (fallback) {
        for (index_t lane = 0; lane < shape.batch; ++lane) {
          if (!rec.flagged(lane)) {
            continue;
          }
          restore_lane(a, snapshot, lane);
          // Ref repair where the reference result is defined; otherwise
          // the lane keeps its restored original input (the documented
          // potrf contract -- ref::potrf refuses non-SPD lanes).
          ref_factor_lane(shape, a, lane);
          if (health.first_fallback < 0) {
            health.first_fallback = lane;
          }
          ++health.fallback;
        }
        if (health.fallback > 0) {
          degraded_calls_.fetch_add(1, std::memory_order_relaxed);
          fallback_lanes_.fetch_add(
              static_cast<std::uint64_t>(health.fallback),
              std::memory_order_relaxed);
        }
      }
    }
  }
  return health;
}

template <class T, int Bytes>
BatchHealth Engine::ref_route_factor(const factor::FactorShape& shape,
                                     CompactBuffer<T>& a,
                                     DegradeEvent event) {
  validate_factor(shape, a);
  BatchHealth health;
  health.batch = shape.batch;
  for (index_t lane = 0; lane < shape.batch; ++lane) {
    if (!ref_factor_lane(shape, a, lane)) {
      ++health.singular;
      if (health.first_singular < 0) {
        health.first_singular = lane;
      }
      health.events |= DegradeEvent::NumericalHazard;
    }
  }
  health.events |= event;
  health.fallback = shape.batch;
  health.first_fallback = shape.batch > 0 ? 0 : -1;
  degraded_calls_.fetch_add(1, std::memory_order_relaxed);
  fallback_lanes_.fetch_add(static_cast<std::uint64_t>(shape.batch),
                            std::memory_order_relaxed);
  ref_routed_calls_.fetch_add(1, std::memory_order_relaxed);
  return health;
}

template <class T, int Bytes>
std::vector<BatchHealth>
Engine::factor_grouped(std::span<const sched::FactorSegment<T>> segments) {
  grouped_calls_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t count = segments.size();
  std::vector<BatchHealth> healths(count);
  if (count == 0) {
    return healths;
  }

  std::vector<factor::FactorShape> shapes(count);
  std::vector<sched::ClassKey> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    const sched::FactorSegment<T>& seg = segments[i];
    IATF_CHECK(seg.a != nullptr, "factor_grouped: null segment buffer");
    factor::FactorShape s;
    s.op = seg.op;
    s.m = seg.a->rows();
    s.uplo = seg.uplo;
    s.diag = seg.diag;
    s.batch = seg.a->batch();
    shapes[i] = s;
    keys[i] = sched::factor_class_key(seg.op, s.m, seg.uplo, seg.diag,
                                      s.batch);
  }

  const ExecPolicy policy = policy_.load(std::memory_order_relaxed);
  const std::int64_t budget = deadline_ns_.load(std::memory_order_relaxed);
  Deadline deadline_at;
  const Deadline* deadline = nullptr;
  if (budget > 0) {
    deadline_at = Deadline::in(std::chrono::nanoseconds(budget));
    deadline = &deadline_at;
  }

  const Admit admitted = admit_call(deadline);
  struct Release {
    Engine* engine;
    ~Release() { engine->release_call(); }
  } release{this};
  if (admitted == Admit::RefRoute) {
    for (std::size_t i = 0; i < count; ++i) {
      healths[i] = ref_route_factor<T, Bytes>(shapes[i], *segments[i].a,
                                              DegradeEvent::Overloaded);
    }
    return healths;
  }

  const std::vector<sched::SizeClass> classes = sched::bin_by_descriptor(keys);
  record_grouped_plans(classes.size());

  // Execute class by class (first-appearance order), so each distinct
  // descriptor resolves its plan once and the segments sharing it run
  // back to back against the warm cache entry. The single deadline spans
  // the whole grouped call.
  try {
    for (const sched::SizeClass& cls : classes) {
      for (std::size_t idx : cls.segments) {
        healths[idx] = factor_execute<T, Bytes>(shapes[idx], *segments[idx].a,
                                                policy, deadline,
                                                /*layout=*/0);
      }
    }
  } catch (const Error& e) {
    if (e.status() == Status::Timeout) {
      timeout_calls_.fetch_add(1, std::memory_order_relaxed);
    }
    throw;
  }
  return healths;
}

// --- Explicit instantiations ---------------------------------------------

#define IATF_INSTANTIATE_ENGINE_PACK(T)                                       \
  template factor::PackedHandle<T> Engine::pack<T>(                           \
      const T*, index_t, index_t, index_t, index_t, index_t, index_t);        \
  template factor::PackedHandle<T> Engine::adopt_packed<T>(CompactBuffer<T>); \
  template void Engine::repack<T>(factor::PackedHandle<T>&, const T*,         \
                                  index_t, index_t);                          \
  template void Engine::unpack<T>(const factor::PackedHandle<T>&, T*,         \
                                  index_t, index_t);

#define IATF_INSTANTIATE_ENGINE_FACTOR(T, Bytes)                              \
  template BatchHealth Engine::gemm<T, Bytes>(                                \
      Op, Op, T, const factor::PackedHandle<T>&,                              \
      const factor::PackedHandle<T>&, T, factor::PackedHandle<T>&);           \
  template BatchHealth Engine::trsm<T, Bytes>(                                \
      Side, Uplo, Op, Diag, T, const factor::PackedHandle<T>&,                \
      factor::PackedHandle<T>&);                                              \
  template BatchHealth Engine::potrf_batch<T, Bytes>(CompactBuffer<T>&);      \
  template BatchHealth Engine::potrf_batch<T, Bytes>(                         \
      factor::PackedHandle<T>&);                                              \
  template BatchHealth Engine::getrf_nopiv_batch<T, Bytes>(                   \
      CompactBuffer<T>&);                                                     \
  template BatchHealth Engine::getrf_nopiv_batch<T, Bytes>(                   \
      factor::PackedHandle<T>&);                                              \
  template BatchHealth Engine::trtri_batch<T, Bytes>(Uplo, Diag,              \
                                                     CompactBuffer<T>&);      \
  template BatchHealth Engine::trtri_batch<T, Bytes>(                         \
      Uplo, Diag, factor::PackedHandle<T>&);                                  \
  template std::vector<BatchHealth> Engine::factor_grouped<T, Bytes>(         \
      std::span<const sched::FactorSegment<T>>);

IATF_INSTANTIATE_ENGINE_PACK(float)
IATF_INSTANTIATE_ENGINE_PACK(double)
IATF_INSTANTIATE_ENGINE_PACK(std::complex<float>)
IATF_INSTANTIATE_ENGINE_PACK(std::complex<double>)

IATF_INSTANTIATE_ENGINE_FACTOR(float, 16)
IATF_INSTANTIATE_ENGINE_FACTOR(double, 16)
IATF_INSTANTIATE_ENGINE_FACTOR(std::complex<float>, 16)
IATF_INSTANTIATE_ENGINE_FACTOR(std::complex<double>, 16)
IATF_INSTANTIATE_ENGINE_FACTOR(float, 32)
IATF_INSTANTIATE_ENGINE_FACTOR(double, 32)
IATF_INSTANTIATE_ENGINE_FACTOR(std::complex<float>, 32)
IATF_INSTANTIATE_ENGINE_FACTOR(std::complex<double>, 32)
IATF_INSTANTIATE_ENGINE_FACTOR(float, 64)
IATF_INSTANTIATE_ENGINE_FACTOR(double, 64)
IATF_INSTANTIATE_ENGINE_FACTOR(std::complex<float>, 64)
IATF_INSTANTIATE_ENGINE_FACTOR(std::complex<double>, 64)

#undef IATF_INSTANTIATE_ENGINE_PACK
#undef IATF_INSTANTIATE_ENGINE_FACTOR

} // namespace iatf
