#include "iatf/pack/trsm_pack.hpp"

#include <cmath>
#include <complex>
#include <cstring>

#include "iatf/common/error.hpp"

namespace iatf::pack {

TrsmCanon TrsmCanon::make(const TrsmShape& shape) {
  TrsmCanon c;
  c.m = shape.a_dim();
  c.n = shape.side == Side::Left ? shape.n : shape.m;
  c.b_transpose = shape.side == Side::Right;
  c.conj = shape.op_a == Op::ConjTrans;

  // Left: the matrix of the left problem is op(A) itself.
  // Right: X op(A) = aB  <=>  op(A)^T X^T = aB^T, so the left matrix is
  // op(A)^T -- NoTrans becomes a transposed read, Trans becomes direct,
  // ConjTrans becomes a conjugated direct read.
  if (shape.side == Side::Left) {
    c.transpose = shape.op_a != Op::NoTrans;
  } else {
    c.transpose = shape.op_a == Op::NoTrans;
  }

  // The left matrix is effectively lower iff the stored triangle and the
  // transposition agree; otherwise reverse indices to make it lower.
  const bool effective_lower = (shape.uplo == Uplo::Lower) != c.transpose;
  c.reverse = !effective_lower;
  return c;
}

namespace {

// Fixed-size copy dispatch: element blocks/planes are one or two SIMD
// registers, so constant-size memcpys inline as vector moves.
inline void copy_fixed(const void* src, void* dst, index_t bytes) {
  switch (bytes) {
  case 16:
    std::memcpy(dst, src, 16);
    break;
  case 32:
    std::memcpy(dst, src, 32);
    break;
  case 64:
    std::memcpy(dst, src, 64);
    break;
  default:
    std::memcpy(dst, src, static_cast<std::size_t>(bytes));
  }
}

// Read canonical-lower element L(i,j) of A (i >= j) into dst,
// applying reversal / transposition / conjugation.
template <class T>
inline void gather_a(const real_t<T>* src, index_t m, index_t es,
                     const TrsmCanon& canon, index_t i, index_t j,
                     real_t<T>* dst) {
  using R = real_t<T>;
  const index_t ii = canon.reverse ? m - 1 - i : i;
  const index_t jj = canon.reverse ? m - 1 - j : j;
  const index_t row = canon.transpose ? jj : ii;
  const index_t col = canon.transpose ? ii : jj;
  const real_t<T>* p = src + (col * m + row) * es;
  if constexpr (is_complex_v<T>) {
    const index_t half = es / 2;
    copy_fixed(p, dst, half * static_cast<index_t>(sizeof(R)));
    if (canon.conj) {
      for (index_t l = 0; l < half; ++l) {
        dst[half + l] = -p[half + l];
      }
    } else {
      copy_fixed(p + half, dst + half,
                 half * static_cast<index_t>(sizeof(R)));
    }
  } else {
    copy_fixed(p, dst, es * static_cast<index_t>(sizeof(R)));
  }
}

// Replace an element block with its per-lane reciprocal. Exact zeros map
// to zero (padded lanes; a genuinely singular input is BLAS-undefined
// behaviour and yields zeros in that lane only). When `singular` is set,
// lanes whose reciprocal is not a finite nonzero value -- zero, NaN, or
// subnormal-tiny diagonals -- are flagged so a guarded engine can reroute
// exactly those matrices to the reference path.
template <class T>
inline void invert_block(real_t<T>* blk, index_t es,
                         std::uint64_t* singular) {
  using R = real_t<T>;
  if constexpr (is_complex_v<T>) {
    const index_t half = es / 2;
    for (index_t l = 0; l < half; ++l) {
      const R re = blk[l];
      const R im = blk[half + l];
      const R mag2 = re * re + im * im;
      if (mag2 == R(0)) {
        blk[l] = R(0);
        blk[half + l] = R(0);
        if (singular != nullptr) {
          *singular |= std::uint64_t{1} << l;
        }
      } else {
        blk[l] = re / mag2;
        blk[half + l] = -im / mag2;
        if (singular != nullptr &&
            !(std::isfinite(blk[l]) && std::isfinite(blk[half + l]))) {
          *singular |= std::uint64_t{1} << l;
        }
      }
    }
  } else {
    for (index_t l = 0; l < es; ++l) {
      if (blk[l] == R(0)) {
        blk[l] = R(0);
        if (singular != nullptr) {
          *singular |= std::uint64_t{1} << l;
        }
      } else {
        blk[l] = R(1) / blk[l];
        if (singular != nullptr && !std::isfinite(blk[l])) {
          *singular |= std::uint64_t{1} << l;
        }
      }
    }
  }
}

template <class T> inline void unit_block(real_t<T>* blk, index_t es) {
  using R = real_t<T>;
  if constexpr (is_complex_v<T>) {
    const index_t half = es / 2;
    for (index_t l = 0; l < half; ++l) {
      blk[l] = R(1);
      blk[half + l] = R(0);
    }
  } else {
    for (index_t l = 0; l < es; ++l) {
      blk[l] = R(1);
    }
  }
}

// Map canonical B'(i, c) to the user-layout (row, col) pair.
inline std::pair<index_t, index_t>
map_b_index(const TrsmCanon& canon, index_t i, index_t c) {
  const index_t ii = canon.reverse ? canon.m - 1 - i : i;
  return canon.b_transpose ? std::pair{c, ii} : std::pair{ii, c};
}

template <class T>
inline void scale_block(real_t<T>* blk, index_t es, T alpha) {
  using R = real_t<T>;
  if constexpr (is_complex_v<T>) {
    const index_t half = es / 2;
    const R ar = alpha.real();
    const R ai = alpha.imag();
    for (index_t l = 0; l < half; ++l) {
      const R re = blk[l];
      const R im = blk[half + l];
      blk[l] = ar * re - ai * im;
      blk[half + l] = ar * im + ai * re;
    }
  } else {
    for (index_t l = 0; l < es; ++l) {
      blk[l] *= alpha;
    }
  }
}

} // namespace

index_t packed_trsm_a_size(std::span<const Tile> blocks, index_t es) {
  index_t total = 0;
  index_t covered = 0;
  for (const Tile& b : blocks) {
    total += covered * b.size;                // rect blocks to the left
    total += b.size * (b.size + 1) / 2;       // the triangular block
    covered += b.size;
  }
  return total * es;
}

index_t packed_trsm_row_offset(std::span<const Tile> blocks, index_t bi,
                               index_t es) {
  index_t total = 0;
  index_t covered = 0;
  for (index_t idx = 0; idx < bi; ++idx) {
    const Tile& b = blocks[idx];
    total += covered * b.size + b.size * (b.size + 1) / 2;
    covered += b.size;
  }
  return total * es;
}

template <class T>
void pack_trsm_a(const real_t<T>* src, index_t es, const TrsmCanon& canon,
                 Diag diag, std::span<const Tile> blocks, real_t<T>* out,
                 bool invert_diag, std::uint64_t* singular) {
  real_t<T>* dst = out;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const Tile& rowb = blocks[bi];
    // Rectangular sub-blocks, k-major within each bj block (the order the
    // rect kernel streams them).
    for (std::size_t bj = 0; bj < bi; ++bj) {
      const Tile& colb = blocks[bj];
      for (index_t k = 0; k < colb.size; ++k) {
        for (index_t i = 0; i < rowb.size; ++i) {
          gather_a<T>(src, canon.m, es, canon, rowb.offset + i,
                      colb.offset + k, dst);
          dst += es;
        }
      }
    }
    // Triangular block, row-major, reciprocal diagonal.
    for (index_t i = 0; i < rowb.size; ++i) {
      for (index_t j = 0; j <= i; ++j) {
        gather_a<T>(src, canon.m, es, canon, rowb.offset + i,
                    rowb.offset + j, dst);
        if (i == j) {
          if (diag == Diag::Unit) {
            unit_block<T>(dst, es);
          } else if (invert_diag) {
            invert_block<T>(dst, es, singular);
          }
        }
        dst += es;
      }
    }
  }
}

template <class T>
void pack_trsm_b(const real_t<T>* src, index_t src_rows,
                 const TrsmCanon& canon, index_t es, T alpha,
                 real_t<T>* out) {
  const bool unit_alpha = alpha == T(1);
  for (index_t c = 0; c < canon.n; ++c) {
    for (index_t i = 0; i < canon.m; ++i) {
      const auto [row, col] = map_b_index(canon, i, c);
      real_t<T>* dst = out + (c * canon.m + i) * es;
      copy_fixed(src + (col * src_rows + row) * es, dst,
                 es * static_cast<index_t>(sizeof(real_t<T>)));
      if (!unit_alpha) {
        scale_block<T>(dst, es, alpha);
      }
    }
  }
}

template <class T>
void unpack_trsm_b(const real_t<T>* canonical, index_t src_rows,
                   const TrsmCanon& canon, index_t es, real_t<T>* dst) {
  for (index_t c = 0; c < canon.n; ++c) {
    for (index_t i = 0; i < canon.m; ++i) {
      const auto [row, col] = map_b_index(canon, i, c);
      copy_fixed(canonical + (c * canon.m + i) * es,
                 dst + (col * src_rows + row) * es,
                 es * static_cast<index_t>(sizeof(real_t<T>)));
    }
  }
}

#define IATF_INSTANTIATE_TRSM_PACK(T)                                        \
  template void pack_trsm_a<T>(const real_t<T>*, index_t,                   \
                               const TrsmCanon&, Diag,                      \
                               std::span<const Tile>, real_t<T>*, bool,     \
                               std::uint64_t*);                             \
  template void pack_trsm_b<T>(const real_t<T>*, index_t,                   \
                               const TrsmCanon&, index_t, T,                \
                               real_t<T>*);                                 \
  template void unpack_trsm_b<T>(const real_t<T>*, index_t,                 \
                                 const TrsmCanon&, index_t, real_t<T>*);

IATF_INSTANTIATE_TRSM_PACK(float)
IATF_INSTANTIATE_TRSM_PACK(double)
IATF_INSTANTIATE_TRSM_PACK(std::complex<float>)
IATF_INSTANTIATE_TRSM_PACK(std::complex<double>)

#undef IATF_INSTANTIATE_TRSM_PACK

} // namespace iatf::pack
