#include "iatf/pack/gemm_pack.hpp"

#include <complex>
#include <cstring>

#include "iatf/common/error.hpp"

namespace iatf::pack {
namespace {

// Copy `bytes` (an element block or plane). Element blocks are one or two
// SIMD registers wide, so dispatching to fixed-size memcpys lets the
// compiler inline them as vector moves -- this is the paper's observation
// that "the data copied each time is at least the number of data that
// fills the length of the SIMD vector", turned into code: a variable-size
// memcpy here would be an out-of-line call per element.
inline void copy_fixed(const void* src, void* dst, index_t bytes) {
  switch (bytes) {
  case 16:
    std::memcpy(dst, src, 16);
    break;
  case 32:
    std::memcpy(dst, src, 32);
    break;
  case 64:
    std::memcpy(dst, src, 64);
    break;
  default:
    std::memcpy(dst, src, static_cast<std::size_t>(bytes));
  }
}

// Copy one element block (es reals); `conj` negates the imaginary plane
// (the second half of the block for complex layouts).
template <class T>
inline void copy_block(const real_t<T>* src, real_t<T>* dst, index_t es,
                       bool conj) {
  using R = real_t<T>;
  if constexpr (is_complex_v<T>) {
    const index_t half = es / 2;
    copy_fixed(src, dst, half * static_cast<index_t>(sizeof(R)));
    if (conj) {
      for (index_t l = 0; l < half; ++l) {
        dst[half + l] = -src[half + l];
      }
    } else {
      copy_fixed(src + half, dst + half,
                 half * static_cast<index_t>(sizeof(R)));
    }
  } else {
    (void)conj;
    copy_fixed(src, dst, es * static_cast<index_t>(sizeof(R)));
  }
}

} // namespace

template <class T>
void pack_gemm_a(const real_t<T>* src, index_t rows, index_t es, Op op,
                 std::span<const Tile> m_tiles, index_t k,
                 real_t<T>* out) {
  const bool trans = op != Op::NoTrans;
  const bool conj = op == Op::ConjTrans;
  real_t<T>* dst = out;
  for (const Tile& t : m_tiles) {
    for (index_t l = 0; l < k; ++l) {
      for (index_t i = 0; i < t.size; ++i) {
        const index_t row = trans ? l : t.offset + i;
        const index_t col = trans ? t.offset + i : l;
        copy_block<T>(src + (col * rows + row) * es, dst, es, conj);
        dst += es;
      }
    }
  }
}

template <class T>
void pack_gemm_b(const real_t<T>* src, index_t rows, index_t es, Op op,
                 std::span<const Tile> n_tiles, index_t k,
                 real_t<T>* out) {
  const bool trans = op != Op::NoTrans;
  const bool conj = op == Op::ConjTrans;
  real_t<T>* dst = out;
  for (const Tile& t : n_tiles) {
    for (index_t l = 0; l < k; ++l) {
      for (index_t j = 0; j < t.size; ++j) {
        const index_t row = trans ? t.offset + j : l;
        const index_t col = trans ? l : t.offset + j;
        copy_block<T>(src + (col * rows + row) * es, dst, es, conj);
        dst += es;
      }
    }
  }
}

#define IATF_INSTANTIATE_GEMM_PACK(T)                                        \
  template void pack_gemm_a<T>(const real_t<T>*, index_t, index_t, Op,      \
                               std::span<const Tile>, index_t,              \
                               real_t<T>*);                                 \
  template void pack_gemm_b<T>(const real_t<T>*, index_t, index_t, Op,      \
                               std::span<const Tile>, index_t, real_t<T>*);

IATF_INSTANTIATE_GEMM_PACK(float)
IATF_INSTANTIATE_GEMM_PACK(double)
IATF_INSTANTIATE_GEMM_PACK(std::complex<float>)
IATF_INSTANTIATE_GEMM_PACK(std::complex<double>)

#undef IATF_INSTANTIATE_GEMM_PACK

} // namespace iatf::pack
