#include "iatf/tune/tuning_table.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define IATF_HAVE_FLOCK 1
#endif

namespace iatf::tune {
namespace {

#if defined(IATF_HAVE_FLOCK)
/// Advisory cross-process lock on `<path>.lock`. Two processes saving the
/// same table path serialise their tmp-write + rename sequences, so a
/// reader never observes the tmp file of one writer renamed over by
/// another (the rename itself is atomic; the lock keeps the *pairing* of
/// tmp content and final name coherent). The lock file is left in place
/// -- deleting it would race a third process opening it.
class FileLock {
public:
  explicit FileLock(const std::string& path)
      : fd_(::open((path + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                   0644)) {
    if (fd_ >= 0) {
      while (::flock(fd_, LOCK_EX) != 0) {
        if (errno != EINTR) {
          break; // degrade to unlocked: atomic rename still protects readers
        }
      }
    }
  }
  ~FileLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

private:
  int fd_ = -1;
};
#else
class FileLock {
public:
  explicit FileLock(const std::string&) {}
};
#endif

bool valid_record(const TuneRecord& rec) {
  const bool packs_ok = rec.pack_a >= -1 && rec.pack_a <= 1 &&
                        rec.pack_b >= -1 && rec.pack_b <= 1;
  return packs_ok && rec.slice_groups >= 0 && rec.mc_cap >= 0 &&
         rec.nc_cap >= 0 && rec.chunk_groups >= 0 && rec.gflops >= 0.0 &&
         rec.baseline_gflops >= 0.0;
}

} // namespace

const char* to_string(LoadResult result) noexcept {
  switch (result) {
  case LoadResult::Ok:
    return "ok";
  case LoadResult::Missing:
    return "missing";
  case LoadResult::Corrupt:
    return "corrupt";
  case LoadResult::HardwareMismatch:
    return "hardware-mismatch";
  }
  return "unknown";
}

bool TuningTable::save(const std::string& path) const {
  // Serialise concurrent savers (other threads via their own tables, other
  // processes via the autotuner CLI) on an advisory file lock; the write
  // itself stays tmp + atomic rename so readers never see a torn file.
  FileLock lock(path);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    // max_digits10 keeps the throughput fields (and with them record
    // equality) exact across a save -> load round trip.
    out.precision(std::numeric_limits<double>::max_digits10);
    out << "iatf-tune " << kFormatVersion << "\n";
    out << "hw " << hardware_ << "\n";
    // Canonical record order: the map is unordered, but emitting lines
    // sorted by key text makes save -> load -> save byte-identical, so
    // tables diff cleanly and CI can cmp round-tripped files.
    std::vector<std::string> lines;
    lines.reserve(records_.size());
    for (const auto& [key, rec] : records_) {
      std::ostringstream line;
      line.precision(std::numeric_limits<double>::max_digits10);
      line << "rec ";
      write_key(line, key);
      line << ' ' << rec.pack_a << ' ' << rec.pack_b << ' '
           << rec.slice_groups << ' ' << rec.mc_cap << ' ' << rec.nc_cap
           << ' ' << rec.chunk_groups << ' ' << rec.gflops << ' '
           << rec.baseline_gflops << '\n';
      lines.push_back(line.str());
    }
    std::sort(lines.begin(), lines.end());
    for (const std::string& line : lines) {
      out << line;
    }
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

LoadResult TuningTable::load(const std::string& path) {
  records_.clear();
  std::ifstream in(path);
  if (!in) {
    return LoadResult::Missing;
  }
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "iatf-tune" ||
      version != kFormatVersion) {
    return LoadResult::Corrupt;
  }
  std::string tag, hw;
  if (!(in >> tag >> hw) || tag != "hw") {
    return LoadResult::Corrupt;
  }
  if (hw != hardware_) {
    return LoadResult::HardwareMismatch;
  }
  while (in >> tag) {
    if (tag != "rec") {
      records_.clear();
      return LoadResult::Corrupt;
    }
    TuneKey key;
    TuneRecord rec;
    if (!parse_key(in, key) ||
        !(in >> rec.pack_a >> rec.pack_b >> rec.slice_groups >>
          rec.mc_cap >> rec.nc_cap >> rec.chunk_groups >> rec.gflops >>
          rec.baseline_gflops) ||
        !valid_record(rec)) {
      records_.clear();
      return LoadResult::Corrupt;
    }
    records_[key] = rec;
  }
  return LoadResult::Ok;
}

std::string TuningTable::default_path() {
  if (const char* env = std::getenv("IATF_TUNE_FILE");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return "iatf_tune.tbl";
}

plan::PlanTuning env_plan_tuning() {
  plan::PlanTuning tuning;
  const auto flag = [](const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr || v[0] == '\0') {
      return -1;
    }
    return v[0] == '0' ? 0 : v[0] == '1' ? 1 : -1;
  };
  tuning.force_pack_a = flag("IATF_FORCE_PACK_A");
  tuning.force_pack_b = flag("IATF_FORCE_PACK_B");
  if (const char* v = std::getenv("IATF_SLICE_OVERRIDE");
      v != nullptr && v[0] != '\0') {
    const long long slice = std::atoll(v);
    if (slice > 0) {
      tuning.slice_override = static_cast<index_t>(slice);
    }
  }
  return tuning;
}

index_t env_group_grain() {
  if (const char* v = std::getenv("IATF_GROUP_GRAIN");
      v != nullptr && v[0] != '\0') {
    const long long grain = std::atoll(v);
    if (grain > 0) {
      return static_cast<index_t>(grain);
    }
  }
  return 0;
}

} // namespace iatf::tune
