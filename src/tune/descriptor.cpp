#include "iatf/tune/descriptor.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "iatf/simd/isa.hpp"

namespace iatf::tune {
namespace {

bool valid_enum_fields(const TuneKey& key) {
  const bool dtype_ok = key.dtype == 's' || key.dtype == 'd' ||
                        key.dtype == 'c' || key.dtype == 'z';
  return (key.op == 'g' || key.op == 't') && dtype_ok &&
         (key.bytes == 16 || key.bytes == 32 || key.bytes == 64) &&
         key.m >= 0 && key.n >= 0 &&
         key.k >= 0 && key.op_a <= 2 && key.op_b <= 2 && key.side <= 1 &&
         key.uplo <= 1 && key.diag <= 1;
}

/// First "model name" (x86) or "CPU part" (ARM) line of /proc/cpuinfo,
/// slugged to a single token; empty when unavailable.
std::string cpu_model_slug() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const bool hit = line.rfind("model name", 0) == 0 ||
                     line.rfind("CPU part", 0) == 0 ||
                     line.rfind("Processor", 0) == 0;
    if (!hit) {
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::string slug;
    for (char c : line.substr(colon + 1)) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      } else if (!slug.empty() && slug.back() != '-') {
        slug += '-';
      }
    }
    while (!slug.empty() && slug.back() == '-') {
      slug.pop_back();
    }
    if (!slug.empty()) {
      return slug;
    }
  }
  return {};
}

} // namespace

std::size_t TuneKeyHash::operator()(const TuneKey& key) const noexcept {
  // FNV-1a over the key's fields (same scheme as the engine's plan key).
  std::size_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(key.op) << 8 |
      static_cast<std::uint64_t>(key.dtype));
  mix(static_cast<std::uint64_t>(key.bytes));
  mix(static_cast<std::uint64_t>(key.m));
  mix(static_cast<std::uint64_t>(key.n));
  mix(static_cast<std::uint64_t>(key.k));
  mix(static_cast<std::uint64_t>(key.op_a) |
      static_cast<std::uint64_t>(key.op_b) << 8 |
      static_cast<std::uint64_t>(key.side) << 16 |
      static_cast<std::uint64_t>(key.uplo) << 24 |
      static_cast<std::uint64_t>(key.diag) << 32);
  return h;
}

std::string to_string(const TuneKey& key) {
  std::ostringstream out;
  write_key(out, key);
  return out.str();
}

void write_key(std::ostream& out, const TuneKey& key) {
  out << key.op << ' ' << key.dtype << ' ' << key.bytes << ' ' << key.m
      << ' ' << key.n << ' ' << key.k << ' ' << int(key.op_a) << ' '
      << int(key.op_b) << ' ' << int(key.side) << ' ' << int(key.uplo)
      << ' ' << int(key.diag);
}

bool parse_key(std::istream& in, TuneKey& key) {
  int op_a = 0, op_b = 0, side = 0, uplo = 0, diag = 0;
  if (!(in >> key.op >> key.dtype >> key.bytes >> key.m >> key.n >> key.k >>
        op_a >> op_b >> side >> uplo >> diag)) {
    return false;
  }
  if (op_a < 0 || op_a > 2 || op_b < 0 || op_b > 2 || side < 0 || side > 1 ||
      uplo < 0 || uplo > 1 || diag < 0 || diag > 1) {
    return false;
  }
  key.op_a = static_cast<std::uint8_t>(op_a);
  key.op_b = static_cast<std::uint8_t>(op_b);
  key.side = static_cast<std::uint8_t>(side);
  key.uplo = static_cast<std::uint8_t>(uplo);
  key.diag = static_cast<std::uint8_t>(diag);
  return valid_enum_fields(key);
}

std::string hardware_signature(const CacheInfo& cache) {
#if defined(__aarch64__)
  const char* arch = "aarch64";
#elif defined(__x86_64__)
  const char* arch = "x86_64";
#else
  const char* arch = "unknown";
#endif
  static const std::string cpu = [] {
    std::string slug = cpu_model_slug();
    return slug.empty() ? std::string("generic") : slug;
  }();
  std::ostringstream out;
  out << arch << ':' << cpu << ":l1d" << cache.l1d << ":l2" << cache.l2
      << ':' << simd::isa_name(simd::active_isa());
  return out.str();
}

} // namespace iatf::tune
