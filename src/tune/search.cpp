#include "iatf/tune/search.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "iatf/codegen/gemm_emitter.hpp"
#include "iatf/common/error.hpp"
#include "iatf/common/rng.hpp"
#include "iatf/common/timer.hpp"
#include "iatf/kernels/registry.hpp"
#include "iatf/layout/compact.hpp"
#include "iatf/pack/trsm_pack.hpp"
#include "iatf/pipesim/simulator.hpp"
#include "iatf/plan/gemm_plan.hpp"
#include "iatf/plan/trsm_plan.hpp"
#include "iatf/ref/ref_blas.hpp"
#include "iatf/sched/scheduler.hpp"

namespace iatf::tune {
namespace {

constexpr double kBadScore = 1e30;

/// Secondary ranking terms: keep candidates near the analytical default
/// ahead of exotic ones when the simulator cannot tell them apart (the
/// simulator sees the kernel stream, not slice or chunk effects).
double tie_break(const plan::PlanTuning& tuning, index_t slice_default) {
  double t = 0.0;
  if (tuning.slice_override > 0 && slice_default > 0) {
    t += 1e-3 * std::fabs(std::log2(
                    static_cast<double>(tuning.slice_override) /
                    static_cast<double>(slice_default)));
  }
  if (tuning.chunk_groups > 0) {
    t += 5e-4;
  }
  return t;
}

/// Packing copies the operand once per group: charge the proxy cost of
/// one load+store per packed element block, spread over the group's
/// madds, so pack candidates rank behind no-pack ones of the same kernel
/// unless the kernel stream itself differs.
double gemm_pack_proxy(const GemmShape& s, int pack_a, int pack_b) {
  const double madds = static_cast<double>(std::max<index_t>(s.m, 1)) *
                       static_cast<double>(std::max<index_t>(s.n, 1)) *
                       static_cast<double>(std::max<index_t>(s.k, 1));
  double blocks = 0.0;
  if (pack_a == 1) {
    blocks += static_cast<double>(s.m * s.k);
  }
  if (pack_b == 1) {
    blocks += static_cast<double>(s.k * s.n);
  }
  return 2.0 * blocks / madds;
}

double simulated_tri_score(int m, int nc, int elem_bytes) {
  try {
    codegen::TrsmTriKernelSpec spec;
    spec.m = m;
    spec.nc = nc;
    spec.elem_bytes = elem_bytes;
    const auto model = pipesim::MachineModel::kunpeng920();
    const auto prog = sched::schedule(codegen::emit_trsm_tri_kernel(spec),
                                      model);
    const auto result = pipesim::simulate(prog, model);
    const double madds = 0.5 * m * (m + 1) * nc;
    return static_cast<double>(result.cycles) / std::max(madds, 1.0);
  } catch (const Error&) {
    return kBadScore;
  }
}

/// Median of the timed repetitions (robust against scheduler noise in a
/// way the mean is not).
double median(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? v[n / 2]
                              : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

template <class T>
real_t<T> check_tolerance(index_t depth) {
  using R = real_t<T>;
  return std::numeric_limits<R>::epsilon() *
         static_cast<R>(50 + 10 * std::max<index_t>(depth, 1));
}

template <class T>
bool lanes_match(const std::vector<T>& expected, const std::vector<T>& got,
                 real_t<T> tol, real_t<T> scale) {
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (std::abs(expected[i] - got[i]) > tol * scale) {
      return false;
    }
  }
  return true;
}

index_t round_up_batch(index_t batch, index_t pw) {
  const index_t at_least = std::max(batch, pw);
  return (at_least + pw - 1) / pw * pw;
}

void push_unique(std::vector<index_t>& values, index_t v) {
  if (v >= 1 && std::find(values.begin(), values.end(), v) == values.end()) {
    values.push_back(v);
  }
}

std::vector<index_t> slice_variants(index_t s0) {
  std::vector<index_t> slices;
  push_unique(slices, s0);
  push_unique(slices, std::max<index_t>(1, s0 / 4));
  push_unique(slices, std::max<index_t>(1, s0 / 2));
  push_unique(slices, s0 * 2);
  push_unique(slices, s0 * 4);
  return slices;
}

std::vector<index_t> chunk_variants(const TuneOptions& opts, index_t s0) {
  std::vector<index_t> chunks{0};
  if (opts.pool != nullptr) {
    push_unique(chunks, std::max<index_t>(1, s0));
    push_unique(chunks, std::max<index_t>(1, s0 * 4));
  }
  return chunks;
}

/// Shared measurement loop: warmup + correctness gate + median-of-reps.
/// `run` executes the candidate plan once; `verify` returns false when
/// the warmup output disagrees with the scalar reference.
template <class Run, class Verify>
double measure_candidate(double flops, int reps, const Run& run,
                         const Verify& verify) {
  run(); // warmup: faults pages, loads caches, and produces the output
         // the correctness gate inspects
  if (!verify()) {
    return 0.0; // a wrong result never wins, whatever its speed
  }
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < std::max(reps, 1); ++r) {
    Timer t;
    run();
    secs.push_back(t.seconds());
  }
  const double med = median(secs);
  return med > 0.0 ? flops / med * 1e-9 : 0.0;
}

template <class T, int Bytes>
TuneRecord record_from(const Candidate& c, const Candidate& baseline) {
  TuneRecord rec;
  rec.pack_a = c.tuning.force_pack_a;
  rec.pack_b = c.tuning.force_pack_b;
  rec.slice_groups = c.tuning.slice_override;
  rec.mc_cap = c.tuning.mc_cap;
  rec.nc_cap = c.tuning.nc_cap;
  rec.chunk_groups = c.tuning.chunk_groups;
  rec.gflops = c.gflops;
  rec.baseline_gflops = baseline.gflops;
  return rec;
}

/// Rank, prune to the timed set, and make sure the analytical echo is in
/// it (it is both the correctness anchor and the never-slower guarantee).
std::vector<Candidate> timed_set(std::vector<Candidate> candidates,
                                 const TuneOptions& opts) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.sim_score < b.sim_score;
                   });
  std::size_t keep = candidates.size();
  if (opts.prune_with_pipesim && opts.top_k > 0) {
    keep = std::min<std::size_t>(keep,
                                 static_cast<std::size_t>(opts.top_k));
  }
  std::vector<Candidate> timed(candidates.begin(),
                               candidates.begin() + keep);
  const auto is_analytical = [](const Candidate& c) { return c.analytical; };
  if (std::none_of(timed.begin(), timed.end(), is_analytical)) {
    const auto it = std::find_if(candidates.begin() + keep,
                                 candidates.end(), is_analytical);
    if (it != candidates.end()) {
      timed.push_back(*it);
    }
  }
  return timed;
}

Candidate pick_winner(const std::vector<Candidate>& timed) {
  // Baseline first so a tuned candidate must strictly beat it.
  const auto base = std::find_if(timed.begin(), timed.end(),
                                 [](const Candidate& c) {
                                   return c.analytical;
                                 });
  Candidate best = base != timed.end() ? *base : timed.front();
  for (const Candidate& c : timed) {
    if (c.gflops > best.gflops) {
      best = c;
    }
  }
  return best;
}

} // namespace

double simulated_gemm_score(int mc, int nc, index_t k, int elem_bytes) {
  try {
    codegen::GemmKernelSpec spec;
    spec.mc = mc;
    spec.nc = nc;
    spec.k = std::max<index_t>(k, 1);
    spec.elem_bytes = elem_bytes;
    const auto model = pipesim::MachineModel::kunpeng920();
    const auto prog = sched::schedule(codegen::emit_gemm_kernel(spec),
                                      model);
    const auto result = pipesim::simulate(prog, model);
    const double madds = static_cast<double>(mc) * nc *
                         static_cast<double>(spec.k);
    return static_cast<double>(result.cycles) / madds;
  } catch (const Error&) {
    return kBadScore;
  }
}

template <class T, int Bytes>
std::vector<Candidate> gemm_candidates(const GemmShape& shape,
                                       const CacheInfo& cache,
                                       const TuneOptions& opts) {
  using Limits = kernels::KernelLimits<T>;
  // The portable kernels consume the reals of a complex element block
  // separately, so the simulator proxy always scores real streams.
  const int elem_bytes = static_cast<int>(sizeof(real_t<T>));

  const plan::GemmPlan<T, Bytes> probe(shape, cache);
  const index_t s0 = probe.slice_groups();

  std::vector<int> packs_a =
      shape.op_a == Op::NoTrans ? std::vector<int>{0, 1}
                                : std::vector<int>{1};
  std::vector<int> packs_b =
      shape.op_b == Op::NoTrans ? std::vector<int>{0, 1}
                                : std::vector<int>{1};
  const int max_mc = static_cast<int>(
      std::min<index_t>(Limits::gemm_max_mc, std::max<index_t>(shape.m, 1)));
  const int max_nc = static_cast<int>(
      std::min<index_t>(Limits::gemm_max_nc, std::max<index_t>(shape.n, 1)));
  const auto slices = slice_variants(s0);
  const auto chunks = chunk_variants(opts, s0);

  // Simulator scores depend only on the kernel variant; compute each
  // (mc, nc) stream once and share it across pack/slice/chunk variants.
  std::vector<std::vector<double>> kernel_score(
      static_cast<std::size_t>(max_mc),
      std::vector<double>(static_cast<std::size_t>(max_nc), 0.0));
  for (int mc = 1; mc <= max_mc; ++mc) {
    for (int nc = 1; nc <= max_nc; ++nc) {
      kernel_score[mc - 1][nc - 1] =
          simulated_gemm_score(mc, nc, shape.k, elem_bytes);
    }
  }

  const int default_pack_a = probe.packs_a() ? 1 : 0;
  const int default_pack_b = probe.packs_b() ? 1 : 0;

  std::vector<Candidate> out;
  for (int pa : packs_a) {
    for (int pb : packs_b) {
      for (int mc = 1; mc <= max_mc; ++mc) {
        for (int nc = 1; nc <= max_nc; ++nc) {
          for (index_t slice : slices) {
            for (index_t chunk : chunks) {
              Candidate c;
              c.tuning.force_pack_a = pa;
              c.tuning.force_pack_b = pb;
              c.tuning.mc_cap = mc;
              c.tuning.nc_cap = nc;
              c.tuning.slice_override = slice;
              c.tuning.chunk_groups = chunk;
              c.sim_score = kernel_score[mc - 1][nc - 1] +
                            gemm_pack_proxy(shape, pa, pb) +
                            tie_break(c.tuning, s0);
              c.analytical = pa == default_pack_a &&
                             pb == default_pack_b && mc == max_mc &&
                             nc == max_nc && slice == s0 && chunk == 0;
              out.push_back(c);
            }
          }
        }
      }
    }
  }
  return out;
}

template <class T, int Bytes>
std::vector<Candidate> trsm_candidates(const TrsmShape& shape,
                                       const CacheInfo& cache,
                                       const TuneOptions& opts) {
  using Limits = kernels::KernelLimits<T>;
  const int elem_bytes = static_cast<int>(sizeof(real_t<T>));
  const pack::TrsmCanon canon = pack::TrsmCanon::make(shape);
  const bool gathers = canon.reverse || canon.b_transpose;

  const plan::TrsmPlan<T, Bytes> probe(shape, cache);
  const index_t s0 = probe.slice_groups();

  const std::vector<int> packs_b =
      gathers ? std::vector<int>{1} : std::vector<int>{0, 1};
  std::vector<int> block_caps{0}; // 0 = default decomposition
  for (int cap : {static_cast<int>(Limits::trsm_block),
                  static_cast<int>(Limits::trsm_block) / 2}) {
    if (cap >= 1 && cap < canon.m &&
        std::find(block_caps.begin(), block_caps.end(), cap) ==
            block_caps.end()) {
      block_caps.push_back(cap);
    }
  }
  std::vector<int> panel_caps;
  for (int cap : {static_cast<int>(Limits::tri_max_nc), 2, 1}) {
    if (cap >= 1 && cap <= Limits::tri_max_nc &&
        std::find(panel_caps.begin(), panel_caps.end(), cap) ==
            panel_caps.end()) {
      panel_caps.push_back(cap);
    }
  }
  const auto slices = slice_variants(s0);
  const auto chunks = chunk_variants(opts, s0);

  std::vector<Candidate> out;
  for (int pb : packs_b) {
    for (int bc : block_caps) {
      for (int pc : panel_caps) {
        const int sim_m = bc > 0 ? bc
                                 : static_cast<int>(std::min<index_t>(
                                       canon.m, Limits::tri_max_m));
        const double kscore =
            sim_m >= 1 ? simulated_tri_score(sim_m, pc, elem_bytes)
                       : kBadScore;
        for (index_t slice : slices) {
          for (index_t chunk : chunks) {
            Candidate c;
            c.tuning.force_pack_b = pb;
            c.tuning.mc_cap = bc;
            c.tuning.nc_cap = pc;
            c.tuning.slice_override = slice;
            c.tuning.chunk_groups = chunk;
            c.sim_score = kscore + tie_break(c.tuning, s0);
            c.analytical = pb == (probe.packs_b() ? 1 : 0) && bc == 0 &&
                           pc == Limits::tri_max_nc && slice == s0 &&
                           chunk == 0;
            out.push_back(c);
          }
        }
      }
    }
  }
  return out;
}

template <class T, int Bytes>
TuneRecord tune_gemm(const GemmShape& in_shape, const CacheInfo& cache,
                     const TuneOptions& opts) {
  using R = real_t<T>;
  GemmShape shape = in_shape;
  const index_t pw = plan::GemmPlan<T, Bytes>::pack_width();
  shape.batch = round_up_batch(opts.batch, pw);

  if (shape.m <= 0 || shape.n <= 0 || shape.k <= 0) {
    // Degenerate problems have nothing to tune; echo the defaults.
    const plan::GemmPlan<T, Bytes> probe(shape, cache);
    Candidate echo;
    echo.tuning.force_pack_a = probe.packs_a() ? 1 : 0;
    echo.tuning.force_pack_b = probe.packs_b() ? 1 : 0;
    echo.tuning.slice_override = probe.slice_groups();
    echo.analytical = true;
    return record_from<T, Bytes>(echo, echo);
  }

  const bool ta = shape.op_a != Op::NoTrans;
  const bool tb = shape.op_b != Op::NoTrans;
  CompactBuffer<T> a(ta ? shape.k : shape.m, ta ? shape.m : shape.k,
                     shape.batch, pw);
  CompactBuffer<T> b(tb ? shape.n : shape.k, tb ? shape.k : shape.n,
                     shape.batch, pw);
  CompactBuffer<T> c(shape.m, shape.n, shape.batch, pw);
  Rng rng(opts.seed);
  rng.fill<R>(std::span<R>(a.data(), a.size()));
  rng.fill<R>(std::span<R>(b.data(), b.size()));

  // Scalar-reference output of lane 0, the per-candidate correctness
  // gate (beta = 0 keeps repeated executions idempotent).
  std::vector<T> ha(static_cast<std::size_t>(a.rows() * a.cols()));
  std::vector<T> hb(static_cast<std::size_t>(b.rows() * b.cols()));
  std::vector<T> expected(static_cast<std::size_t>(shape.m * shape.n));
  a.export_colmajor(0, ha.data(), a.rows());
  b.export_colmajor(0, hb.data(), b.rows());
  ref::gemm<T>(shape.op_a, shape.op_b, shape.m, shape.n, shape.k, T(1),
               ha.data(), a.rows(), hb.data(), b.rows(), T(0),
               expected.data(), shape.m);
  const R tol = check_tolerance<T>(shape.k);
  const R scale = static_cast<R>(std::max<index_t>(shape.k, 1));

  auto timed = timed_set(gemm_candidates<T, Bytes>(shape, cache, opts),
                         opts);
  const double flops = gemm_flops<T>(shape);
  std::vector<T> got(expected.size());
  for (Candidate& cand : timed) {
    try {
      const plan::GemmPlan<T, Bytes> plan(shape, cache, cand.tuning);
      const auto run = [&] {
        if (opts.pool != nullptr) {
          plan.execute_parallel(a, b, c, T(1), T(0), *opts.pool);
        } else {
          plan.execute(a, b, c, T(1), T(0));
        }
      };
      const auto verify = [&] {
        c.export_colmajor(0, got.data(), shape.m);
        return lanes_match(expected, got, tol, scale);
      };
      cand.gflops = measure_candidate(flops, opts.reps, run, verify);
    } catch (const Error&) {
      cand.gflops = 0.0; // unbuildable candidate (e.g. missing kernel)
    }
  }

  const Candidate winner = pick_winner(timed);
  const auto base = std::find_if(timed.begin(), timed.end(),
                                 [](const Candidate& x) {
                                   return x.analytical;
                                 });
  return record_from<T, Bytes>(winner,
                               base != timed.end() ? *base : winner);
}

template <class T, int Bytes>
TuneRecord tune_trsm(const TrsmShape& in_shape, const CacheInfo& cache,
                     const TuneOptions& opts) {
  using R = real_t<T>;
  TrsmShape shape = in_shape;
  const index_t pw = plan::TrsmPlan<T, Bytes>::pack_width();
  shape.batch = round_up_batch(opts.batch, pw);

  if (shape.m <= 0 || shape.n <= 0) {
    const plan::TrsmPlan<T, Bytes> probe(shape, cache);
    Candidate echo;
    echo.tuning.force_pack_b = probe.packs_b() ? 1 : 0;
    echo.tuning.slice_override = probe.slice_groups();
    echo.analytical = true;
    return record_from<T, Bytes>(echo, echo);
  }

  const index_t adim = shape.a_dim();
  CompactBuffer<T> a(adim, adim, shape.batch, pw);
  CompactBuffer<T> b(shape.m, shape.n, shape.batch, pw);
  Rng rng(opts.seed);
  rng.fill<R>(std::span<R>(b.data(), b.size()));

  // Well-conditioned triangular factors (diagonal bounded away from
  // zero) so repeated in-place solves neither blow up nor denormalise.
  {
    std::vector<T> host(static_cast<std::size_t>(adim * adim));
    const R off_scale = adim > 1 ? R(0.5) / static_cast<R>(adim) : R(1);
    for (index_t lane = 0; lane < shape.batch; ++lane) {
      rng.fill<T>(host);
      for (index_t j = 0; j < adim; ++j) {
        for (index_t i = 0; i < adim; ++i) {
          if (i == j) {
            host[j * adim + i] += T(1);
          } else {
            host[j * adim + i] *= off_scale;
          }
        }
      }
      a.import_colmajor(lane, host.data(), adim);
    }
    a.pad_identity();
  }

  // Lane-0 reference of the first (warmup) solve.
  std::vector<T> ha(static_cast<std::size_t>(adim * adim));
  std::vector<T> expected(static_cast<std::size_t>(shape.m * shape.n));
  a.export_colmajor(0, ha.data(), adim);
  const R tol = check_tolerance<T>(adim);
  const R scale = static_cast<R>(std::max<index_t>(adim, 1));

  auto timed = timed_set(trsm_candidates<T, Bytes>(shape, cache, opts),
                         opts);
  const double flops = trsm_flops<T>(shape);
  std::vector<T> got(expected.size());
  std::vector<R> b0(b.data(), b.data() + b.size());
  for (Candidate& cand : timed) {
    // Every candidate starts from the same right-hand side.
    std::copy(b0.begin(), b0.end(), b.data());
    b.export_colmajor(0, got.data(), shape.m); // reuse as B0 host copy
    std::copy(got.begin(), got.end(), expected.begin());
    ref::trsm<T>(shape.side, shape.uplo, shape.op_a, shape.diag, shape.m,
                 shape.n, T(1), ha.data(), adim, expected.data(), shape.m);
    try {
      const plan::TrsmPlan<T, Bytes> plan(shape, cache, cand.tuning);
      const auto run = [&] {
        if (opts.pool != nullptr) {
          plan.execute_parallel(a, b, T(1), *opts.pool);
        } else {
          plan.execute(a, b, T(1));
        }
      };
      const auto verify = [&] {
        b.export_colmajor(0, got.data(), shape.m);
        return lanes_match(expected, got, tol, scale);
      };
      cand.gflops = measure_candidate(flops, opts.reps, run, verify);
    } catch (const Error&) {
      cand.gflops = 0.0;
    }
  }

  const Candidate winner = pick_winner(timed);
  const auto base = std::find_if(timed.begin(), timed.end(),
                                 [](const Candidate& x) {
                                   return x.analytical;
                                 });
  return record_from<T, Bytes>(winner,
                               base != timed.end() ? *base : winner);
}

TuneRecord tune_gemm_dyn(char dtype, const GemmShape& shape,
                         const CacheInfo& cache, const TuneOptions& opts) {
  switch (dtype) {
  case 's':
    return tune_gemm<float>(shape, cache, opts);
  case 'd':
    return tune_gemm<double>(shape, cache, opts);
  case 'c':
    return tune_gemm<std::complex<float>>(shape, cache, opts);
  case 'z':
    return tune_gemm<std::complex<double>>(shape, cache, opts);
  default:
    throw Error("tune: unknown dtype tag");
  }
}

TuneRecord tune_trsm_dyn(char dtype, const TrsmShape& shape,
                         const CacheInfo& cache, const TuneOptions& opts) {
  switch (dtype) {
  case 's':
    return tune_trsm<float>(shape, cache, opts);
  case 'd':
    return tune_trsm<double>(shape, cache, opts);
  case 'c':
    return tune_trsm<std::complex<float>>(shape, cache, opts);
  case 'z':
    return tune_trsm<std::complex<double>>(shape, cache, opts);
  default:
    throw Error("tune: unknown dtype tag");
  }
}

#define IATF_INSTANTIATE_TUNE(T)                                             \
  template std::vector<Candidate> gemm_candidates<T, 16>(                    \
      const GemmShape&, const CacheInfo&, const TuneOptions&);               \
  template std::vector<Candidate> trsm_candidates<T, 16>(                    \
      const TrsmShape&, const CacheInfo&, const TuneOptions&);               \
  template TuneRecord tune_gemm<T, 16>(const GemmShape&, const CacheInfo&,   \
                                       const TuneOptions&);                  \
  template TuneRecord tune_trsm<T, 16>(const TrsmShape&, const CacheInfo&,   \
                                       const TuneOptions&);

IATF_INSTANTIATE_TUNE(float)
IATF_INSTANTIATE_TUNE(double)
IATF_INSTANTIATE_TUNE(std::complex<float>)
IATF_INSTANTIATE_TUNE(std::complex<double>)

#undef IATF_INSTANTIATE_TUNE

} // namespace iatf::tune
