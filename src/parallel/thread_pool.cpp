#include "iatf/parallel/thread_pool.hpp"

#include <algorithm>

#include "iatf/common/error.hpp"
#include "iatf/common/fault_inject.hpp"

namespace iatf {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
  }
  workers_ = threads;
  // The calling thread executes one chunk itself, so spawn workers - 1.
  for (unsigned i = 1; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::run_task(const Task& task) {
  Job* job = task.job;
  std::exception_ptr err;
  bool skipped = false;
  // Deadline check between chunks: an expired job abandons chunks that
  // have not started yet (running ones always finish).
  if (job->deadline != nullptr && job->deadline->expired()) {
    skipped = true;
  } else {
    try {
      fault::stall_if_armed("threadpool.stall");
      IATF_FAULT_POINT("threadpool.worker", ::iatf::Status::Internal);
      (*job->fn)(task.begin, task.end);
    } catch (...) {
      err = std::current_exception();
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (skipped) {
    job->timed_out = true;
    job->skipped_items += task.end - task.begin;
  } else if (err) {
    if (!job->first_error) {
      job->first_error = err;
    }
  } else {
    job->done_items += task.end - task.begin;
  }
  if (--job->pending == 0) {
    cv_done_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) {
        return;
      }
      task = queue_.back();
      queue_.pop_back();
    }
    run_task(task);
  }
}

void ThreadPool::parallel_for(
    index_t begin, index_t end,
    const std::function<void(index_t, index_t)>& fn, index_t grain,
    const Deadline* deadline) {
  IATF_CHECK(begin <= end, "parallel_for: inverted range");
  const index_t total = end - begin;
  if (total == 0) {
    return;
  }
  const index_t chunks =
      grain > 0
          ? std::min(total, (total + grain - 1) / grain)
          : std::min<index_t>(static_cast<index_t>(workers_), total);
  if (chunks <= 1) {
    if (deadline != nullptr && deadline->expired()) {
      throw TimeoutError(0, total);
    }
    IATF_FAULT_POINT("threadpool.dispatch", ::iatf::Status::Internal);
    fn(begin, end);
    return;
  }

  // Per-invocation job state: the caller's stack owns it, and the wait on
  // job.pending below guarantees no queued Task outlives this frame even
  // when a chunk (or the enqueue itself) throws.
  Job job;
  job.fn = &fn;
  job.deadline = deadline;
  const index_t per = (total + chunks - 1) / chunks;
  try {
    std::lock_guard<std::mutex> lock(mutex_);
    for (index_t c = 1; c < chunks; ++c) {
      const index_t b = begin + c * per;
      const index_t e = std::min(end, b + per);
      if (b >= e) {
        continue;
      }
      queue_.push_back(Task{&job, b, e});
      ++job.pending;
    }
  } catch (...) {
    // Enqueue failed partway (queue growth): drain what was queued so no
    // Task referencing this frame survives, then propagate. The caller
    // helps run its own queued chunks -- a one-worker pool has no worker
    // threads to drain them.
    cv_work_.notify_all();
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (job.pending == 0) {
          break;
        }
        if (queue_.empty()) {
          cv_done_.wait(lock, [&job] { return job.pending == 0; });
          break;
        }
        task = queue_.back();
        queue_.pop_back();
      }
      run_task(task);
    }
    throw;
  }
  cv_work_.notify_all();

  // The calling thread's own chunk: record a throw just like a worker so
  // it cannot bypass the drain below and leave pending_ nonzero. The
  // deadline applies here too -- an expired job skips this chunk.
  {
    const index_t own_end = std::min(end, begin + per);
    std::exception_ptr err;
    bool skipped = false;
    if (deadline != nullptr && deadline->expired()) {
      skipped = true;
    } else {
      try {
        fault::stall_if_armed("threadpool.stall");
        IATF_FAULT_POINT("threadpool.dispatch", ::iatf::Status::Internal);
        fn(begin, own_end);
      } catch (...) {
        err = std::current_exception();
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (skipped) {
      job.timed_out = true;
      job.skipped_items += own_end - begin;
    } else if (err) {
      if (!job.first_error) {
        job.first_error = err;
      }
    } else {
      job.done_items += own_end - begin;
    }
  }

  // With more chunks than the pool owns (a grain finer than the
  // one-chunk-per-worker split, or a one-worker pool that spawned no
  // worker threads at all) the workers alone cannot drain the queue, so
  // the caller pulls tasks too until its job has none left, then blocks
  // only on chunks already running elsewhere. Otherwise every queued
  // chunk has a dedicated worker and the caller just waits, leaving the
  // worker threads to run them.
  if (chunks > static_cast<index_t>(workers_)) {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (job.pending == 0) {
          break;
        }
        if (queue_.empty()) {
          cv_done_.wait(lock, [&job] { return job.pending == 0; });
          break;
        }
        task = queue_.back();
        queue_.pop_back();
      }
      run_task(task);
    }
  } else {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&job] { return job.pending == 0; });
  }

  std::exception_ptr first;
  bool timed_out = false;
  index_t done = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    first = job.first_error;
    timed_out = job.timed_out;
    done = job.done_items;
  }
  if (first) {
    std::rethrow_exception(first);
  }
  if (timed_out) {
    throw TimeoutError(done, total);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

} // namespace iatf
