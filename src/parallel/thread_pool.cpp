#include "iatf/parallel/thread_pool.hpp"

#include "iatf/common/error.hpp"

namespace iatf {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
  }
  workers_ = threads;
  // The calling thread executes one chunk itself, so spawn workers - 1.
  for (unsigned i = 1; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) {
        return;
      }
      task = queue_.back();
      queue_.pop_back();
    }
    try {
      (*task.fn)(task.begin, task.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) {
        cv_done_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(
    index_t begin, index_t end,
    const std::function<void(index_t, index_t)>& fn) {
  IATF_CHECK(begin <= end, "parallel_for: inverted range");
  const index_t total = end - begin;
  if (total == 0) {
    return;
  }
  const index_t chunks =
      std::min<index_t>(static_cast<index_t>(workers_), total);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }

  // Enqueue chunks 1..n-1 for the workers, run chunk 0 inline.
  const index_t per = (total + chunks - 1) / chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    first_error_ = nullptr;
    for (index_t c = 1; c < chunks; ++c) {
      const index_t b = begin + c * per;
      const index_t e = std::min(end, b + per);
      if (b >= e) {
        continue;
      }
      queue_.push_back(Task{&fn, b, e});
      ++pending_;
    }
  }
  cv_work_.notify_all();

  try {
    fn(begin, std::min(end, begin + per));
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) {
      first_error_ = std::current_exception();
    }
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

} // namespace iatf
