// iatf-trace 1 JSONL reader/writer. The parser is a tiny purpose-built
// scanner for the fixed key set -- not a general JSON parser -- but it
// is strict: unknown layout, missing keys, non-numeric values or
// out-of-range fields fail the load with the line number.
#include "iatf/net/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "iatf/common/error.hpp"

namespace iatf::net {

// ---- Writer -----------------------------------------------------------

struct TraceWriter::Impl {
  std::mutex mu;
  std::ofstream out;
  std::size_t recorded = 0;
};

TraceWriter::TraceWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path, std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    throw Error("iatf-trace: cannot open '" + path + "' for writing");
  }
  impl_->out << "{\"format\":\"iatf-trace\",\"version\":" << kTraceVersion
             << "}\n";
}

TraceWriter::~TraceWriter() { delete impl_; }

std::string trace_line(const TraceEvent& e) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"t_us\":%lld,\"tenant\":%u,\"kind\":\"%c\","
                "\"dtype\":\"%c\",\"m\":%lld,\"n\":%lld,\"k\":%lld,"
                "\"batch\":%lld,\"deadline_ms\":%.3f}",
                static_cast<long long>(e.t_us), e.tenant, e.kind, e.dtype,
                static_cast<long long>(e.m), static_cast<long long>(e.n),
                static_cast<long long>(e.k),
                static_cast<long long>(e.batch), e.deadline_ms);
  return buf;
}

void TraceWriter::record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->out << trace_line(event) << '\n';
  if (!impl_->out) {
    throw Error("iatf-trace: write failed", Status::Internal);
  }
  ++impl_->recorded;
}

std::size_t TraceWriter::recorded() const noexcept {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->recorded;
}

// ---- Reader -----------------------------------------------------------

namespace {

/// Find `"key":` in `line` and return the character index just past the
/// colon (skipping spaces), or npos.
std::size_t value_pos(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\"";
  std::size_t at = line.find(needle);
  if (at == std::string::npos) {
    return std::string::npos;
  }
  at += needle.size();
  while (at < line.size() && std::isspace(static_cast<unsigned char>(line[at]))) {
    ++at;
  }
  if (at >= line.size() || line[at] != ':') {
    return std::string::npos;
  }
  ++at;
  while (at < line.size() && std::isspace(static_cast<unsigned char>(line[at]))) {
    ++at;
  }
  return at;
}

bool read_number(const std::string& line, const char* key, double& out) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string::npos) {
    return false;
  }
  const char* start = line.c_str() + at;
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start && std::isfinite(out);
}

bool read_char(const std::string& line, const char* key, char& out) {
  const std::size_t at = value_pos(line, key);
  if (at == std::string::npos || at + 2 >= line.size() ||
      line[at] != '"' || line[at + 2] != '"') {
    return false;
  }
  out = line[at + 1];
  return true;
}

[[noreturn]] void bad_line(const std::string& path, std::size_t lineno,
                           const char* why) {
  throw Error("iatf-trace: " + path + ":" + std::to_string(lineno) +
              ": " + why);
}

} // namespace

std::vector<TraceEvent> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("iatf-trace: cannot open '" + path + "'");
  }
  std::string line;
  std::size_t lineno = 0;
  // Header line.
  if (!std::getline(in, line)) {
    bad_line(path, 1, "empty file (missing header)");
  }
  ++lineno;
  if (line.find("\"format\":\"iatf-trace\"") == std::string::npos) {
    bad_line(path, lineno, "not an iatf-trace file");
  }
  double version = 0;
  if (!read_number(line, "version", version) ||
      static_cast<int>(version) != kTraceVersion) {
    bad_line(path, lineno, "unsupported trace version");
  }

  std::vector<TraceEvent> events;
  while (std::getline(in, line)) {
    ++lineno;
    // Tolerate blank lines (trailing newline, hand edits); nothing else.
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    TraceEvent e;
    double t_us = 0, tenant = 0, m = 0, n = 0, k = 0, batch = 0,
           deadline = 0;
    if (!read_number(line, "t_us", t_us) || t_us < 0 ||
        !read_number(line, "tenant", tenant) || tenant < 0 ||
        tenant > 4294967295.0 ||
        !read_char(line, "kind", e.kind) ||
        !read_char(line, "dtype", e.dtype) ||
        !read_number(line, "m", m) ||
        !read_number(line, "n", n) ||
        !read_number(line, "k", k) ||
        !read_number(line, "batch", batch) ||
        !read_number(line, "deadline_ms", deadline)) {
      bad_line(path, lineno, "malformed event line");
    }
    if (e.kind != 'g' || (e.dtype != 's' && e.dtype != 'd')) {
      bad_line(path, lineno, "unknown kind/dtype");
    }
    if (m < 1 || n < 1 || k < 1 || m > 4096 || n > 4096 || k > 4096 ||
        batch < 1 || batch > 1048576 || deadline < 0) {
      bad_line(path, lineno, "descriptor out of range");
    }
    e.t_us = static_cast<std::int64_t>(t_us);
    e.tenant = static_cast<std::uint32_t>(tenant);
    e.m = static_cast<index_t>(m);
    e.n = static_cast<index_t>(n);
    e.k = static_cast<index_t>(k);
    e.batch = static_cast<index_t>(batch);
    e.deadline_ms = deadline;
    events.push_back(e);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t_us < b.t_us;
                   });
  return events;
}

} // namespace iatf::net
