// Blocking iatf-wire client. See include/iatf/net/client.hpp.
#include "iatf/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "iatf/common/error.hpp"

namespace iatf::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error("iatf-net client: " + what + ": " + std::strerror(errno),
              Status::Internal);
}

} // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  stash_.clear();
}

void Client::connect_unix(const std::string& path,
                          std::chrono::milliseconds timeout) {
  IATF_CHECK(fd_ < 0, "Client: already connected");
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw Error("iatf-net client: unix socket path too long: " + path,
                Status::InvalidArg);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw_errno("socket(AF_UNIX)");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    close();
    throw_errno("connect(" + path + ")");
  }
  handshake(timeout);
}

void Client::connect_tcp(const std::string& host, std::uint16_t port,
                         std::chrono::milliseconds timeout) {
  IATF_CHECK(fd_ < 0, "Client: already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw_errno("socket(AF_INET)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw Error("iatf-net client: bad host '" + host + "'",
                Status::InvalidArg);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    close();
    throw_errno("connect(tcp)");
  }
  int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  handshake(timeout);
}

void Client::handshake(std::chrono::milliseconds timeout) {
  std::vector<std::uint8_t> payload;
  append_hello(payload);
  send_frame(FrameType::Hello, 0, payload);
  Reply reply;
  if (!next_reply(reply, timeout)) {
    close();
    throw Error("iatf-net client: handshake timeout", Status::Timeout);
  }
  if (reply.type == FrameType::Error) {
    const std::string msg = reply.error.message;
    close();
    throw Error("iatf-net client: handshake refused: " + msg,
                Status::Unsupported);
  }
  if (reply.type != FrameType::HelloAck ||
      parse_hello_ack(std::span<const std::uint8_t>(caps_payload_),
                      caps_) != WireError::None) {
    close();
    throw Error("iatf-net client: malformed handshake reply",
                Status::Internal);
  }
}

void Client::send_frame(FrameType type, std::uint64_t request_id,
                        std::span<const std::uint8_t> payload) {
  IATF_CHECK(fd_ >= 0, "Client: not connected");
  std::vector<std::uint8_t> frame;
  append_frame(frame, type, request_id, payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    close();
    throw_errno("send");
  }
}

std::uint64_t Client::submit_gemm(const GemmSubmit& submit) {
  std::vector<std::uint8_t> payload;
  append_gemm_submit(payload, submit);
  const std::uint64_t id = next_id_++;
  send_frame(FrameType::SubmitGemm, id, payload);
  return id;
}

void Client::cancel(std::uint64_t request_id) {
  send_frame(FrameType::Cancel, request_id, {});
}

std::uint64_t Client::ping() {
  const std::uint64_t id = next_id_++;
  send_frame(FrameType::Ping, id, {});
  return id;
}

void Client::goodbye() { send_frame(FrameType::Goodbye, 0, {}); }

bool Client::next_reply(Reply& out, std::chrono::milliseconds timeout) {
  if (!stash_.empty()) {
    out = std::move(stash_.front());
    stash_.pop_front();
    return true;
  }
  return pull_reply(out, timeout);
}

bool Client::reply_for(std::uint64_t request_id, Reply& out,
                       std::chrono::milliseconds timeout) {
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (it->request_id == request_id) {
      out = std::move(*it);
      stash_.erase(it);
      return true;
    }
  }
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= give_up) {
      return false;
    }
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(give_up -
                                                              now);
    Reply pulled;
    if (!pull_reply(pulled, std::max<std::chrono::milliseconds>(
                                left, std::chrono::milliseconds(1)))) {
      return false;
    }
    if (pulled.request_id == request_id) {
      out = std::move(pulled);
      return true;
    }
    stash_.push_back(std::move(pulled));
  }
}

bool Client::pull_reply(Reply& out, std::chrono::milliseconds timeout) {
  IATF_CHECK(fd_ >= 0, "Client: not connected");
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    Decoder::Event ev = decoder_.next();
    if (ev.kind == Decoder::Event::Kind::Error) {
      close();
      throw Error(std::string("iatf-net client: protocol error from "
                              "server: ") +
                      to_string(ev.error),
                  Status::Internal);
    }
    if (ev.kind == Decoder::Event::Kind::Frame) {
      out = Reply{};
      out.type = ev.frame.header.type;
      out.request_id = ev.frame.header.request_id;
      switch (ev.frame.header.type) {
      case FrameType::Result: {
        ResultMsg msg;
        if (parse_result(ev.frame.payload, msg) != WireError::None) {
          close();
          throw Error("iatf-net client: malformed Result payload",
                      Status::Internal);
        }
        out.status = msg.status;
        out.c.assign(msg.c.begin(), msg.c.end());
        return true;
      }
      case FrameType::Error: {
        if (parse_error(ev.frame.payload, out.error) != WireError::None) {
          close();
          throw Error("iatf-net client: malformed Error payload",
                      Status::Internal);
        }
        return true;
      }
      case FrameType::HelloAck:
        caps_payload_.assign(ev.frame.payload.begin(),
                             ev.frame.payload.end());
        return true;
      case FrameType::Pong:
        return true;
      default:
        close();
        throw Error("iatf-net client: unexpected frame from server",
                    Status::Internal);
      }
    }

    // NeedMore: wait for socket data until the deadline.
    const auto now = std::chrono::steady_clock::now();
    if (now >= give_up) {
      return false;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        give_up - now);
    pollfd pfd{fd_, POLLIN, 0};
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                            1, static_cast<long long>(left.count()))));
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      close();
      throw_errno("poll");
    }
    if (rc == 0) {
      return false;
    }
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
      continue;
    }
    close();
    throw Error("iatf-net client: connection closed by server",
                Status::Internal);
  }
}

} // namespace iatf::net
