// Poll reactor implementation. See include/iatf/net/reactor.hpp for the
// threading model and robustness contract; everything POSIX lives here.
//
// Connection teardown discipline: helpers that can condemn a connection
// (write-buffer overflow, fatal wire errors) only set flags on it --
// `doomed` for close-now, `close_after_flush` for close-after-write --
// and never erase it, so no code path frees a Conn while a caller up
// the stack still holds a reference or an iteration is in progress.
// Actual destruction happens at the few safe points: the per-event
// handlers (which look the connection up by id afterwards) and the
// sweep at the top of every reactor round.
#include "iatf/net/reactor.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "iatf/common/error.hpp"
#include "iatf/layout/compact.hpp"

namespace iatf::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error("iatf-net: " + what + ": " + std::strerror(errno),
              Status::Internal);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_cloexec(int fd) { (void)::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Best-effort non-blocking send used for refusals on connections we
/// are about to close anyway (Busy shed); the normal path buffers.
void send_best_effort(int fd, const std::vector<std::uint8_t>& bytes) {
  (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
}

/// One resolved submission travelling from a dispatcher-thread
/// completion callback back to the reactor.
struct Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t request_id = 0;
  int status = 0;
  std::shared_ptr<void> state; ///< keeps the request's buffers alive
};

/// Cross-thread completion mailbox. Owns both ends of its wake pipe so
/// callbacks that outlive the NetServer write into a parked queue, not
/// freed memory or a recycled fd.
struct CompletionQueue {
  std::mutex mu;
  std::deque<Completion> q;
  int wake_rd = -1;
  int wake_wr = -1;

  CompletionQueue() {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw_errno("pipe");
    }
    wake_rd = fds[0];
    wake_wr = fds[1];
    set_nonblocking(wake_rd);
    set_nonblocking(wake_wr);
    set_cloexec(wake_rd);
    set_cloexec(wake_wr);
  }
  ~CompletionQueue() {
    ::close(wake_rd);
    ::close(wake_wr);
  }

  void push(Completion c) {
    {
      std::lock_guard<std::mutex> lk(mu);
      q.push_back(std::move(c));
    }
    wake();
  }

  void wake() {
    const char byte = 1;
    // EAGAIN just means the pipe already holds wake bytes.
    (void)::write(wake_wr, &byte, 1);
  }

  std::deque<Completion> take() {
    char sink[256];
    while (::read(wake_rd, sink, sizeof sink) > 0) {
    }
    std::lock_guard<std::mutex> lk(mu);
    std::deque<Completion> out;
    out.swap(q);
    return out;
  }
};

/// Owned request-side buffers for one in-flight submit; the completion
/// callback keeps a shared_ptr, so they outlive the connection.
struct PendingState {
  virtual ~PendingState() = default;
  /// Serialise the (possibly updated) C batch as contiguous
  /// column-major bytes for the Result frame.
  virtual void export_c(std::vector<std::uint8_t>& out) const = 0;
};

template <class T>
struct GemmState final : PendingState {
  CompactBuffer<T> a, b, c;

  void export_c(std::vector<std::uint8_t>& out) const override {
    const index_t m = c.rows(), n = c.cols(), batch = c.batch();
    out.resize(static_cast<std::size_t>(m) * n * batch * sizeof(T));
    T* dst = reinterpret_cast<T*>(out.data());
    for (index_t bi = 0; bi < batch; ++bi) {
      c.export_colmajor(bi, dst + bi * m * n, m);
    }
  }
};

enum class ConnState {
  AwaitHello, ///< nothing but Hello (and Ping) accepted yet
  Open,       ///< handshake done
  Closing,    ///< Goodbye received: close once pending + writes flush
};

struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  ConnState state = ConnState::AwaitHello;
  Decoder decoder;
  /// Outgoing bytes [wpos, wbuf.size()).
  std::vector<std::uint8_t> wbuf;
  std::size_t wpos = 0;
  /// Outstanding submits: request_id -> cancel token.
  std::unordered_map<std::uint64_t, serve::CancelToken> pending;
  std::chrono::steady_clock::time_point frame_t0{};
  std::chrono::steady_clock::time_point last_write_progress{};
  bool close_after_flush = false; ///< close once wbuf drains
  bool doomed = false;            ///< close at the next safe point
  bool read_closed = false;       ///< peer EOF seen; stop polling reads

  explicit Conn(std::size_t max_payload) : decoder(max_payload) {}
  ~Conn() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  std::size_t queued_bytes() const noexcept { return wbuf.size() - wpos; }
};

} // namespace

struct NetServer::Impl {
  serve::Server& server;
  NetConfig cfg;

  int unix_fd = -1;
  int tcp_fd = -1;
  std::atomic<std::uint16_t> bound_tcp_port{0};

  std::shared_ptr<CompletionQueue> completions;
  std::thread reactor;
  std::mutex lifecycle_mu; ///< serialises start/drain/stop
  enum class Phase { Idle, Running, Draining, Stopping, Stopped };
  std::atomic<Phase> phase{Phase::Idle};

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn_id = 1;

  // Stats are atomics: bumped on the reactor thread, read from any.
  std::atomic<std::uint64_t> accepted{0}, shed_busy{0}, closed{0},
      slow_closes{0}, frames_in{0}, frames_out{0}, wire_errors{0},
      fatal_errors{0}, submits{0}, results{0}, cancels{0}, bytes_in{0},
      bytes_out{0}, open_conns{0};

  Impl(serve::Server& s, NetConfig c)
      : server(s), cfg(std::move(c)),
        completions(std::make_shared<CompletionQueue>()) {}

  // --- Frame emission --------------------------------------------------

  void queue_frame(Conn& conn, FrameType type, std::uint64_t request_id,
                   std::span<const std::uint8_t> payload) {
    if (conn.queued_bytes() == 0) {
      // The write-stall clock starts when the buffer goes non-empty,
      // not at the last outbound traffic: an idle client whose next
      // reply is queued after >write_timeout of silence must not be
      // swept before a write is even attempted.
      conn.last_write_progress = std::chrono::steady_clock::now();
    }
    append_frame(conn.wbuf, type, request_id, payload);
    ++frames_out;
    if (conn.queued_bytes() > cfg.max_write_buffer) {
      // The client is not reading; buffering further is unbounded
      // memory on its behalf.
      ++slow_closes;
      conn.doomed = true;
    }
  }

  void queue_error(Conn& conn, WireError code, std::uint64_t request_id,
                   int status, std::string_view message, bool fatal) {
    std::vector<std::uint8_t> payload;
    append_error(payload, code, status, message);
    queue_frame(conn, FrameType::Error, request_id, payload);
    ++wire_errors;
    if (fatal) {
      ++fatal_errors;
      conn.close_after_flush = true;
    }
  }

  // --- Connection teardown ---------------------------------------------

  /// Close + forget a connection NOW. Callers must not hold a Conn
  /// reference across this call or be iterating `conns`. Pending
  /// requests are cancelled (their tokens flag; the dispatcher sheds
  /// them at dequeue) -- other connections' requests are untouched,
  /// which is the isolation the disconnect tests assert.
  void destroy_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) {
      return;
    }
    for (auto& [rid, token] : it->second->pending) {
      serve::cancel(token);
    }
    conns.erase(it);
    --open_conns;
    ++closed;
  }

  /// Destroy every connection that is doomed or fully flushed with a
  /// deferred close. Runs at the top of each reactor round, outside any
  /// iteration or Conn reference.
  void sweep_condemned() {
    std::vector<std::uint64_t> dead;
    for (const auto& [id, conn] : conns) {
      if (conn->doomed ||
          (conn->close_after_flush && conn->queued_bytes() == 0)) {
        dead.push_back(id);
      }
    }
    for (const auto id : dead) {
      destroy_conn(id);
    }
  }

  // --- Submit path -----------------------------------------------------

  template <class T>
  void submit_typed(Conn& conn, std::uint64_t request_id,
                    const GemmSubmit& msg,
                    std::chrono::nanoseconds deadline) {
    auto state = std::make_shared<GemmState<T>>();
    const auto rows_a = msg.op_a == 0 ? msg.m : msg.k;
    const auto cols_a = msg.op_a == 0 ? msg.k : msg.m;
    const auto rows_b = msg.op_b == 0 ? msg.k : msg.n;
    const auto cols_b = msg.op_b == 0 ? msg.n : msg.k;
    state->a = CompactBuffer<T>(rows_a, cols_a, msg.batch);
    state->b = CompactBuffer<T>(rows_b, cols_b, msg.batch);
    state->c = CompactBuffer<T>(msg.m, msg.n, msg.batch);
    // The payload spans sit at an arbitrary offset inside the frame
    // (4 mod 8 for the first matrix), so casting them to T* and
    // dereferencing is a misaligned load; stage one batch entry at a
    // time through an aligned buffer instead.
    const std::size_t max_elems = std::max(
        {std::size_t(rows_a) * cols_a, std::size_t(rows_b) * cols_b,
         std::size_t(msg.m) * msg.n});
    std::vector<T> stage(max_elems);
    const auto load = [&stage](std::span<const std::uint8_t> bytes,
                               std::size_t elem_off,
                               std::size_t elems) -> const T* {
      std::memcpy(stage.data(), bytes.data() + elem_off * sizeof(T),
                  elems * sizeof(T));
      return stage.data();
    };
    for (std::uint32_t bi = 0; bi < msg.batch; ++bi) {
      const std::size_t na = std::size_t(rows_a) * cols_a;
      const std::size_t nb = std::size_t(rows_b) * cols_b;
      const std::size_t nc = std::size_t(msg.m) * msg.n;
      state->a.import_colmajor(bi, load(msg.a, bi * na, na), rows_a);
      state->b.import_colmajor(bi, load(msg.b, bi * nb, nb), rows_b);
      state->c.import_colmajor(bi, load(msg.c, bi * nc, nc), msg.m);
    }

    serve::SubmitOptions opts;
    opts.tenant = msg.tenant;
    opts.deadline = deadline;
    opts.cancel = serve::make_cancel_token();
    conn.pending.emplace(request_id, opts.cancel);
    ++submits;

    auto queue = completions;
    const std::uint64_t conn_id = conn.id;
    // The callback runs on the dispatcher thread (or inline on this
    // thread for submit-time refusals): it only touches the queue.
    (void)server.submit_gemm<T>(
        static_cast<Op>(msg.op_a), static_cast<Op>(msg.op_b), T(msg.alpha),
        state->a, state->b, T(msg.beta), state->c, opts,
        [queue, conn_id, request_id, state](Status st, const BatchHealth&) {
          queue->push(Completion{conn_id, request_id,
                                 static_cast<int>(st), state});
        });
  }

  void handle_submit(Conn& conn, const Frame& frame,
                     std::chrono::steady_clock::time_point now) {
    const std::uint64_t id = frame.header.request_id;
    GemmSubmit msg;
    const WireError perr = parse_gemm_submit(frame.payload, msg);
    if (perr != WireError::None) {
      queue_error(conn, perr, id, 0, "malformed SubmitGemm payload",
                  false);
      return;
    }
    if (conn.state == ConnState::AwaitHello) {
      queue_error(conn, WireError::Protocol, id, 0,
                  "SubmitGemm before Hello", false);
      return;
    }
    if (conn.state == ConnState::Closing) {
      queue_error(conn, WireError::Protocol, id, 0,
                  "SubmitGemm after Goodbye", false);
      return;
    }
    if (phase.load(std::memory_order_relaxed) != Phase::Running) {
      queue_error(conn, WireError::ShuttingDown, id, 0,
                  "daemon is draining", false);
      return;
    }
    if (conn.pending.size() >= cfg.max_outstanding) {
      queue_error(conn, WireError::Backpressure, id, 0,
                  "per-connection outstanding cap reached", false);
      return;
    }
    if (conn.pending.count(id) != 0) {
      queue_error(conn, WireError::Protocol, id, 0,
                  "duplicate request_id", false);
      return;
    }

    // Wire-level deadline propagation: the budget started when the
    // frame's first byte was buffered, so socket + decode time already
    // spent counts against it.
    std::chrono::nanoseconds deadline{0};
    if (msg.deadline_ms > 0) {
      const auto budget =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::duration<double, std::milli>(msg.deadline_ms));
      const auto spent = now - conn.frame_t0;
      if (spent >= budget) {
        // Dead on arrival: resolve it exactly like a queue-time expiry
        // would, without ever touching the Server.
        std::vector<std::uint8_t> payload;
        append_result(payload, static_cast<int>(Status::Timeout), {});
        queue_frame(conn, FrameType::Result, id, payload);
        ++results;
        return;
      }
      deadline = budget - spent;
    }

    if (msg.dtype == 's') {
      submit_typed<float>(conn, id, msg, deadline);
    } else {
      submit_typed<double>(conn, id, msg, deadline);
    }
  }

  // --- Frame dispatch --------------------------------------------------

  void handle_frame(Conn& conn, const Frame& frame,
                    std::chrono::steady_clock::time_point now) {
    ++frames_in;
    // The handshake is not optional: any frame before Hello is refused
    // (wire.hpp's "must open with Hello" contract), keeping framing so
    // the client can still handshake properly afterwards.
    if (conn.state == ConnState::AwaitHello &&
        frame.header.type != FrameType::Hello) {
      queue_error(conn, WireError::Protocol, frame.header.request_id, 0,
                  "expected Hello first", false);
      return;
    }
    switch (frame.header.type) {
    case FrameType::Hello: {
      std::uint32_t version = 0;
      const WireError perr = parse_hello(frame.payload, version);
      if (perr != WireError::None) {
        queue_error(conn, perr, frame.header.request_id, 0,
                    "malformed Hello", false);
        return;
      }
      if (version != kWireVersion) {
        queue_error(conn, WireError::BadVersion, frame.header.request_id,
                    0, "unsupported wire version", true);
        return;
      }
      if (conn.state != ConnState::AwaitHello) {
        queue_error(conn, WireError::Protocol, frame.header.request_id, 0,
                    "duplicate Hello", false);
        return;
      }
      conn.state = ConnState::Open;
      HelloAckMsg ack;
      ack.version = kWireVersion;
      ack.max_payload = static_cast<std::uint32_t>(
          std::min<std::size_t>(cfg.max_payload, UINT32_MAX));
      ack.max_outstanding = static_cast<std::uint32_t>(
          std::min<std::size_t>(cfg.max_outstanding, UINT32_MAX));
      std::vector<std::uint8_t> payload;
      append_hello_ack(payload, ack);
      queue_frame(conn, FrameType::HelloAck, frame.header.request_id,
                  payload);
      return;
    }
    case FrameType::SubmitGemm:
      handle_submit(conn, frame, now);
      return;
    case FrameType::Ping:
      queue_frame(conn, FrameType::Pong, frame.header.request_id, {});
      return;
    case FrameType::Cancel: {
      const auto it = conn.pending.find(frame.header.request_id);
      if (it == conn.pending.end()) {
        queue_error(conn, WireError::UnknownRequest,
                    frame.header.request_id, 0,
                    "cancel of unknown or finished request", false);
        return;
      }
      // Advisory: the request still resolves with exactly one Result
      // frame (status Cancelled if it was shed at dequeue).
      serve::cancel(it->second);
      ++cancels;
      return;
    }
    case FrameType::Goodbye:
      conn.state = ConnState::Closing;
      maybe_finish_closing(conn);
      return;
    case FrameType::HelloAck:
    case FrameType::Result:
    case FrameType::Error:
    case FrameType::Pong:
      queue_error(conn, WireError::Protocol, frame.header.request_id, 0,
                  "server-to-client frame type from client", false);
      return;
    }
    // Out-of-enum values never reach here (the decoder rejects them
    // with BadType); keep the refusal for defence in depth.
    queue_error(conn, WireError::BadType, frame.header.request_id, 0,
                "unhandled frame type", false);
  }

  void maybe_finish_closing(Conn& conn) {
    if (conn.state == ConnState::Closing && conn.pending.empty()) {
      conn.close_after_flush = true;
    }
  }

  // --- Socket events ---------------------------------------------------

  void on_readable(Conn& conn) {
    std::uint8_t buf[65536];
    bool saw_eof = false;
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n > 0) {
        bytes_in += static_cast<std::uint64_t>(n);
        if (conn.decoder.buffered() == 0) {
          conn.frame_t0 = std::chrono::steady_clock::now();
        }
        conn.decoder.feed(buf, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof buf) {
          break; // drained the socket
        }
        continue;
      }
      if (n == 0) {
        // Peer finished sending. Frames already delivered (possibly in
        // this very read burst) are still decoded below -- an EOF racing
        // a submit must not drop the submit.
        saw_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      destroy_conn(conn.id); // ECONNRESET and friends
      return;
    }
    if (conn.close_after_flush || conn.doomed) {
      if (saw_eof) {
        destroy_conn(conn.id); // condemned and the peer is gone: done
      }
      return;
    }

    const auto now = std::chrono::steady_clock::now();
    for (;;) {
      Decoder::Event ev = conn.decoder.next();
      if (ev.kind == Decoder::Event::Kind::NeedMore) {
        break;
      }
      if (ev.kind == Decoder::Event::Kind::Error) {
        queue_error(conn, ev.error, ev.request_id, 0, to_string(ev.error),
                    ev.fatal);
        if (ev.fatal || conn.doomed) {
          break; // latched (or overflowed): answer queued, then close
        }
        continue;
      }
      handle_frame(conn, ev.frame, now);
      if (conn.doomed || conn.close_after_flush) {
        break;
      }
      // Next frame's deadline clock starts now (its bytes may already
      // be buffered; charging from this frame's completion is the
      // closest observable bound).
      conn.frame_t0 = now;
    }
    if (conn.doomed) {
      destroy_conn(conn.id);
      return;
    }
    if (saw_eof) {
      if (conn.state == ConnState::Closing) {
        // Goodbye then shutdown(WR): a polite half-close. The client
        // still wants its results; close once pending work flushes
        // (read_closed keeps the EOF'd socket out of the poll set).
        conn.read_closed = true;
        maybe_finish_closing(conn);
      } else {
        // EOF with no Goodbye is client death: cancel this connection's
        // queued tickets (and only this connection's) and tear down.
        destroy_conn(conn.id);
      }
    }
  }

  void on_writable(Conn& conn) {
    while (conn.wpos < conn.wbuf.size()) {
      const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.wpos,
                               conn.wbuf.size() - conn.wpos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.wpos += static_cast<std::size_t>(n);
        bytes_out += static_cast<std::uint64_t>(n);
        conn.last_write_progress = std::chrono::steady_clock::now();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      destroy_conn(conn.id);
      return;
    }
    // Fully flushed: reclaim the buffer, honour deferred closes.
    conn.wbuf.clear();
    conn.wpos = 0;
    if (conn.close_after_flush || conn.doomed) {
      destroy_conn(conn.id);
    }
  }

  void on_accept(int listen_fd) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        return; // EAGAIN, EINTR or transient failure: poll again later
      }
      set_cloexec(fd);
      if (conns.size() >= cfg.max_connections) {
        // ShedNewest at the cap (Block parks the listener before we
        // ever get here): one stable Busy frame, then close.
        ++shed_busy;
        std::vector<std::uint8_t> refusal;
        {
          std::vector<std::uint8_t> payload;
          append_error(payload, WireError::Busy, 0,
                       "connection cap reached");
          append_frame(refusal, FrameType::Error, 0, payload);
        }
        send_best_effort(fd, refusal);
        ::close(fd);
        continue;
      }
      try {
        set_nonblocking(fd);
      } catch (...) {
        ::close(fd);
        continue;
      }
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn = std::make_unique<Conn>(cfg.max_payload);
      conn->fd = fd;
      conn->id = next_conn_id++;
      conn->last_write_progress = std::chrono::steady_clock::now();
      ++accepted;
      ++open_conns;
      conns.emplace(conn->id, std::move(conn));
    }
  }

  void process_completions() {
    for (Completion& c : completions->take()) {
      const auto it = conns.find(c.conn_id);
      if (it == conns.end()) {
        continue; // client died before its result; nothing to tell
      }
      Conn& conn = *it->second;
      const auto pit = conn.pending.find(c.request_id);
      if (pit == conn.pending.end()) {
        continue; // already answered (e.g. dead-on-arrival timeout)
      }
      conn.pending.erase(pit);
      std::vector<std::uint8_t> payload;
      if (c.status == 0) {
        std::vector<std::uint8_t> cdata;
        static_cast<const PendingState*>(c.state.get())->export_c(cdata);
        append_result(payload, 0, cdata);
      } else {
        append_result(payload, c.status, {});
      }
      queue_frame(conn, FrameType::Result, c.request_id, payload);
      ++results;
      if (conn.doomed) {
        destroy_conn(c.conn_id);
        continue;
      }
      maybe_finish_closing(conn);
    }
  }

  // --- Reactor loop ----------------------------------------------------

  void close_listeners() {
    if (unix_fd >= 0) {
      ::close(unix_fd);
      unix_fd = -1;
      if (!cfg.unix_path.empty()) {
        (void)::unlink(cfg.unix_path.c_str());
      }
    }
    if (tcp_fd >= 0) {
      ::close(tcp_fd);
      tcp_fd = -1;
    }
  }

  void run() {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn; ///< conn id per pollfd (0 = none)
    for (;;) {
      const Phase p = phase.load(std::memory_order_relaxed);
      if (p == Phase::Stopping) {
        break;
      }
      if (p == Phase::Draining) {
        close_listeners();
        // Condemn idle connections (a courtesy ShuttingDown notice
        // first); loaded ones close as their last completion flushes.
        for (auto& [id, conn] : conns) {
          if (conn->pending.empty() && !conn->close_after_flush &&
              !conn->doomed) {
            queue_error(*conn, WireError::ShuttingDown, 0, 0,
                        "daemon draining", true);
          }
        }
      }
      sweep_condemned();
      if (p == Phase::Draining && conns.empty()) {
        break; // every request resolved and flushed
      }

      fds.clear();
      fd_conn.clear();
      const bool at_cap = conns.size() >= cfg.max_connections;
      const bool park_listeners =
          p != Phase::Running ||
          (at_cap &&
           cfg.accept_overload == resilience::OverloadPolicy::Block);
      if (!park_listeners) {
        if (unix_fd >= 0) {
          fds.push_back({unix_fd, POLLIN, 0});
          fd_conn.push_back(0);
        }
        if (tcp_fd >= 0) {
          fds.push_back({tcp_fd, POLLIN, 0});
          fd_conn.push_back(0);
        }
      }
      fds.push_back({completions->wake_rd, POLLIN, 0});
      fd_conn.push_back(0);
      for (auto& [id, conn] : conns) {
        // A condemned or EOF'd connection's input no longer matters;
        // only its flush does.
        short events =
            (conn->close_after_flush || conn->read_closed) ? 0 : POLLIN;
        if (conn->queued_bytes() > 0) {
          events |= POLLOUT;
        }
        fds.push_back({conn->fd, events, 0});
        fd_conn.push_back(id);
      }

      const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                            100);
      if (rc < 0 && errno != EINTR) {
        break; // poll itself failing is unrecoverable
      }

      process_completions();

      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) {
          continue;
        }
        if (fd_conn[i] == 0) {
          if (fds[i].fd == completions->wake_rd) {
            process_completions();
          } else {
            on_accept(fds[i].fd);
          }
          continue;
        }
        {
          const auto it = conns.find(fd_conn[i]);
          if (it == conns.end()) {
            continue; // closed earlier this round
          }
          Conn& conn = *it->second;
          if ((fds[i].revents & (POLLERR | POLLNVAL)) ||
              ((fds[i].revents & POLLHUP) &&
               !(fds[i].revents & POLLIN) && conn.queued_bytes() == 0)) {
            destroy_conn(conn.id);
            continue;
          }
          if (fds[i].revents & POLLIN) {
            // A dead peer reports POLLIN|POLLHUP while undelivered
            // bytes remain: the read path must run first so frames that
            // raced the hangup are decoded, not dropped.
            on_readable(conn);
          }
        }
        // on_readable may have destroyed the connection: re-find.
        const auto it = conns.find(fd_conn[i]);
        if (it != conns.end() && (fds[i].revents & POLLOUT)) {
          on_writable(*it->second);
        }
      }

      // Slow-client sweep: queued bytes with no progress for too long.
      const auto now = std::chrono::steady_clock::now();
      std::vector<std::uint64_t> slow;
      for (auto& [id, conn] : conns) {
        if (conn->queued_bytes() > 0 &&
            now - conn->last_write_progress > cfg.write_timeout) {
          slow.push_back(id);
        }
      }
      for (const auto id : slow) {
        ++slow_closes;
        destroy_conn(id);
      }
    }

    // Teardown: whatever is left gets closed; queued requests of those
    // connections are cancelled via their tokens.
    close_listeners();
    while (!conns.empty()) {
      destroy_conn(conns.begin()->first);
    }
  }
};

// --- Public surface ----------------------------------------------------

namespace {

int listen_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw Error("iatf-net: unix socket path too long: " + path,
                Status::InvalidArg);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("socket(AF_UNIX)");
  }
  set_cloexec(fd);
  (void)::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  set_nonblocking(fd);
  return fd;
}

int listen_tcp(const std::string& host, std::uint16_t port,
               std::uint16_t& bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("socket(AF_INET)");
  }
  set_cloexec(fd);
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("iatf-net: bad TCP host '" + host + "'",
                Status::InvalidArg);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw_errno("bind(" + host + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen(tcp)");
  }
  sockaddr_in actual{};
  socklen_t len = sizeof actual;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
    bound = ntohs(actual.sin_port);
  }
  set_nonblocking(fd);
  return fd;
}

} // namespace

NetServer::NetServer(serve::Server& server, NetConfig config)
    : impl_(std::make_unique<Impl>(server, std::move(config))) {}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  std::lock_guard<std::mutex> lk(impl_->lifecycle_mu);
  IATF_CHECK(impl_->phase.load() == Impl::Phase::Idle,
             "NetServer::start: already started");
  IATF_CHECK(!impl_->cfg.unix_path.empty() || impl_->cfg.tcp,
             "NetServer::start: no endpoint configured");
  if (!impl_->cfg.unix_path.empty()) {
    impl_->unix_fd = listen_unix(impl_->cfg.unix_path);
  }
  if (impl_->cfg.tcp) {
    std::uint16_t bound = impl_->cfg.tcp_port;
    try {
      impl_->tcp_fd =
          listen_tcp(impl_->cfg.tcp_host, impl_->cfg.tcp_port, bound);
    } catch (...) {
      impl_->close_listeners();
      throw;
    }
    impl_->bound_tcp_port.store(bound);
  }
  impl_->phase.store(Impl::Phase::Running);
  impl_->reactor = std::thread([impl = impl_.get()] { impl->run(); });
}

void NetServer::drain() {
  std::lock_guard<std::mutex> lk(impl_->lifecycle_mu);
  const auto p = impl_->phase.load();
  if (p == Impl::Phase::Idle || p == Impl::Phase::Stopped) {
    impl_->phase.store(Impl::Phase::Stopped);
    return;
  }
  if (p == Impl::Phase::Running) {
    impl_->phase.store(Impl::Phase::Draining);
  }
  impl_->completions->wake();
  if (impl_->reactor.joinable()) {
    impl_->reactor.join();
  }
  impl_->phase.store(Impl::Phase::Stopped);
  impl_->server.drain();
}

void NetServer::stop() {
  std::lock_guard<std::mutex> lk(impl_->lifecycle_mu);
  const auto p = impl_->phase.load();
  if (p == Impl::Phase::Idle || p == Impl::Phase::Stopped) {
    impl_->phase.store(Impl::Phase::Stopped);
    return;
  }
  impl_->phase.store(Impl::Phase::Stopping);
  impl_->completions->wake();
  if (impl_->reactor.joinable()) {
    impl_->reactor.join();
  }
  impl_->phase.store(Impl::Phase::Stopped);
}

std::uint16_t NetServer::tcp_port() const noexcept {
  return impl_->bound_tcp_port.load();
}

NetStats NetServer::stats() const {
  NetStats s;
  s.accepted = impl_->accepted.load();
  s.shed_busy = impl_->shed_busy.load();
  s.closed = impl_->closed.load();
  s.slow_closes = impl_->slow_closes.load();
  s.frames_in = impl_->frames_in.load();
  s.frames_out = impl_->frames_out.load();
  s.wire_errors = impl_->wire_errors.load();
  s.fatal_errors = impl_->fatal_errors.load();
  s.submits = impl_->submits.load();
  s.results = impl_->results.load();
  s.cancels = impl_->cancels.load();
  s.bytes_in = impl_->bytes_in.load();
  s.bytes_out = impl_->bytes_out.load();
  s.connections = impl_->open_conns.load();
  return s;
}

} // namespace iatf::net
