// iatf-wire 1 framing: CRC, header codec, the strict incremental
// decoder, and the payload codecs. See the header for the grammar and
// the fatal/non-fatal error discipline.
#include "iatf/net/wire.hpp"

#include <algorithm>
#include <array>

#include "iatf/common/error.hpp"

namespace iatf::net {

namespace {

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Little-endian scalar writers/readers over raw bytes. memcpy keeps the
// accesses alignment-safe; the host is little-endian (x86-64/AArch64),
// asserted once at load time below for the exotic case.
template <class T>
void put(std::vector<std::uint8_t>& out, T value) {
  const auto size = out.size();
  out.resize(size + sizeof(T));
  std::memcpy(out.data() + size, &value, sizeof(T));
}

template <class T>
T get(std::span<const std::uint8_t> bytes, std::size_t offset) noexcept {
  T value{};
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

bool host_is_little_endian() noexcept {
  const std::uint32_t probe = 1;
  std::uint8_t first = 0;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

const bool kHostLE = host_is_little_endian();

bool known_type(std::uint8_t type) noexcept {
  return type >= static_cast<std::uint8_t>(FrameType::Hello) &&
         type <= static_cast<std::uint8_t>(FrameType::Goodbye);
}

std::size_t element_size(char dtype) noexcept {
  return dtype == 's' ? sizeof(float) : sizeof(double);
}

} // namespace

const char* to_string(FrameType type) noexcept {
  switch (type) {
  case FrameType::Hello: return "HELLO";
  case FrameType::HelloAck: return "HELLO_ACK";
  case FrameType::SubmitGemm: return "SUBMIT_GEMM";
  case FrameType::Result: return "RESULT";
  case FrameType::Error: return "ERROR";
  case FrameType::Ping: return "PING";
  case FrameType::Pong: return "PONG";
  case FrameType::Cancel: return "CANCEL";
  case FrameType::Goodbye: return "GOODBYE";
  }
  return "UNKNOWN";
}

const char* to_string(WireError error) noexcept {
  switch (error) {
  case WireError::None: return "none";
  case WireError::BadMagic: return "bad magic";
  case WireError::BadVersion: return "unsupported wire version";
  case WireError::BadReserved: return "reserved header bits set";
  case WireError::Oversized: return "payload length above bound";
  case WireError::BadType: return "unknown frame type";
  case WireError::BadCrc: return "payload CRC mismatch";
  case WireError::BadPayload: return "malformed payload";
  case WireError::Protocol: return "protocol state violation";
  case WireError::Busy: return "connection cap reached";
  case WireError::ShuttingDown: return "server draining";
  case WireError::UnknownRequest: return "unknown request id";
  case WireError::Backpressure: return "per-connection submit cap";
  }
  return "unknown wire error";
}

bool is_fatal(WireError error) noexcept {
  switch (error) {
  case WireError::BadMagic:
  case WireError::BadVersion:
  case WireError::BadReserved:
  case WireError::Oversized:
    return true;
  default:
    return false;
  }
}

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = crc_table()[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint64_t request_id,
                  std::span<const std::uint8_t> payload) {
  IATF_CHECK(kHostLE, "iatf-wire requires a little-endian host");
  put<std::uint32_t>(out, kWireMagic);
  put<std::uint8_t>(out, kWireVersion);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(type));
  put<std::uint16_t>(out, 0); // reserved
  put<std::uint64_t>(out, request_id);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  put<std::uint32_t>(out, crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

// ---- Decoder ----------------------------------------------------------

void Decoder::feed(const void* data, std::size_t size) {
  if (failed()) {
    return; // unframeable from here on; drop everything
  }
  // Compact the consumed prefix before growing so the buffer stays
  // bounded by (unconsumed bytes + new chunk), not by stream length.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), bytes, bytes + size);
}

Decoder::Event Decoder::next() {
  Event ev;
  if (failed()) {
    ev.kind = Event::Kind::Error;
    ev.error = fatal_;
    ev.request_id = fatal_id_;
    ev.fatal = true;
    return ev;
  }
  const std::size_t avail = buffered();
  if (avail < kHeaderSize) {
    return ev; // NeedMore
  }
  const std::span<const std::uint8_t> head(buf_.data() + pos_,
                                           kHeaderSize);
  const std::uint32_t magic = get<std::uint32_t>(head, 0);
  const std::uint8_t version = get<std::uint8_t>(head, 4);
  const std::uint8_t type = get<std::uint8_t>(head, 5);
  const std::uint16_t reserved = get<std::uint16_t>(head, 6);
  const std::uint64_t request_id = get<std::uint64_t>(head, 8);
  const std::uint32_t payload_len = get<std::uint32_t>(head, 16);
  const std::uint32_t payload_crc = get<std::uint32_t>(head, 20);

  const auto fatal = [&](WireError error) {
    fatal_ = error;
    fatal_id_ = request_id;
    buf_.clear();
    pos_ = 0;
    ev.kind = Event::Kind::Error;
    ev.error = error;
    ev.request_id = request_id;
    ev.fatal = true;
    return ev;
  };
  if (magic != kWireMagic) {
    return fatal(WireError::BadMagic);
  }
  if (version != kWireVersion) {
    return fatal(WireError::BadVersion);
  }
  if (reserved != 0) {
    return fatal(WireError::BadReserved);
  }
  if (payload_len > max_payload_) {
    return fatal(WireError::Oversized);
  }
  if (avail < kHeaderSize + payload_len) {
    return ev; // NeedMore: wait for the full payload
  }

  const std::span<const std::uint8_t> payload(
      buf_.data() + pos_ + kHeaderSize, payload_len);
  pos_ += kHeaderSize + payload_len; // frame consumed either way
  if (!known_type(type)) {
    ev.kind = Event::Kind::Error;
    ev.error = WireError::BadType;
    ev.request_id = request_id;
    return ev;
  }
  if (crc32(payload.data(), payload.size()) != payload_crc) {
    ev.kind = Event::Kind::Error;
    ev.error = WireError::BadCrc;
    ev.request_id = request_id;
    return ev;
  }
  ev.kind = Event::Kind::Frame;
  ev.frame.header.version = version;
  ev.frame.header.type = static_cast<FrameType>(type);
  ev.frame.header.request_id = request_id;
  ev.frame.header.payload_len = payload_len;
  ev.frame.header.payload_crc = payload_crc;
  ev.frame.payload.assign(payload.begin(), payload.end());
  return ev;
}

// ---- SubmitGemm -------------------------------------------------------

namespace {
constexpr std::size_t kGemmFixed = 52;
}

WireError parse_gemm_submit(std::span<const std::uint8_t> payload,
                            GemmSubmit& out) noexcept {
  if (payload.size() < kGemmFixed) {
    return WireError::BadPayload;
  }
  const char dtype = static_cast<char>(payload[0]);
  const std::uint8_t op_a = payload[1];
  const std::uint8_t op_b = payload[2];
  const std::uint8_t reserved = payload[3];
  if ((dtype != 's' && dtype != 'd') || op_a > 2 || op_b > 2 ||
      reserved != 0) {
    return WireError::BadPayload;
  }
  const std::uint32_t m = get<std::uint32_t>(payload, 4);
  const std::uint32_t n = get<std::uint32_t>(payload, 8);
  const std::uint32_t k = get<std::uint32_t>(payload, 12);
  const std::uint32_t batch = get<std::uint32_t>(payload, 16);
  const std::uint32_t tenant = get<std::uint32_t>(payload, 20);
  const std::uint32_t reserved2 = get<std::uint32_t>(payload, 24);
  if (m < 1 || n < 1 || k < 1 || m > kMaxWireDim || n > kMaxWireDim ||
      k > kMaxWireDim || batch < 1 || batch > kMaxWireBatch ||
      reserved2 != 0) {
    return WireError::BadPayload;
  }
  const double alpha = get<double>(payload, 28);
  const double beta = get<double>(payload, 36);
  const double deadline_ms = get<double>(payload, 44);
  if (!(deadline_ms >= 0.0) || deadline_ms > 1e12) {
    return WireError::BadPayload; // also rejects NaN
  }
  // Exact-size check: sizes are bounded above, so the products fit in
  // 64 bits with room to spare.
  const std::uint64_t es = element_size(dtype);
  const std::uint64_t a_bytes = es * m * k * batch;
  const std::uint64_t b_bytes = es * k * n * batch;
  const std::uint64_t c_bytes = es * m * n * batch;
  const std::uint64_t want = kGemmFixed + a_bytes + b_bytes + c_bytes;
  if (payload.size() != want) {
    return WireError::BadPayload;
  }
  out.dtype = dtype;
  out.op_a = op_a;
  out.op_b = op_b;
  out.m = m;
  out.n = n;
  out.k = k;
  out.batch = batch;
  out.tenant = tenant;
  out.alpha = alpha;
  out.beta = beta;
  out.deadline_ms = deadline_ms;
  out.a = payload.subspan(kGemmFixed, a_bytes);
  out.b = payload.subspan(kGemmFixed + a_bytes, b_bytes);
  out.c = payload.subspan(kGemmFixed + a_bytes + b_bytes, c_bytes);
  return WireError::None;
}

void append_gemm_submit(std::vector<std::uint8_t>& payload,
                        const GemmSubmit& submit) {
  const std::uint64_t es = element_size(submit.dtype);
  IATF_CHECK(submit.a.size() == es * submit.m * submit.k * submit.batch &&
                 submit.b.size() == es * submit.k * submit.n * submit.batch &&
                 submit.c.size() == es * submit.m * submit.n * submit.batch,
             "append_gemm_submit: data sizes disagree with descriptor");
  put<std::uint8_t>(payload, static_cast<std::uint8_t>(submit.dtype));
  put<std::uint8_t>(payload, submit.op_a);
  put<std::uint8_t>(payload, submit.op_b);
  put<std::uint8_t>(payload, 0);
  put<std::uint32_t>(payload, submit.m);
  put<std::uint32_t>(payload, submit.n);
  put<std::uint32_t>(payload, submit.k);
  put<std::uint32_t>(payload, submit.batch);
  put<std::uint32_t>(payload, submit.tenant);
  put<std::uint32_t>(payload, 0);
  put<double>(payload, submit.alpha);
  put<double>(payload, submit.beta);
  put<double>(payload, submit.deadline_ms);
  payload.insert(payload.end(), submit.a.begin(), submit.a.end());
  payload.insert(payload.end(), submit.b.begin(), submit.b.end());
  payload.insert(payload.end(), submit.c.begin(), submit.c.end());
}

// ---- Result -----------------------------------------------------------

WireError parse_result(std::span<const std::uint8_t> payload,
                       ResultMsg& out) noexcept {
  if (payload.size() < 8) {
    return WireError::BadPayload;
  }
  if (get<std::uint32_t>(payload, 4) != 0) {
    return WireError::BadPayload;
  }
  out.status = get<std::int32_t>(payload, 0);
  out.c = payload.subspan(8);
  if (out.status != 0 && !out.c.empty()) {
    return WireError::BadPayload; // data only rides an Ok result
  }
  return WireError::None;
}

void append_result(std::vector<std::uint8_t>& payload, std::int32_t status,
                   std::span<const std::uint8_t> c) {
  put<std::int32_t>(payload, status);
  put<std::uint32_t>(payload, 0);
  if (status == 0) {
    payload.insert(payload.end(), c.begin(), c.end());
  }
}

// ---- Error ------------------------------------------------------------

WireError parse_error(std::span<const std::uint8_t> payload,
                      ErrorMsg& out) noexcept {
  if (payload.size() < 12) {
    return WireError::BadPayload;
  }
  const std::uint32_t code = get<std::uint32_t>(payload, 0);
  const std::int32_t status = get<std::int32_t>(payload, 4);
  const std::uint16_t msg_len = get<std::uint16_t>(payload, 8);
  const std::uint16_t reserved = get<std::uint16_t>(payload, 10);
  if (reserved != 0 ||
      code > static_cast<std::uint32_t>(WireError::Backpressure) ||
      payload.size() != 12u + msg_len) {
    return WireError::BadPayload;
  }
  out.code = static_cast<WireError>(code);
  out.status = status;
  out.message.assign(reinterpret_cast<const char*>(payload.data()) + 12,
                     msg_len);
  return WireError::None;
}

void append_error(std::vector<std::uint8_t>& payload, WireError code,
                  std::int32_t status, std::string_view message) {
  const std::uint16_t msg_len = static_cast<std::uint16_t>(
      std::min<std::size_t>(message.size(), 512));
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(code));
  put<std::int32_t>(payload, status);
  put<std::uint16_t>(payload, msg_len);
  put<std::uint16_t>(payload, 0);
  payload.insert(payload.end(), message.begin(),
                 message.begin() + msg_len);
}

// ---- Hello / HelloAck -------------------------------------------------

WireError parse_hello(std::span<const std::uint8_t> payload,
                      std::uint32_t& version) noexcept {
  if (payload.size() != 4) {
    return WireError::BadPayload;
  }
  version = get<std::uint32_t>(payload, 0);
  return WireError::None;
}

void append_hello(std::vector<std::uint8_t>& payload) {
  put<std::uint32_t>(payload, kWireVersion);
}

WireError parse_hello_ack(std::span<const std::uint8_t> payload,
                          HelloAckMsg& out) noexcept {
  if (payload.size() != 12) {
    return WireError::BadPayload;
  }
  out.version = get<std::uint32_t>(payload, 0);
  out.max_payload = get<std::uint32_t>(payload, 4);
  out.max_outstanding = get<std::uint32_t>(payload, 8);
  return WireError::None;
}

void append_hello_ack(std::vector<std::uint8_t>& payload,
                      const HelloAckMsg& ack) {
  put<std::uint32_t>(payload, ack.version);
  put<std::uint32_t>(payload, ack.max_payload);
  put<std::uint32_t>(payload, ack.max_outstanding);
}

} // namespace iatf::net
