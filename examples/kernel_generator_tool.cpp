// The install-time stage as a command-line tool: generate the AArch64
// assembly of a compact GEMM (or TRSM-rectangular) kernel from the
// paper's templates, optionally run it through the kernel optimizer, and
// report the simulated Kunpeng-920 cycle counts.
//
// Usage:
//   kernel_generator_tool [gemm|rect] [mc] [nc] [k] [s|d] [--naive]
//
// e.g. `kernel_generator_tool gemm 4 4 8 d` emits the optimized DGEMM
// 4x4 K=8 kernel.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "iatf/codegen/gemm_emitter.hpp"
#include "iatf/pipesim/simulator.hpp"
#include "iatf/sched/scheduler.hpp"

using namespace iatf;

int main(int argc, char** argv) {
  std::string kind = argc > 1 ? argv[1] : "gemm";
  codegen::GemmKernelSpec spec;
  spec.mc = argc > 2 ? std::atoi(argv[2]) : 4;
  spec.nc = argc > 3 ? std::atoi(argv[3]) : 4;
  spec.k = argc > 4 ? std::atoll(argv[4]) : 8;
  spec.elem_bytes = (argc > 5 && argv[5][0] == 's') ? 4 : 8;
  bool naive = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--naive") == 0) {
      naive = true;
    }
  }

  codegen::Program prog;
  try {
    prog = kind == "rect" ? codegen::emit_trsm_rect_kernel(spec)
                          : codegen::emit_gemm_kernel(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const auto model = pipesim::MachineModel::kunpeng920();
  const auto naive_sim = pipesim::simulate(prog, model);
  codegen::Program chosen = prog;
  if (!naive) {
    chosen = sched::schedule(prog, model);
  }
  const auto sim = pipesim::simulate(chosen, model);
  const auto mix = codegen::instruction_mix(chosen);

  const char* dt = spec.elem_bytes == 4 ? "s" : "d";
  const std::string name = std::string("iatf_") + dt +
                           (kind == "rect" ? "trsm_rect_" : "gemm_") +
                           std::to_string(spec.mc) + "x" +
                           std::to_string(spec.nc) + "_k" +
                           std::to_string(spec.k);
  std::printf("%s", codegen::render_asm(chosen, name).c_str());
  std::printf("\n// %zu instructions (%lld vector loads/stores, %lld fp)"
              ", CMAR %.2f\n",
              chosen.size(), static_cast<long long>(mix.memory),
              static_cast<long long>(mix.fp), mix.cmar());
  std::printf("// simulated cycles on %s: %lld%s (generator order: "
              "%lld)\n",
              model.name.c_str(), static_cast<long long>(sim.cycles),
              naive ? " [naive]" : " [optimized]",
              static_cast<long long>(naive_sim.cycles));
  return 0;
}
