// Implicit stiff-ODE integration for a grid of independent chemistry
// cells -- the classic consumer of batched small LU solves (each
// backward-Euler step solves (I - dt*J_c) * delta = dt * f_c per cell,
// with J_c a small dense Jacobian that differs per cell).
//
// Demonstrates the factorisation extensions end-to-end:
//   compact_getrf_np  -- LU of every cell's iteration matrix at once
//   compact_getrs_np  -- forward+backward compact TRSM solves
// with the newton update applied in compact form.
#include <cmath>
#include <cstring>
#include <cstdio>
#include <vector>

#include "iatf/common/rng.hpp"
#include "iatf/common/timer.hpp"
#include "iatf/core/compact_blas.hpp"
#include "iatf/ext/compact_ext.hpp"

using namespace iatf;

namespace {
constexpr index_t kSpecies = 6;
constexpr index_t kCells = 8192;
constexpr double kDt = 1e-2;

// A synthetic linear-ish reaction network: dy/dt = R_c y with a per-cell
// rate matrix R_c whose off-diagonal entries are production terms and
// whose diagonal removes what is produced elsewhere (mass-conserving,
// stiff when rates spread over magnitudes).
void build_rates(Rng& rng, std::vector<double>& rates) {
  const index_t nn = kSpecies * kSpecies;
  rates.assign(static_cast<std::size_t>(nn * kCells), 0.0);
  for (index_t c = 0; c < kCells; ++c) {
    double* r = rates.data() + c * nn;
    for (index_t j = 0; j < kSpecies; ++j) {
      double out = 0.0;
      for (index_t i = 0; i < kSpecies; ++i) {
        if (i != j) {
          // Rate constants spanning three orders of magnitude: stiff.
          const double k =
              std::pow(10.0, rng.uniform<double>(-1.5, 1.5));
          r[j * kSpecies + i] = k;
          out += k;
        }
      }
      r[j * kSpecies + j] = -out;
    }
  }
}

} // namespace

int main() {
  Rng rng(123);
  const index_t nn = kSpecies * kSpecies;

  std::vector<double> rates;
  build_rates(rng, rates);

  // Initial concentrations (positive, normalised per cell).
  std::vector<double> y(kSpecies * kCells);
  rng.fill<double>(y);

  // Compact-resident operators.
  auto cr = to_compact<double>(rates.data(), kSpecies, kSpecies, kSpecies,
                               nn, kCells);
  CompactBuffer<double> cm(kSpecies, kSpecies, kCells); // I - dt*R
  CompactBuffer<double> cy(kSpecies, 1, kCells);
  CompactBuffer<double> crhs(kSpecies, 1, kCells);
  for (index_t c = 0; c < kCells; ++c) {
    cy.import_colmajor(c, y.data() + c * kSpecies, kSpecies);
  }

  // Backward Euler: (I - dt R) y_{n+1} = y_n. The iteration matrix is
  // constant here, so factor once and reuse the LU across steps.
  for (index_t c = 0; c < kCells; ++c) {
    for (index_t j = 0; j < kSpecies; ++j) {
      for (index_t i = 0; i < kSpecies; ++i) {
        cm.set(c, i, j,
               (i == j ? 1.0 : 0.0) - kDt * cr.get(c, i, j));
      }
    }
  }
  cm.pad_identity();

  Timer timer;
  ext::compact_getrf_np<double>(cm);
  const double factor_secs = timer.seconds();

  const int steps = 200;
  timer.reset();
  double mass0 = 0.0;
  for (double v : y) {
    mass0 += v;
  }
  for (int step = 0; step < steps; ++step) {
    // rhs = y_n; solve (I - dt R) y_{n+1} = rhs in place.
    std::memcpy(crhs.group_data(0), cy.group_data(0),
                sizeof(double) * static_cast<std::size_t>(
                                     cy.groups() * cy.group_stride()));
    ext::compact_getrs_np<double>(cm, crhs);
    std::memcpy(cy.group_data(0), crhs.group_data(0),
                sizeof(double) * static_cast<std::size_t>(
                                     cy.groups() * cy.group_stride()));
  }
  const double solve_secs = timer.seconds();

  // Mass conservation check: the rate matrices have zero column sums, so
  // total mass is invariant under the exact flow; backward Euler
  // preserves it exactly for linear systems.
  double mass1 = 0.0;
  double ymin = 1e300;
  for (index_t c = 0; c < kCells; ++c) {
    cy.export_colmajor(c, y.data() + c * kSpecies, kSpecies);
  }
  for (double v : y) {
    mass1 += v;
    ymin = std::min(ymin, v);
  }
  const double mass_err = std::abs(mass1 - mass0) / mass0;

  std::printf("implicit chemistry: %lld cells x %lld species, LU factor "
              "%.3f ms, %d implicit steps %.3f s\n",
              static_cast<long long>(kCells),
              static_cast<long long>(kSpecies), factor_secs * 1e3, steps,
              solve_secs);
  std::printf("relative mass drift: %.2e, min concentration %.3e %s\n",
              mass_err, ymin,
              (mass_err < 1e-10 && ymin > -1e-12) ? "(ok)"
                                                  : "(UNEXPECTED)");
  return (mass_err < 1e-10 && ymin > -1e-12) ? 0 : 1;
}
