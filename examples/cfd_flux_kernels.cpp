// High-order CFD element kernels -- the paper's "high-order
// Computational Fluid Dynamics" motivating workload (cf. GiMMiK [20]).
//
// A discontinuous-Galerkin-style solver evaluates, for every element of
// an unstructured mesh, products of small dense operator matrices with
// per-element state: interpolation to quadrature points, differentiation,
// and projection back. With curved elements each operator is scaled by
// per-element geometric Jacobians, so the batch holds thousands of
// *distinct* fixed-size small matrices -- exactly the compact-batched
// GEMM shape.
//
// This example runs one pseudo-time step of
//     u_q   = (J_e B) u_e        interpolate   (nq x np) * (np x nv)
//     f_q   = a .* u_q           pointwise flux
//     du_e  = (J_e D)^T f_q      differentiate (nq x np)^T * (nq x nv)
//     u_e  -= dt * du_e
// over the whole mesh with compact batched GEMM, and cross-checks one
// element against a scalar evaluation.
#include <cmath>
#include <cstdio>
#include <vector>

#include "iatf/common/rng.hpp"
#include "iatf/common/timer.hpp"
#include "iatf/core/compact_blas.hpp"

using namespace iatf;

namespace {
constexpr index_t kNp = 10;       // solution points (P3 triangle)
constexpr index_t kNq = 16;       // quadrature points
constexpr index_t kNv = 4;        // conserved variables
constexpr index_t kElements = 8192;
} // namespace

int main() {
  Rng rng(99);

  // Reference operators B (interp) and D (derivative), shared shapes.
  std::vector<float> b_ref(kNq * kNp), d_ref(kNq * kNp);
  rng.fill<float>(b_ref);
  rng.fill<float>(d_ref);

  // Per-element geometric scaling J_e: makes each operator distinct.
  std::vector<float> jac(kElements);
  for (float& j : jac) {
    j = 0.5f + rng.uniform<float>();
  }

  // Build compact batches of per-element operators and state.
  CompactBuffer<float> cb(kNq, kNp, kElements);
  CompactBuffer<float> cd(kNq, kNp, kElements);
  CompactBuffer<float> cu(kNp, kNv, kElements);
  CompactBuffer<float> cuq(kNq, kNv, kElements);
  CompactBuffer<float> cdu(kNp, kNv, kElements);

  std::vector<float> u_host(kNp * kNv * kElements);
  rng.fill<float>(u_host);
  for (index_t e = 0; e < kElements; ++e) {
    for (index_t j = 0; j < kNp; ++j) {
      for (index_t i = 0; i < kNq; ++i) {
        cb.set(e, i, j, jac[e] * b_ref[j * kNq + i]);
        cd.set(e, i, j, jac[e] * d_ref[j * kNq + i]);
      }
    }
    cu.import_colmajor(e, u_host.data() + e * kNp * kNv, kNp);
  }

  const float dt = 1e-3f;
  const float wave[kNv] = {1.0f, 0.6f, -0.4f, 0.2f};

  Timer timer;
  const int steps = 20;
  for (int step = 0; step < steps; ++step) {
    // u_q = (J B) u_e for every element.
    compact_gemm<float>(Op::NoTrans, Op::NoTrans, 1.0f, cb, cu, 0.0f,
                        cuq);
    // Pointwise flux: f_q = a_v * u_q, variable-wise scaling done in the
    // compact domain (cheap elementwise pass).
    for (index_t e = 0; e < kElements; ++e) {
      for (index_t v = 0; v < kNv; ++v) {
        for (index_t q = 0; q < kNq; ++q) {
          cuq.set(e, q, v, wave[v] * cuq.get(e, q, v));
        }
      }
    }
    // du_e = (J D)^T f_q  (transposed operator -- exercises the TN pack).
    compact_gemm<float>(Op::Trans, Op::NoTrans, 1.0f, cd, cuq, 0.0f,
                        cdu);
    // u_e -= dt * du_e  == gemm-free axpy in compact form.
    for (index_t e = 0; e < kElements; ++e) {
      for (index_t v = 0; v < kNv; ++v) {
        for (index_t p = 0; p < kNp; ++p) {
          cu.set(e, p, v, cu.get(e, p, v) - dt * cdu.get(e, p, v));
        }
      }
    }
  }
  const double secs = timer.seconds();
  const double flops_per_step =
      2.0 * kElements * kNv *
      (static_cast<double>(kNq) * kNp + static_cast<double>(kNp) * kNq);
  std::printf("cfd flux: %lld elements, np=%lld nq=%lld nv=%lld, %d "
              "steps in %.3f s (%.2f GFLOPS in the GEMMs)\n",
              static_cast<long long>(kElements),
              static_cast<long long>(kNp), static_cast<long long>(kNq),
              static_cast<long long>(kNv), steps, secs,
              flops_per_step * steps / secs * 1e-9);

  // Cross-check element 17 for one interpolation against scalar math.
  compact_gemm<float>(Op::NoTrans, Op::NoTrans, 1.0f, cb, cu, 0.0f, cuq);
  double max_err = 0;
  const index_t e = 17;
  for (index_t v = 0; v < kNv; ++v) {
    for (index_t q = 0; q < kNq; ++q) {
      double want = 0;
      for (index_t p = 0; p < kNp; ++p) {
        want += static_cast<double>(jac[e]) * b_ref[p * kNq + q] *
                cu.get(e, p, v);
      }
      max_err = std::max(
          max_err, std::abs(want - static_cast<double>(cuq.get(e, q, v))));
    }
  }
  std::printf("element 17 interpolation error: %.2e %s\n", max_err,
              max_err < 1e-3 ? "(ok)" : "(UNEXPECTED)");
  return max_err < 1e-3 ? 0 : 1;
}
