// Block-Jacobi preconditioned Richardson iteration for a PDE-style
// system -- the "PDE based simulations" workload motivating the paper's
// introduction.
//
// Setting: a block-tridiagonal system from a 1D reaction-diffusion
// problem with `nb` coupled fields per grid cell. Each cell owns a dense
// nb x nb diagonal block D_i (pre-factored offline as L_i * L_i^T) and
// off-diagonal coupling blocks E_i. One preconditioned iteration per cell
// is
//     r_i   = b_i - E_i x_{i-1} - D_i x_i - E_i^T x_{i+1}   (small GEMMs)
//     z_i   = (L_i L_i^T)^{-1} r_i                          (two TRSMs)
//     x_i  += omega * z_i
//
// Every cell is independent within a sweep, so all three steps run as
// compact batched operations over the whole grid at once. This is
// exactly the shape IATF accelerates: thousands of fixed-size tiny
// matrix operations per sweep.
#include <cmath>
#include <cstdio>
#include <vector>

#include "iatf/common/rng.hpp"
#include "iatf/common/timer.hpp"
#include "iatf/core/compact_blas.hpp"

using namespace iatf;

namespace {

constexpr index_t kBlock = 5;    // fields per cell
constexpr index_t kCells = 4096; // grid cells
constexpr index_t kRhs = 1;      // right-hand sides per cell

// Residual norm over the whole grid, computed on the host for clarity.
double grid_norm(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) {
    s += x * x;
  }
  return std::sqrt(s);
}

} // namespace

int main() {
  Rng rng(7);
  const index_t nb = kBlock;
  const index_t bb = nb * nb;

  // Per-cell Cholesky factors L_i: unit-ish lower triangles with a
  // dominant diagonal (a pre-factored diffusion block).
  std::vector<double> lfac(bb * kCells, 0.0);
  for (index_t c = 0; c < kCells; ++c) {
    for (index_t j = 0; j < nb; ++j) {
      for (index_t i = j; i < nb; ++i) {
        lfac[c * bb + j * nb + i] =
            i == j ? 1.5 + rng.uniform<double>()
                   : 0.1 * rng.uniform<double>(-1, 1);
      }
    }
  }
  // Coupling blocks E_i (weak off-cell coupling).
  std::vector<double> efac(bb * kCells);
  rng.fill<double>(efac);
  for (double& v : efac) {
    v *= 0.05;
  }

  // Dense diagonal blocks D_i = L_i L_i^T, kept for the residual GEMM.
  std::vector<double> dfac(bb * kCells, 0.0);
  for (index_t c = 0; c < kCells; ++c) {
    for (index_t j = 0; j < nb; ++j) {
      for (index_t i = 0; i < nb; ++i) {
        double s = 0;
        for (index_t k = 0; k <= std::min(i, j); ++k) {
          s += lfac[c * bb + k * nb + i] * lfac[c * bb + k * nb + j];
        }
        dfac[c * bb + j * nb + i] = s;
      }
    }
  }

  // Unknowns and right-hand side, one nb x kRhs block per cell.
  const index_t vb = nb * kRhs;
  std::vector<double> x(vb * kCells, 0.0);
  std::vector<double> b(vb * kCells);
  rng.fill<double>(b);

  // Compact-resident operators (converted once; iterated on in compact
  // form, which is the intended usage pattern for compact BLAS).
  auto cl = to_compact<double>(lfac.data(), nb, nb, nb, bb, kCells);
  cl.pad_identity();
  auto cd = to_compact<double>(dfac.data(), nb, nb, nb, bb, kCells);
  auto ce = to_compact<double>(efac.data(), nb, nb, nb, bb, kCells);
  auto cb = to_compact<double>(b.data(), nb, kRhs, nb, vb, kCells);
  CompactBuffer<double> cx(nb, kRhs, kCells);
  CompactBuffer<double> cxl(nb, kRhs, kCells); // left-neighbour copy
  CompactBuffer<double> cxr(nb, kRhs, kCells); // right-neighbour copy
  CompactBuffer<double> cr(nb, kRhs, kCells);

  const double omega = 0.9;
  const int sweeps = 30;
  std::vector<double> r_host(vb * kCells);

  Timer timer;
  double final_rel = 1.0;
  double initial = 0.0;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    // Neighbour gathers (host-side shift; the matrix work stays compact).
    from_compact<double>(cx, x.data(), nb, vb);
    for (index_t c = 0; c < kCells; ++c) {
      const index_t lc = c == 0 ? c : c - 1;
      const index_t rc = c == kCells - 1 ? c : c + 1;
      cxl.import_colmajor(c, x.data() + lc * vb, nb);
      cxr.import_colmajor(c, x.data() + rc * vb, nb);
    }

    // r = b  (copy), then r -= D x + E x_left + E^T x_right: three
    // compact batched GEMMs over all cells.
    for (index_t c = 0; c < kCells; ++c) {
      cr.import_colmajor(c, b.data() + c * vb, nb);
    }
    compact_gemm<double>(Op::NoTrans, Op::NoTrans, -1.0, cd, cx, 1.0, cr);
    compact_gemm<double>(Op::NoTrans, Op::NoTrans, -1.0, ce, cxl, 1.0,
                         cr);
    compact_gemm<double>(Op::Trans, Op::NoTrans, -1.0, ce, cxr, 1.0, cr);

    from_compact<double>(cr, r_host.data(), nb, vb);
    const double rn = grid_norm(r_host);
    if (sweep == 0) {
      initial = rn;
    }
    final_rel = rn / initial;

    // z = (L L^T)^{-1} r via two compact batched triangular solves.
    compact_trsm<double>(Side::Left, Uplo::Lower, Op::NoTrans,
                         Diag::NonUnit, 1.0, cl, cr);
    compact_trsm<double>(Side::Left, Uplo::Lower, Op::Trans,
                         Diag::NonUnit, 1.0, cl, cr);

    // x += omega * z.
    from_compact<double>(cr, r_host.data(), nb, vb);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += omega * r_host[i];
    }
    for (index_t c = 0; c < kCells; ++c) {
      cx.import_colmajor(c, x.data() + c * vb, nb);
    }
  }
  const double secs = timer.seconds();

  std::printf("block-Jacobi: %lld cells, %lldx%lld blocks, %d sweeps in "
              "%.3f s\n",
              static_cast<long long>(kCells),
              static_cast<long long>(nb), static_cast<long long>(nb),
              sweeps, secs);
  std::printf("relative residual: %.3e %s\n", final_rel,
              final_rel < 1e-3 ? "(converging, ok)" : "(UNEXPECTED)");
  return final_rel < 1e-3 ? 0 : 1;
}
