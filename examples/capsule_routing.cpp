// Capsule-network pose transformation -- the paper's machine-learning
// motivating workload (it cites "Matrix capsules with EM routing" [12]).
//
// In a matrix-capsule layer, every (input capsule i, output capsule j)
// pair transforms a 4x4 pose matrix M_i by a learned 4x4 weight W_ij:
//     V_ij = M_i * W_ij
// For a 32-in / 32-out layer over a batch of images this is tens of
// thousands of *fixed-size 4x4* matrix multiplications per forward pass
// -- the canonical compact-batched GEMM. The 4x4 size is exactly IATF's
// CMAR-optimal real kernel, so every multiplication runs as a single
// main-kernel call with no edge handling at all.
//
// The example also runs one "routing temperature" solve: a 4x4 lower
// triangular whitening transform applied to the votes via compact TRSM.
#include <cmath>
#include <cstdio>
#include <vector>

#include "iatf/common/rng.hpp"
#include "iatf/common/timer.hpp"
#include "iatf/core/compact_blas.hpp"

using namespace iatf;

namespace {
constexpr index_t kPose = 4;
constexpr index_t kInCaps = 32;
constexpr index_t kOutCaps = 32;
constexpr index_t kSpatial = 36; // 6x6 feature positions
constexpr index_t kPairs = kInCaps * kOutCaps * kSpatial;
} // namespace

int main() {
  Rng rng(5);
  const index_t pp = kPose * kPose;

  // Poses (replicated per output capsule) and per-pair weights.
  CompactBuffer<float> poses(kPose, kPose, kPairs);
  CompactBuffer<float> weights(kPose, kPose, kPairs);
  CompactBuffer<float> votes(kPose, kPose, kPairs);
  CompactBuffer<float> whiten(kPose, kPose, kPairs);

  std::vector<float> tmp(pp);
  for (index_t p = 0; p < kPairs; ++p) {
    rng.fill<float>(tmp);
    for (index_t j = 0; j < kPose; ++j) {
      for (index_t i = 0; i < kPose; ++i) {
        poses.set(p, i, j, tmp[j * kPose + i]);
      }
    }
    rng.fill<float>(tmp);
    for (index_t j = 0; j < kPose; ++j) {
      for (index_t i = 0; i < kPose; ++i) {
        weights.set(p, i, j, tmp[j * kPose + i] - 0.5f);
        whiten.set(p, i, j,
                   i > j ? 0.1f * tmp[j * kPose + i]
                   : i == j ? 1.0f + tmp[j * kPose + i]
                            : 0.0f);
      }
    }
  }
  whiten.pad_identity();

  Timer timer;
  const int passes = 50;
  for (int pass = 0; pass < passes; ++pass) {
    // Votes: V = M * W for all (i, j, position) pairs at once.
    compact_gemm<float>(Op::NoTrans, Op::NoTrans, 1.0f, poses, weights,
                        0.0f, votes);
    // Whitened votes: solve T Z = V with the lower-triangular T.
    compact_trsm<float>(Side::Left, Uplo::Lower, Op::NoTrans,
                        Diag::NonUnit, 1.0f, whiten, votes);
  }
  const double secs = timer.seconds();
  const double flops =
      static_cast<double>(passes) * kPairs *
      (2.0 * kPose * kPose * kPose       // gemm
       + static_cast<double>(kPose) * kPose * kPose); // trsm
  std::printf("capsule routing: %lld pose transforms/pass, %d passes in "
              "%.3f s (%.2f GFLOPS)\n",
              static_cast<long long>(kPairs), passes, secs,
              flops / secs * 1e-9);

  // Verify one pair scalar-wise.
  compact_gemm<float>(Op::NoTrans, Op::NoTrans, 1.0f, poses, weights,
                      0.0f, votes);
  const index_t p = kPairs / 2;
  double max_err = 0;
  for (index_t j = 0; j < kPose; ++j) {
    for (index_t i = 0; i < kPose; ++i) {
      double want = 0;
      for (index_t k = 0; k < kPose; ++k) {
        want += static_cast<double>(poses.get(p, i, k)) *
                weights.get(p, k, j);
      }
      max_err = std::max(
          max_err,
          std::abs(want - static_cast<double>(votes.get(p, i, j))));
    }
  }
  std::printf("vote verification error: %.2e %s\n", max_err,
              max_err < 1e-4 ? "(ok)" : "(UNEXPECTED)");
  return max_err < 1e-4 ? 0 : 1;
}
