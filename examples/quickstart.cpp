// Quickstart: the minimal end-to-end use of the IATF compact batched
// BLAS.
//
//  1. Lay out a batch of small column-major matrices.
//  2. Convert them to the SIMD-friendly compact layout.
//  3. Call compact_gemm / compact_trsm (plans are generated and cached
//     behind the scenes by the run-time stage).
//  4. Convert back and read the results.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "iatf/core/compact_blas.hpp"
#include "iatf/common/rng.hpp"

int main() {
  using namespace iatf;

  // A batch of 1000 independent 3x3 problems: C = A*B, then solve
  // L X = C for the lower-triangular L.
  const index_t n = 3;
  const index_t batch = 1000;

  Rng rng(2024);
  std::vector<double> a(n * n * batch), b(n * n * batch),
      l(n * n * batch);
  rng.fill<double>(a);
  rng.fill<double>(b);
  rng.fill<double>(l);
  for (index_t i = 0; i < batch; ++i) {
    for (index_t d = 0; d < n; ++d) {
      l[i * n * n + d * n + d] += 2.0; // well-conditioned diagonals
    }
  }

  // Column-major batches -> compact layout (P matrices interleaved per
  // SIMD vector; P = 2 for double on the 128-bit configuration).
  CompactBuffer<double> ca =
      to_compact<double>(a.data(), n, n, n, n * n, batch);
  CompactBuffer<double> cb =
      to_compact<double>(b.data(), n, n, n, n * n, batch);
  CompactBuffer<double> cl =
      to_compact<double>(l.data(), n, n, n, n * n, batch);
  cl.pad_identity(); // keep padded lanes solvable
  CompactBuffer<double> cc(n, n, batch);

  // C = 1.0 * A * B + 0.0 * C, for all 1000 matrices at once.
  compact_gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, ca, cb, 0.0, cc);

  // Solve L X = C in place (Left, Lower, NoTrans, NonUnit).
  compact_trsm<double>(Side::Left, Uplo::Lower, Op::NoTrans,
                       Diag::NonUnit, 1.0, cl, cc);

  // Back to column-major.
  std::vector<double> x(n * n * batch);
  from_compact<double>(cc, x.data(), n, n * n);

  std::printf("quickstart: solved %lld systems of size %lldx%lld\n",
              static_cast<long long>(batch), static_cast<long long>(n),
              static_cast<long long>(n));
  std::printf("X[0] =\n");
  for (index_t i = 0; i < n; ++i) {
    std::printf("  % .6f % .6f % .6f\n", x[0 * n + i], x[1 * n + i],
                x[2 * n + i]);
  }

  // Sanity check matrix 0 by reconstruction: L * X should equal A*B.
  double max_err = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double ab = 0.0;
      double lx = 0.0;
      for (index_t k = 0; k < n; ++k) {
        ab += a[k * n + i] * b[j * n + k];
        if (k <= i) {
          lx += l[k * n + i] * x[j * n + k];
        }
      }
      max_err = std::max(max_err, std::abs(ab - lx));
    }
  }
  std::printf("reconstruction error of matrix 0: %.2e %s\n", max_err,
              max_err < 1e-10 ? "(ok)" : "(UNEXPECTED)");
  return max_err < 1e-10 ? 0 : 1;
}
