// Umbrella header: the whole public IATF API.
//
//   compact BLAS       iatf/core/compact_blas.hpp   (gemm, trsm)
//   factorisations     iatf/factor/factor.hpp       (packed handles, potrf,
//                                                    getrf_nopiv, trtri)
//   extensions         iatf/ext/compact_ext.hpp     (trmm, getrf, potrf)
//   layout             iatf/layout/compact.hpp      (CompactBuffer, convert)
//   engine & plans     iatf/core/engine.hpp         (plan cache, tuning)
//   multicore          iatf/parallel/thread_pool.hpp
//   C interface        iatf/capi/iatf.h
#pragma once

#include "iatf/common/cache_info.hpp"
#include "iatf/common/error.hpp"
#include "iatf/common/rng.hpp"
#include "iatf/common/timer.hpp"
#include "iatf/common/types.hpp"
#include "iatf/core/compact_blas.hpp"
#include "iatf/core/engine.hpp"
#include "iatf/ext/compact_ext.hpp"
#include "iatf/factor/factor.hpp"
#include "iatf/layout/compact.hpp"
#include "iatf/parallel/thread_pool.hpp"
#include "iatf/tune/search.hpp"
#include "iatf/tune/tuning_table.hpp"
