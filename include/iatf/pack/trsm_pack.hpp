// TRSM data-packing kernels and mode canonicalisation (paper section 4.4).
//
// The pack selector maps every one of the 16 TRSM mode combinations
// (Side x Uplo x Trans x Diag) onto the single canonical form the
// computing kernels implement -- Left / Lower / NoTrans -- using three
// pack-time transforms:
//
//   * transpose: a Right-side problem X op(A) = aB is the Left problem
//     op(A)^T X^T = aB^T, and a Trans mode reads A at the transposed
//     position;
//   * reversal: an effectively-upper triangle becomes lower under the
//     index reversal i -> m-1-i applied to both A and the rows of B
//     (P A P with P the exchange permutation);
//   * conjugation: ConjTrans negates the imaginary plane while copying.
//
// "pack matrices into the same order, so that only one computational
// kernel is needed to handle all modes" (paper section 5.2).
//
// The packed triangle stores, per diagonal block bi, the rectangular
// sub-blocks L(bi, bj<bi) in k-major kernel order followed by the
// triangular block itself row-major with a *reciprocal* diagonal: ARM's
// FDIV latency is paid once at pack time, never in the kernel.
#pragma once

#include <cstdint>
#include <span>

#include "iatf/common/tiling.hpp"
#include "iatf/common/types.hpp"

namespace iatf::pack {

/// How a TRSM mode maps onto the canonical Left/Lower/NoTrans solve.
struct TrsmCanon {
  bool transpose = false;   ///< read A(j,i) instead of A(i,j)
  bool conj = false;        ///< conjugate A while packing
  bool reverse = false;     ///< reverse row indices of the left problem
  bool b_transpose = false; ///< operate on B^T (Right-side problems)
  index_t m = 0;            ///< order of the triangular factor
  index_t n = 0;            ///< columns of the canonical left problem

  static TrsmCanon make(const TrsmShape& shape);
};

/// Pack the canonical lower triangle of one group's A.
///
/// `src` is the group's A data, stored m x m with element stride `es`.
/// `blocks` tiles [0, m). Output layout, for each block bi:
///   [rect block (bi, bj) for every bj < bi : k-major, bj.size k-blocks of
///    bi.size element blocks]  then
///   [triangular block: rows i = 0..bi.size-1, each row's blocks
///    L(i, 0..i), diagonal stored as its reciprocal (exactly 1 for Unit)].
/// `invert_diag` selects the stored diagonal: reciprocals for TRSM (the
/// default), plain values for the TRMM extension. Unit diagonals store
/// exactly 1 either way.
///
/// `singular` (optional) is the numerical-health hook: the pack already
/// has every diagonal element in registers, so lanes whose diagonal is
/// zero, NaN, or too tiny for a finite reciprocal are OR-ed into the mask
/// (bit = lane within the interleave group) at no extra memory traffic.
/// Only meaningful with invert_diag and a NonUnit diagonal.
template <class T>
void pack_trsm_a(const real_t<T>* src, index_t es, const TrsmCanon& canon,
                 Diag diag, std::span<const Tile> blocks, real_t<T>* out,
                 bool invert_diag = true,
                 std::uint64_t* singular = nullptr);

/// Scalars (of real type) a packed triangle occupies for the given blocks.
index_t packed_trsm_a_size(std::span<const Tile> blocks, index_t es);

/// Offset (in reals) of block-row bi's data within the packed triangle,
/// and of its rect sub-block for bj within that block-row.
index_t packed_trsm_row_offset(std::span<const Tile> blocks, index_t bi,
                               index_t es);

/// Gather one group's B into the canonical m x n workspace, applying
/// alpha, the Right-side transpose and the row reversal.
/// `src` is the group's B, stored (shape.m x shape.n).
template <class T>
void pack_trsm_b(const real_t<T>* src, index_t src_rows,
                 const TrsmCanon& canon, index_t es, T alpha,
                 real_t<T>* out);

/// Scatter the canonical solution back into the user's B.
template <class T>
void unpack_trsm_b(const real_t<T>* canonical, index_t src_rows,
                   const TrsmCanon& canon, index_t es, real_t<T>* dst);

} // namespace iatf::pack
