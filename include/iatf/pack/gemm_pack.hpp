// GEMM data-packing kernels (paper section 4.4, Figure 6).
//
// Packing reorders one group's operand into the exact order the computing
// kernel walks it -- "N-shaped" for A (k-major within each row tile) and
// "Z-shaped" for B (k-major within each column tile) -- so every kernel
// load is contiguous. Under the compact layout each copied unit is one
// element block of P (or 2P, complex) scalars, so the copies are
// vector-width memcpys as in the paper.
//
// Transposition modes are absorbed here: packing gathers from the
// transposed position (and conjugates the imaginary plane for ConjTrans),
// which is what lets a single computing kernel serve NN/NT/TN/TT/
// conjugated modes (paper section 5.2).
#pragma once

#include <span>

#include "iatf/common/tiling.hpp"
#include "iatf/common/types.hpp"

namespace iatf::pack {

/// Pack operand A of one group.
///
/// `src` points at the group's data, stored rows x cols (compact element
/// stride `es`); logically A is m x k after applying `op`
/// (rows/cols == m/k for NoTrans, k/m otherwise).
/// Output layout: for each tile t over m: for each l in [0,k):
/// tile-size element blocks A(t.offset+i, l).
template <class T>
void pack_gemm_a(const real_t<T>* src, index_t rows, index_t es, Op op,
                 std::span<const Tile> m_tiles, index_t k,
                 real_t<T>* out);

/// Pack operand B of one group; logically B is k x n after `op`.
/// Output layout: for each tile t over n: for each l in [0,k):
/// tile-size element blocks B(l, t.offset+j).
template <class T>
void pack_gemm_b(const real_t<T>* src, index_t rows, index_t es, Op op,
                 std::span<const Tile> n_tiles, index_t k,
                 real_t<T>* out);

/// Scalars (of real type) in a packed A panel: m*k element blocks.
inline index_t packed_gemm_a_size(index_t m, index_t k, index_t es) {
  return m * k * es;
}

/// Scalars in a packed B panel: k*n element blocks.
inline index_t packed_gemm_b_size(index_t k, index_t n, index_t es) {
  return k * n * es;
}

} // namespace iatf::pack
