// Functional interpreter for the kernel IR.
//
// Executes an emitted (or rescheduled) instruction stream on simulated
// vector registers and byte-addressed buffers, so tests can prove two
// properties end-to-end without ARM hardware:
//   * the generator's template sequences compute exactly the reference
//     GEMM / TRSM-rect result, and
//   * the kernel optimizer's reordering is semantics-preserving
//     (bit-identical outputs before and after scheduling).
#pragma once

#include <array>
#include <vector>

#include "iatf/codegen/ir.hpp"

namespace iatf::codegen {

/// Buffers bound to the kernel's pointer registers. Values are held as
/// doubles regardless of the kernel's element width; indices are element
/// indices (the interpreter divides byte offsets by elem_bytes).
struct InterpBuffers {
  std::vector<double> a;     ///< packed A panel (read)
  std::vector<double> b;     ///< packed B panel (read)
  std::vector<double> c;     ///< C tile (read/write)
  std::vector<double> alpha; ///< broadcast alpha (one vector's worth)
};

/// Execute the program. Throws iatf::Error on out-of-bounds access (which
/// is itself a property the tests rely on: the corrected odd-K sequencing
/// must never read past the packed panels).
void interpret(const Program& prog, InterpBuffers& buffers);

} // namespace iatf::codegen
