// Kernel IR: the instruction stream the install-time stage's kernel
// generator emits and the kernel optimizer reschedules (paper Figure 5).
//
// On the paper's platform this is literal AArch64 assembly. On a non-ARM
// host the same artifact is produced as a typed instruction list that can
// be (a) rendered to .S text, (b) analysed and rescheduled by the list
// scheduler, (c) cycle-simulated against a Kunpeng-920-like machine model
// and (d) functionally interpreted, so every install-time claim in the
// paper remains testable without an ARM assembler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iatf/common/types.hpp"

namespace iatf::codegen {

/// Register numbering: vector registers v0..v31 are 0..31; general
/// (pointer) registers are kX0 + n.
inline constexpr int kX0 = 32;
inline constexpr int kRegPA = kX0 + 0; ///< packed A pointer (paper's pA)
inline constexpr int kRegPB = kX0 + 1; ///< packed B pointer (paper's pB)
inline constexpr int kRegPC = kX0 + 2; ///< C pointer
inline constexpr int kRegPAlpha = kX0 + 3; ///< pointer to broadcast alpha
inline constexpr int kNumRegs = kX0 + 4;

enum class Opcode : std::uint8_t {
  LDP,    ///< load a pair of q registers, post-add handled separately
  LDR,    ///< load one q register
  STP,    ///< store a pair of q registers
  STR,    ///< store one q register
  FMUL,   ///< vd = vn * vm (vector)
  FMLA,   ///< vd += vn * vm (vector)
  FMLS,   ///< vd -= vn * vm (vector)
  FMUL_S, ///< vd = vn * vm.lane[0] (by-scalar)
  FMLA_S, ///< vd += vn * vm.lane[0] (by-scalar)
  ADDI,   ///< xd = xn + imm (pointer bump)
  PRFM,   ///< prefetch [xn + imm]
};

/// Is the opcode handled by the load/store unit (the paper's "memory
/// access instruction")?
bool is_memory(Opcode op) noexcept;
/// Is it an FP computation instruction?
bool is_fp(Opcode op) noexcept;

struct Inst {
  Opcode op{};
  /// Registers written (vector or pointer).
  std::vector<int> defs;
  /// Registers read (vector or pointer; memory base included).
  std::vector<int> uses;
  /// Byte offset for memory ops / immediate for ADDI.
  index_t imm = 0;
  /// Element width in bytes (4 = float, 8 = double) for rendering.
  int elem_bytes = 8;

  /// Render as one AArch64 assembly line.
  std::string text() const;
};

using Program = std::vector<Inst>;

/// Render a whole program as a GNU-as compatible .S function body.
std::string render_asm(const Program& prog, const std::string& name);

/// Count memory / FP instructions -- the compute-to-memory-access ratio
/// the kernel-size analysis maximises (paper equations 2-3).
struct InstMix {
  index_t memory = 0;
  index_t fp = 0;
  index_t other = 0;

  double cmar() const {
    return memory == 0 ? 0.0
                       : static_cast<double>(fp) /
                             static_cast<double>(memory);
  }
};
InstMix instruction_mix(const Program& prog);

} // namespace iatf::codegen
