// The install-time Computing Kernel Generator (paper Algorithms 2-3):
// emits the assembly-level instruction stream of a compact GEMM or TRSM
// rectangular micro-kernel from the six abstract templates
// (I / M1 / M2 / E / SUB / SAVE) with ping-pong register double-buffering.
//
// Register allocation follows the paper exactly: A ping-pong sets in
// v0..v_{2mc-1}, B sets in v_{2mc}..v_{2(mc+nc)-1}, the C accumulator in
// v_{2(mc+nc)}..v_{2(mc+nc)+mc*nc-1}.
//
// Deviation (documented in DESIGN.md): for odd K >= 5 Algorithm 3 as
// printed performs K+1 panel loads; we emit the corrected sequence
// I; M2; {M1; M2}*; E (even) / I; M2; {M1; M2}*; M2; E0 (odd), which
// performs exactly K loads while keeping the ping-pong schedule.
#pragma once

#include "iatf/codegen/ir.hpp"

namespace iatf::codegen {

struct GemmKernelSpec {
  int mc = 4;
  int nc = 4;
  index_t k = 4;
  /// Element bytes: 8 (double) or 4 (float). The emitter covers the real
  /// types; complex kernels double every sequence and are executed (not
  /// emitted) by the C++ kernel path.
  int elem_bytes = 8;
  /// Emit the PRFM prefetch of C at kernel entry (paper section 4.3).
  bool prefetch_c = true;
};

/// Emit the full kernel: template sequence for K, then TEMPLATE_SAVE
/// (C = originC + alpha*acc, alpha arriving broadcast in a spare
/// register as in the paper's SAVE).
Program emit_gemm_kernel(const GemmKernelSpec& spec);

/// Emit only TEMPLATE_I (the stream shown in paper Figure 5's left
/// column, in the naive generator order).
Program emit_gemm_template_i(const GemmKernelSpec& spec);

/// Emit the TRSM rectangular-update kernel body (paper equation 4):
/// identical loop structure but accumulators start from B and update via
/// FMLS, with no SAVE-stage alpha multiplies.
Program emit_trsm_rect_kernel(const GemmKernelSpec& spec);

/// Spec for the register-resident triangular solve (paper Algorithm 4):
/// an m x m triangle held entirely in registers, solving an nc-column
/// panel of B in place.
struct TrsmTriKernelSpec {
  int m = 4;
  int nc = 4;
  int elem_bytes = 8;
};

/// Emit the triangular-solve kernel: load the packed triangle
/// (reciprocal diagonal) from pA, the B panel from pC, forward-substitute
/// with FMLS + reciprocal FMUL (no FDIV, per the paper's packing trick),
/// and store X back over B.
Program emit_trsm_tri_kernel(const TrsmTriKernelSpec& spec);

} // namespace iatf::codegen
