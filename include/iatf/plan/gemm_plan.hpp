// Execution plan for compact batched GEMM (paper section 5).
//
// Built once per input descriptor by the Execution Plan Generator and then
// reusable for any number of executions: it fixes the tile decomposition
// (Figure 4(b)), selects the matching computing kernels from the
// install-time registry, decides pack-vs-no-pack per operand
// (Pack Selecter, section 5.2), and sizes the batch slice so packed panels
// stay in L1 (Batch Counter, section 5.1). execute() then runs the
// resulting command queue over every interleave group.
#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "iatf/common/aligned_buffer.hpp"
#include "iatf/common/cache_info.hpp"
#include "iatf/common/status.hpp"
#include "iatf/common/tiling.hpp"
#include "iatf/common/types.hpp"
#include "iatf/kernels/registry.hpp"
#include "iatf/layout/compact.hpp"
#include "iatf/parallel/thread_pool.hpp"
#include "iatf/plan/batch_counter.hpp"
#include "iatf/resilience/kernel_state.hpp"

namespace iatf::plan {

template <class T, int Bytes = 16> class GemmPlan {
public:
  using R = real_t<T>;

  /// One computing-kernel invocation of the command queue; offsets are in
  /// real scalars relative to the (packed or user) group base.
  struct Call {
    kernels::GemmKernelFn<T> fn = nullptr;
    index_t a_off = 0;
    index_t b_off = 0;
    index_t c_off = 0;
    index_t k = 0;
    index_t a_kstride = 0;
    index_t b_kstride = 0;
    index_t b_jstride = 0;
    index_t mc = 0;
    index_t nc = 0;
  };

  GemmPlan(const GemmShape& shape, const CacheInfo& cache,
           const PlanTuning& tuning = {});

  /// Run the plan: C = alpha * op(A) * op(B) + beta * C per matrix.
  /// When `health` is non-null, each group's C block is scanned for
  /// NaN/Inf right after its kernels run, while it is still L1-resident,
  /// and affected lanes are flagged on the recorder. A non-null
  /// `deadline` is checked between L1 batch slices; expiry throws
  /// TimeoutError and leaves C partially updated.
  void execute(const CompactBuffer<T>& a, const CompactBuffer<T>& b,
               CompactBuffer<T>& c, T alpha, T beta,
               HealthRecorder* health = nullptr,
               const Deadline* deadline = nullptr) const;

  /// Multicore variant (the paper's future-work extension): interleave
  /// groups are independent, so the batch is split across the pool's
  /// workers, each running the L1-sized slice loop over its own range
  /// with private packing workspace. Workers own disjoint groups, so
  /// they flag disjoint lanes of `health`. `deadline` is enforced both
  /// by the pool (whole chunks skipped after expiry) and per slice
  /// inside each chunk.
  void execute_parallel(const CompactBuffer<T>& a,
                        const CompactBuffer<T>& b, CompactBuffer<T>& c,
                        T alpha, T beta, ThreadPool& pool,
                        HealthRecorder* health = nullptr,
                        const Deadline* deadline = nullptr) const;

  /// Range variant for the grouped scheduler (sched/group_scheduler):
  /// run only interleave groups [g_begin, g_end) of the batch. Work
  /// items of one segment cover disjoint ranges, so concurrent calls on
  /// the same buffers touch disjoint groups and flag disjoint lanes of
  /// `health`, exactly like execute_parallel's chunks.
  void execute_range(const CompactBuffer<T>& a, const CompactBuffer<T>& b,
                     CompactBuffer<T>& c, T alpha, T beta, index_t g_begin,
                     index_t g_end, HealthRecorder* health = nullptr,
                     const Deadline* deadline = nullptr) const;

  const GemmShape& shape() const noexcept { return shape_; }
  bool packs_a() const noexcept { return pack_a_; }
  bool packs_b() const noexcept { return pack_b_; }
  index_t slice_groups() const noexcept { return slice_groups_; }
  index_t chunk_groups() const noexcept { return chunk_groups_; }
  std::span<const Tile> m_tiles() const noexcept { return m_tiles_; }
  std::span<const Tile> n_tiles() const noexcept { return n_tiles_; }
  std::span<const Call> calls() const noexcept { return calls_; }

  /// The tuning this plan was built with (canary micro-plans must mirror
  /// it so they exercise the same registry kernel set).
  const PlanTuning& tuning() const noexcept { return tuning_; }

  /// Distinct registry kernels the command queue calls (kind 'g').
  std::span<const resilience::KernelUse> kernels_used() const noexcept {
    return kernels_used_;
  }

  /// Cached verification verdict, set by the engine's kernel guard. One
  /// relaxed atomic so the dispatch hot path gates with a single load.
  resilience::PlanVerify verify_state() const noexcept {
    return static_cast<resilience::PlanVerify>(
        verify_.load(std::memory_order_relaxed));
  }
  void set_verify_state(resilience::PlanVerify state) const noexcept {
    verify_.store(static_cast<std::uint8_t>(state),
                  std::memory_order_relaxed);
  }

  /// Compact element stride (scalars per element block) this plan assumes.
  static constexpr index_t element_stride() {
    return kernels::kreg<T, Bytes>::stride;
  }
  /// Interleave width this plan assumes of its buffers.
  static constexpr index_t pack_width() {
    return simd::pack_width_bytes_v<T, Bytes>;
  }

private:
  void validate_buffers(const CompactBuffer<T>& a,
                        const CompactBuffer<T>& b,
                        const CompactBuffer<T>& c) const;
  void run_groups(const CompactBuffer<T>& a, const CompactBuffer<T>& b,
                  CompactBuffer<T>& c, T alpha, T beta, index_t g_begin,
                  index_t g_end, HealthRecorder* health,
                  const Deadline* deadline) const;

  GemmShape shape_;
  PlanTuning tuning_;
  std::vector<Tile> m_tiles_;
  std::vector<Tile> n_tiles_;
  std::vector<Call> calls_;
  std::vector<resilience::KernelUse> kernels_used_;
  mutable std::atomic<std::uint8_t> verify_{0};
  bool pack_a_ = false;
  bool pack_b_ = false;
  index_t pa_group_size_ = 0; ///< packed A panel scalars per group
  index_t pb_group_size_ = 0;
  index_t slice_groups_ = 1;
  index_t chunk_groups_ = 0; ///< >0 = groups per parallel chunk
};

} // namespace iatf::plan
