// Execution plan for compact batched TRSM (paper sections 4.2.2 and 5).
//
// Every mode (Side x Uplo x Trans x Diag) is canonicalised to
// Left/Lower/NoTrans at pack time (see pack/trsm_pack.hpp). The solve then
// follows paper equation (1): the triangle is tiled into diagonal blocks;
// for each column panel of B, earlier solved rows update later blocks
// through the FMLS rectangular kernels and each diagonal block is solved
// by the register-resident triangular kernel. When the whole triangle fits
// in registers (M <= 5 real / 4 complex) the plan degenerates to the
// paper's small-matrix case: a single triangular kernel swept across B's
// column panels.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "iatf/common/aligned_buffer.hpp"
#include "iatf/common/cache_info.hpp"
#include "iatf/common/status.hpp"
#include "iatf/common/tiling.hpp"
#include "iatf/common/types.hpp"
#include "iatf/kernels/registry.hpp"
#include "iatf/layout/compact.hpp"
#include "iatf/pack/trsm_pack.hpp"
#include "iatf/parallel/thread_pool.hpp"
#include "iatf/plan/batch_counter.hpp"
#include "iatf/resilience/kernel_state.hpp"

namespace iatf::plan {

template <class T, int Bytes = 16> class TrsmPlan {
public:
  using R = real_t<T>;

  /// One step of the command queue. Rect steps update block row `row_off`
  /// from solved rows at `x_row_off`; Tri steps solve the block at
  /// `row_off` in place. Offsets are element-block indices within the
  /// canonical B (column `col_off`, row `row_off`).
  struct Step {
    enum class Kind : std::uint8_t { Rect, Tri } kind = Kind::Tri;
    kernels::TrsmRectKernelFn<T> rect_fn = nullptr;
    kernels::TrsmTriKernelFn<T> tri_fn = nullptr;
    index_t pa_off = 0;    ///< scalars into the packed triangle
    index_t col_off = 0;   ///< first column of the panel
    index_t row_off = 0;   ///< first row of block bi
    index_t x_row_off = 0; ///< first row of block bj (Rect only)
    index_t k = 0;         ///< depth of block bj (Rect only)
  };

  TrsmPlan(const TrsmShape& shape, const CacheInfo& cache,
           const PlanTuning& tuning = {});

  /// Solve op(A) X = alpha B (or the Right-side variant), overwriting b.
  /// When `health` is non-null the plan additionally flags numerical
  /// hazards while the data is hot: zero/tiny/NaN diagonals are detected
  /// inside the A-pack (before the reciprocal destroys the evidence) and
  /// each solved group's output is scanned for NaN/Inf right after its
  /// solve, while it is still L1-resident.
  void execute(const CompactBuffer<T>& a, CompactBuffer<T>& b, T alpha,
               HealthRecorder* health = nullptr,
               const Deadline* deadline = nullptr) const;

  /// Multicore variant: independent interleave groups split across the
  /// pool's workers (the paper's future-work extension). Workers own
  /// disjoint groups, so they flag disjoint lanes of `health`.
  /// `deadline` is checked between pool chunks and between L1 batch
  /// slices; expiry throws TimeoutError with B partially overwritten.
  void execute_parallel(const CompactBuffer<T>& a, CompactBuffer<T>& b,
                        T alpha, ThreadPool& pool,
                        HealthRecorder* health = nullptr,
                        const Deadline* deadline = nullptr) const;

  /// Range variant for the grouped scheduler (sched/group_scheduler):
  /// solve only interleave groups [g_begin, g_end) of the batch.
  /// Concurrent calls on the same buffers must cover disjoint ranges.
  void execute_range(const CompactBuffer<T>& a, CompactBuffer<T>& b,
                     T alpha, index_t g_begin, index_t g_end,
                     HealthRecorder* health = nullptr,
                     const Deadline* deadline = nullptr) const;

  const TrsmShape& shape() const noexcept { return shape_; }
  const pack::TrsmCanon& canon() const noexcept { return canon_; }
  bool packs_b() const noexcept { return pack_b_; }
  bool small_path() const noexcept { return blocks_.size() <= 1; }
  index_t slice_groups() const noexcept { return slice_groups_; }
  index_t chunk_groups() const noexcept { return chunk_groups_; }
  std::span<const Tile> blocks() const noexcept { return blocks_; }
  std::span<const Tile> panels() const noexcept { return panels_; }
  std::span<const Step> steps() const noexcept { return steps_; }

  /// The tuning this plan was built with (canary micro-plans must mirror
  /// it so they exercise the same registry kernel set).
  const PlanTuning& tuning() const noexcept { return tuning_; }

  /// Distinct registry kernels the command queue calls (kinds 't'/'r').
  std::span<const resilience::KernelUse> kernels_used() const noexcept {
    return kernels_used_;
  }

  /// Cached verification verdict, set by the engine's kernel guard.
  resilience::PlanVerify verify_state() const noexcept {
    return static_cast<resilience::PlanVerify>(
        verify_.load(std::memory_order_relaxed));
  }
  void set_verify_state(resilience::PlanVerify state) const noexcept {
    verify_.store(static_cast<std::uint8_t>(state),
                  std::memory_order_relaxed);
  }

  static constexpr index_t element_stride() {
    return kernels::kreg<T, Bytes>::stride;
  }
  static constexpr index_t pack_width() {
    return simd::pack_width_bytes_v<T, Bytes>;
  }

private:
  void validate_buffers(const CompactBuffer<T>& a,
                        const CompactBuffer<T>& b) const;
  void solve_group(const R* packed_a, R* bdata) const;
  void run_groups(const CompactBuffer<T>& a, CompactBuffer<T>& b,
                  T alpha, index_t g_begin, index_t g_end,
                  HealthRecorder* health, const Deadline* deadline) const;

  TrsmShape shape_;
  PlanTuning tuning_;
  pack::TrsmCanon canon_;
  std::vector<Tile> blocks_; ///< diagonal blocks over canon_.m
  std::vector<Tile> panels_; ///< column panels over canon_.n
  std::vector<Step> steps_;  ///< full command queue (all panels)
  std::vector<resilience::KernelUse> kernels_used_;
  mutable std::atomic<std::uint8_t> verify_{0};
  bool pack_b_ = false;
  index_t pa_group_size_ = 0;
  index_t pb_group_size_ = 0;
  index_t slice_groups_ = 1;
  index_t chunk_groups_ = 0; ///< >0 = groups per parallel chunk
};

} // namespace iatf::plan
