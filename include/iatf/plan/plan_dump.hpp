// Human-readable execution-plan dumps: the run-time stage's "command
// queue" (paper section 5.3) rendered as text, for debugging, tests and
// the documentation. Shows the tile grid with its selected kernels, the
// pack decisions and the batch-counter slice.
#pragma once

#include <string>

#include "iatf/plan/gemm_plan.hpp"
#include "iatf/plan/trsm_plan.hpp"

namespace iatf::plan {

template <class T, int Bytes>
std::string dump(const GemmPlan<T, Bytes>& plan);

template <class T, int Bytes>
std::string dump(const TrsmPlan<T, Bytes>& plan);

} // namespace iatf::plan
