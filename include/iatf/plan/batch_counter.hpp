// Batch Counter (paper section 5.1).
//
// The run-time stage processes the batch in *slices* of whole interleave
// groups, sized so each slice's packed working set (packed A + packed B +
// the C/B it touches) stays resident in L1d: the matrices are small enough
// to live entirely in L1, so the only tiling decision left is how many of
// them to co-resident-pack per round.
#pragma once

#include "iatf/common/cache_info.hpp"
#include "iatf/common/types.hpp"

namespace iatf::plan {

/// Overrides for ablation studies: force a pack decision or a batch-slice
/// size instead of the input-aware defaults. Negative / zero values keep
/// the framework's own choice.
struct PlanTuning {
  int force_pack_a = -1;      ///< 0 = no-pack, 1 = pack, -1 = auto
  int force_pack_b = -1;      ///< GEMM only
  index_t slice_override = 0; ///< >0 forces groups-per-slice
};

class BatchCounter {
public:
  explicit BatchCounter(CacheInfo cache) : cache_(cache) {}

  /// Groups per slice when one group's working set is `group_bytes`.
  /// Always at least 1 (a single group may legitimately exceed L1; the
  /// kernels still work, just without the cache guarantee).
  index_t groups_per_slice(index_t group_bytes) const {
    if (group_bytes <= 0) {
      return 1;
    }
    const index_t fit =
        static_cast<index_t>(cache_.l1d) / group_bytes;
    return fit < 1 ? 1 : fit;
  }

  const CacheInfo& cache() const noexcept { return cache_; }

private:
  CacheInfo cache_;
};

} // namespace iatf::plan
