// Batch Counter (paper section 5.1).
//
// The run-time stage processes the batch in *slices* of whole interleave
// groups, sized so each slice's packed working set (packed A + packed B +
// the C/B it touches) stays resident in L1d: the matrices are small enough
// to live entirely in L1, so the only tiling decision left is how many of
// them to co-resident-pack per round.
#pragma once

#include "iatf/common/cache_info.hpp"
#include "iatf/common/types.hpp"

namespace iatf::plan {

/// Overrides for ablation studies and the empirical autotuner
/// (iatf/tune): force a pack decision, a batch-slice size, a kernel
/// variant or a parallel chunk granularity instead of the input-aware
/// defaults. Negative / zero values keep the framework's own choice, so
/// a default-constructed PlanTuning reproduces the analytical model
/// exactly. The tuner's persistent records are these fields plus the
/// measured throughput (tune::TuneRecord).
struct PlanTuning {
  int force_pack_a = -1;      ///< 0 = no-pack, 1 = pack, -1 = auto
  int force_pack_b = -1;      ///< GEMM: pack B; TRSM: pack canonical B
  index_t slice_override = 0; ///< >0 forces groups-per-slice
  /// Kernel-variant choice: >0 caps the main-kernel tile rows/cols below
  /// the register-budget limits, selecting a different registry kernel
  /// set (e.g. 2x4 instead of 4x4 tiles). Values above the limits clamp.
  int mc_cap = 0;
  int nc_cap = 0;
  /// >0 sets the interleave groups handed to each thread-pool chunk;
  /// 0 keeps the pool's one-chunk-per-worker split.
  index_t chunk_groups = 0;

  friend bool operator==(const PlanTuning&, const PlanTuning&) = default;
};

class BatchCounter {
public:
  explicit BatchCounter(CacheInfo cache) : cache_(cache) {}

  /// Groups per slice when one group's working set is `group_bytes`.
  /// Always at least 1 (a single group may legitimately exceed L1; the
  /// kernels still work, just without the cache guarantee).
  index_t groups_per_slice(index_t group_bytes) const {
    if (group_bytes <= 0) {
      return 1;
    }
    const index_t fit =
        static_cast<index_t>(cache_.l1d) / group_bytes;
    return fit < 1 ? 1 : fit;
  }

  const CacheInfo& cache() const noexcept { return cache_; }

private:
  CacheInfo cache_;
};

} // namespace iatf::plan
