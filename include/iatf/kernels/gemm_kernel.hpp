// Compact GEMM micro-kernels (paper section 4.2.1, Algorithms 2-3).
//
// Each kernel instance updates the P x mc x nc block of C held by one
// interleave group: acc[i][j] accumulates sum_k A(i0+i,k)*B(k,j0+j) as a
// SIMD vector spanning P matrices, then SAVE applies alpha/beta.
//
// The kernel body is generated from the paper's templates with ping-pong
// double buffering: two register sets for A and for B alternate so the
// loads feeding the *next* k-step issue alongside the FMAs of the current
// one (TEMPLATE_I / M1 / M2 / E / SUB / SAVE).
//
// Deviation from the paper, documented here and in DESIGN.md: Algorithm 3
// as printed loads K+1 k-blocks when K is odd and >= 5 (the final SUB
// re-loads a block the preceding M2 already fetched, reading one block
// past the packed panel). We emit the equivalent corrected sequence
//   I; M2; {M1; M2;}*; E                     (even K)
//   I; M2; {M1; M2;}*; M2'; E0               (odd K)
// where E0 is E computing from register set 0; it performs exactly K loads
// and K multiply steps while preserving the ping-pong schedule.
//
// Strides make the same kernel serve both the packed path and the paper's
// *no-packing* strategy (section 4.4): a packed panel is walked with
// k-stride = mc*P; an unpacked NoTrans operand is walked in place with
// k-stride = rows*P. Rows of A and C are always element-contiguous in
// compact layout, which is what makes no-pack legal whenever one tile
// covers the dimension.
#pragma once

#include "iatf/common/types.hpp"
#include "iatf/kernels/kreg.hpp"

namespace iatf::kernels {

template <class T> struct GemmKernelArgs {
  using R = real_t<T>;
  const R* pa = nullptr; ///< A tile base: element (i0, k=0) of the group
  const R* pb = nullptr; ///< B tile base: element (k=0, j0) of the group
  R* c = nullptr;        ///< C tile base: element (i0, j0) of the group
  index_t k = 0;
  index_t a_kstride = 0; ///< reals between k-blocks of A
  index_t b_kstride = 0; ///< reals between k-blocks of B
  index_t b_jstride = 0; ///< reals between columns within a B k-block
  index_t c_jstride = 0; ///< reals between columns of C
  T alpha{};
  T beta{};
};

template <class T, int Bytes = 16>
using GemmKernelFn = void (*)(const GemmKernelArgs<T>&);

template <class T, int MC, int NC, int Bytes = 16>
void gemm_kernel(const GemmKernelArgs<T>& g) {
  using K = kreg<T, Bytes>;
  using R = real_t<T>;
  constexpr index_t ES = K::stride;

  K acc[MC][NC];
  K a0[MC];
  K a1[MC];
  K b0[NC];
  K b1[NC];

  const R* pa = g.pa;
  const R* pb = g.pb;

  const auto load_a = [&](K (&dst)[MC]) {
    for (int i = 0; i < MC; ++i) {
      dst[i] = K::load(pa + i * ES);
    }
    pa += g.a_kstride;
  };
  const auto load_b = [&](K (&dst)[NC]) {
    for (int j = 0; j < NC; ++j) {
      dst[j] = K::load(pb + j * g.b_jstride);
    }
    pb += g.b_kstride;
  };
  const auto compute_mul = [&](const K (&a)[MC], const K (&b)[NC]) {
    for (int i = 0; i < MC; ++i) {
      for (int j = 0; j < NC; ++j) {
        acc[i][j] = K::mul(a[i], b[j]);
      }
    }
  };
  const auto compute_fma = [&](const K (&a)[MC], const K (&b)[NC]) {
    for (int i = 0; i < MC; ++i) {
      for (int j = 0; j < NC; ++j) {
        acc[i][j] = K::fma(acc[i][j], a[i], b[j]);
      }
    }
  };

  if (g.k <= 0) {
    for (int i = 0; i < MC; ++i) {
      for (int j = 0; j < NC; ++j) {
        acc[i][j] = K::zero();
      }
    }
  } else if (g.k == 1) {
    // TEMPLATE_SUB with an empty accumulator (Algorithm 3, K==1 branch).
    load_a(a0);
    load_b(b0);
    compute_mul(a0, b0);
  } else {
    // TEMPLATE_I: load k-blocks 0 and 1, multiply block 0.
    load_a(a0);
    load_a(a1);
    load_b(b0);
    load_b(b1);
    compute_mul(a0, b0);

    index_t remaining = g.k - 2; // blocks not yet loaded
    while (remaining >= 2) {
      // TEMPLATE_M2: load into set 0, compute set 1.
      load_a(a0);
      load_b(b0);
      compute_fma(a1, b1);
      // TEMPLATE_M1: load into set 1, compute set 0.
      load_a(a1);
      load_b(b1);
      compute_fma(a0, b0);
      remaining -= 2;
    }
    if (remaining == 1) {
      // TEMPLATE_M2 then E0 (E computing from set 0).
      load_a(a0);
      load_b(b0);
      compute_fma(a1, b1);
      compute_fma(a0, b0);
    } else {
      // TEMPLATE_E: compute set 1, no loads.
      compute_fma(a1, b1);
    }
  }

  // TEMPLATE_SAVE: C = alpha*acc + beta*C.
  const bool beta_zero = (g.beta == T{});
  for (int j = 0; j < NC; ++j) {
    R* cp = g.c + j * g.c_jstride;
    for (int i = 0; i < MC; ++i) {
      K out = K::scale(g.alpha, acc[i][j]);
      if (!beta_zero) {
        out = out + K::scale(g.beta, K::load(cp + i * ES));
      }
      out.store(cp + i * ES);
    }
  }
}

} // namespace iatf::kernels
