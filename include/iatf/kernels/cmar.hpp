// CMAR: Computation-to-Memory-Access-Ratio register allocation, made a
// function of the register file instead of a table of constants.
//
// The paper derives its kernel tile shapes by maximizing the number of
// FMAs per register loaded, subject to the accumulator block plus the
// operand vectors fitting in the architectural register file (section
// 4.1 for real types, 4.2.1 for complex, where one logical value is a
// register *pair* and each update costs 4 real FMAs):
//
//   real:     regs(mc, nc) = 2*mc + 2*nc + mc*nc   <= budget
//   complex:  regs(mc, nc) = 4*(mc + nc) + 2*mc*nc <= budget
//
// On the paper's ARMv8 platform budget = 32 NEON registers, giving the
// published 4x4 (real) and 3x2 (complex) micro-kernel shapes. This header
// re-derives that search as constexpr code over an arbitrary budget so
// every (ISA, width) backend computes its own tile shape from its own
// register file -- the input-aware principle extended from problem shape
// to vector width:
//
//   width (bytes)   register file                budget   real    complex
//   16  (SSE2/NEON) paper's ARMv8 model            32      4x4     3x2
//   32  (AVX2)      16 ymm registers               16      3x2     2x1
//   64  (AVX-512)   32 zmm registers               32      4x4     3x2
//
// The 128-bit x86 backend deliberately keeps the ARMv8 budget of 32: it
// is the paper-fidelity baseline and the shapes all existing kernels,
// tests and tuning records were derived for; x86-64's 16 xmm registers
// make the compiler spill two accumulator rows there, which is the
// pre-existing (and golden-verified) behavior of this port. The wider
// x86 backends use their true architectural budgets.
#pragma once

namespace iatf::kernels::cmar {

/// A micro-kernel accumulator tile: mc x nc logical values of C.
struct Tile {
  int mc;
  int nc;

  friend constexpr bool operator==(Tile a, Tile b) {
    return a.mc == b.mc && a.nc == b.nc;
  }
};

/// Registers consumed by an mc x nc real tile: mc*nc accumulators plus
/// double-buffered A-column and B-row operand vectors (paper section 4.1).
constexpr int real_regs(int mc, int nc) { return 2 * mc + 2 * nc + mc * nc; }

/// Registers consumed by an mc x nc complex tile: every logical value is
/// a (real-plane, imag-plane) register pair (paper section 4.2.1).
constexpr int complex_regs(int mc, int nc) {
  return 4 * (mc + nc) + 2 * mc * nc;
}

/// Architectural register budget backing one kernel width. See the table
/// in the header comment for the rationale per width.
constexpr int register_budget(int bytes) {
#if defined(__x86_64__) || defined(__i386__)
  return bytes == 32 ? 16 : 32;
#else
  (void)bytes;
  return 32; // ARMv8: 32 NEON z/q registers at every width.
#endif
}

/// Exhaustive CMAR search: the largest tile whose register footprint fits
/// `budget`, preferring more FMAs per iteration (mc*nc) and breaking ties
/// toward taller tiles (larger mc keeps the B-row reuse of the paper's
/// 4x4 and 3x2 choices). Search space 1..8 per side covers every budget
/// reachable by the instantiated widths.
constexpr Tile derive_tile(bool is_complex, int budget) {
  Tile best{1, 1};
  int best_score = -1;
  for (int mc = 1; mc <= 8; ++mc) {
    for (int nc = 1; nc <= 8; ++nc) {
      const int regs =
          is_complex ? complex_regs(mc, nc) : real_regs(mc, nc);
      if (regs > budget) {
        continue;
      }
      const int score = mc * nc * 16 + mc;
      if (score > best_score) {
        best_score = score;
        best = Tile{mc, nc};
      }
    }
  }
  return best;
}

/// Tile for one (complex?, width) kernel class.
constexpr Tile tile_for_bytes(bool is_complex, int bytes) {
  return derive_tile(is_complex, register_budget(bytes));
}

// The paper's published shapes fall out of the ARMv8 budget -- keep that
// fact machine-checked so a CMAR regression cannot silently change the
// baseline kernel class.
static_assert(derive_tile(false, 32) == Tile{4, 4},
              "CMAR real tile at the ARMv8 budget must be the paper's 4x4");
static_assert(derive_tile(true, 32) == Tile{3, 2},
              "CMAR complex tile at the ARMv8 budget must be the paper's 3x2");

} // namespace iatf::kernels::cmar
