// Kernel registry: the install-time stage's catalogue of generated kernels
// (paper Table 1).
//
// The Computing Kernel Designer instantiates one kernel per (size, dtype)
// combination -- the CMAR-optimal main kernel plus every edge size -- and
// this registry is how the run-time stage's Execution Plan Generator looks
// them up. Limits follow the paper's register-budget analysis
// (section 4.2): 2mc+2nc+mc*nc <= 32 gives the 4x4 real main kernel,
// 4mc+4nc+2mc*nc <= 32 gives 3x2 complex; the register-resident triangular
// solve supports M <= 5 real / M <= 4 complex.
#pragma once

#include "iatf/common/types.hpp"
#include "iatf/kernels/cmar.hpp"
#include "iatf/kernels/gemm_kernel.hpp"
#include "iatf/kernels/trsm_kernel.hpp"

namespace iatf::kernels {

/// Compile-time kernel-size limits for scalar type T. The GEMM tile
/// maxima are the CMAR search (cmar.hpp) evaluated at the paper's ARMv8
/// budget of 32 registers -- the registry's kernel grid is generated up
/// to these shapes at every width, and narrower per-width caps (e.g.
/// AVX2's 16-ymm budget) are applied by the plans, which simply stop
/// *selecting* tiles the width cannot hold in registers.
template <class T> struct KernelLimits {
  static constexpr cmar::Tile kMainTile =
      cmar::derive_tile(is_complex_v<T>, 32);
  static constexpr int gemm_max_mc = kMainTile.mc;
  static constexpr int gemm_max_nc = kMainTile.nc;
  static constexpr int tri_max_m = is_complex_v<T> ? 4 : 5;
  static constexpr int tri_max_nc = is_complex_v<T> ? 2 : 4;
  static constexpr int rect_max_mc = is_complex_v<T> ? 2 : 4;
  static constexpr int rect_max_nc = is_complex_v<T> ? 2 : 4;
  /// Diagonal-block size used by the blocked TRSM path (Table 1 main
  /// kernels: 4x4 real, 2x2 complex).
  static constexpr int trsm_block = is_complex_v<T> ? 2 : 4;
};

// The registry grid was generated for the paper's published shapes; the
// CMAR derivation must keep reproducing them (Table 1).
static_assert(KernelLimits<float>::gemm_max_mc == 4 &&
                  KernelLimits<float>::gemm_max_nc == 4,
              "real GEMM grid must keep the paper's 4x4 main kernel");
static_assert(KernelLimits<std::complex<float>>::gemm_max_mc == 3 &&
                  KernelLimits<std::complex<float>>::gemm_max_nc == 2,
              "complex GEMM grid must keep the paper's 3x2 main kernel");

/// The GEMM tile the plans select at register width `Bytes`: the CMAR
/// search over that width's own register budget, clamped to the generated
/// kernel grid.
template <class T, int Bytes> struct WidthTile {
  static constexpr cmar::Tile kTile =
      cmar::tile_for_bytes(is_complex_v<T>, Bytes);
  static constexpr int mc =
      kTile.mc < KernelLimits<T>::gemm_max_mc ? kTile.mc
                                              : KernelLimits<T>::gemm_max_mc;
  static constexpr int nc =
      kTile.nc < KernelLimits<T>::gemm_max_nc ? kTile.nc
                                              : KernelLimits<T>::gemm_max_nc;
};

/// Function-pointer lookup for the generated kernel set. `Bytes` selects
/// the SIMD register width: 16 is the paper's 128-bit NEON/SSE2
/// configuration, 32 the AVX2 backend, 64 the AVX-512 backend.
template <class T, int Bytes = 16> struct Registry {
  using Limits = KernelLimits<T>;

  /// GEMM kernel for an mc x nc tile; throws iatf::Error when out of range.
  static GemmKernelFn<T> gemm(int mc, int nc);

  /// Triangular-solve kernel for an M x M triangle and NC-column panel.
  static TrsmTriKernelFn<T> tri(int m, int nc);

  /// Rectangular FMLS update kernel for an mc x nc tile.
  static TrsmRectKernelFn<T> rect(int mc, int nc);

  /// Triangular-multiply kernel (TRMM extension), same size grid as tri.
  static TrmmTriKernelFn<T> trmm_tri(int m, int nc);
};

} // namespace iatf::kernels
