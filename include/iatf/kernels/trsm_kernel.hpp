// Compact TRSM micro-kernels (paper section 4.2.2, Algorithm 4).
//
// Two kernel families, both operating on the canonical Left / Lower /
// NoTrans form that the packing stage produces for every mode:
//
//  * trsm_tri_kernel<M, NC>: the triangular solve. The whole M x M
//    triangle of A sits in registers (M(M+1)/2 logical registers, diagonal
//    pre-inverted by the packing kernel so the solve uses only multiplies
//    -- the paper replaces ARM's long-latency FDIV with a reciprocal
//    multiply). Solves an NC-column panel of B in place. For M <= 5 (real;
//    4 complex) this kernel alone handles the whole matrix, the paper's
//    "matrix A can all be placed in registers" case.
//
//  * trsm_rect_kernel<MC, NC>: the rectangular update
//    B_i -= L_ij * X_j (paper equation 4). This is deliberately *not* the
//    GEMM kernel with alpha = -1: accumulators start from B and update via
//    FMLS, saving the M*N extra multiply instructions the GEMM SAVE
//    template would spend scaling by alpha.
#pragma once

#include "iatf/common/types.hpp"
#include "iatf/kernels/kreg.hpp"

namespace iatf::kernels {

/// Arguments for the triangular kernel. The packed triangle `pa` stores
/// rows of the canonical lower triangle in row-major order -- row i
/// contributes i+1 element blocks A(i,0..i) -- with the diagonal block
/// holding 1/a_ii (or exactly 1 for Unit diagonals).
template <class T> struct TrsmTriArgs {
  using R = real_t<T>;
  const R* pa = nullptr; ///< packed triangle, M*(M+1)/2 element blocks
  R* b = nullptr;        ///< B panel base: element (row 0, first column)
  index_t b_jstride = 0; ///< reals between consecutive B columns
};

/// Arguments for the rectangular (FMLS) kernel computing
/// B(i0+i, c) -= sum_k A(i0+i, k0+k) * X(k0+k, c).
template <class T> struct TrsmRectArgs {
  using R = real_t<T>;
  const R* pa = nullptr;  ///< packed block: k-major, MC blocks per k
  const R* x = nullptr;   ///< solved rows: element (k0, first column)
  R* b = nullptr;         ///< target rows: element (i0, first column)
  index_t k = 0;          ///< depth (size of the solved row-block)
  index_t xb_jstride = 0; ///< column stride shared by x and b (same buffer)
};

/// Arguments for the TRMM triangular-multiply kernel (the future-work
/// extension of the paper's section 7: more BLAS-3 functions under the
/// SIMD-friendly layout). The packed triangle holds *plain* values (no
/// reciprocal diagonal).
template <class T> struct TrmmTriArgs {
  using R = real_t<T>;
  const R* pa = nullptr; ///< packed triangle, M*(M+1)/2 element blocks
  R* b = nullptr;        ///< B panel base, overwritten by alpha*L*B
  index_t b_jstride = 0;
  T alpha{};
};

template <class T, int Bytes = 16>
using TrsmTriKernelFn = void (*)(const TrsmTriArgs<T>&);
template <class T, int Bytes = 16>
using TrsmRectKernelFn = void (*)(const TrsmRectArgs<T>&);
template <class T, int Bytes = 16>
using TrmmTriKernelFn = void (*)(const TrmmTriArgs<T>&);

template <class T, int M, int NC, int Bytes = 16>
void trsm_tri_kernel(const TrsmTriArgs<T>& g) {
  using K = kreg<T, Bytes>;
  using R = real_t<T>;
  constexpr index_t ES = K::stride;

  // Load the triangle: a[i][j] for j <= i, diagonal already inverted.
  K a[M][M];
  {
    const R* p = g.pa;
    for (int i = 0; i < M; ++i) {
      for (int j = 0; j <= i; ++j) {
        a[i][j] = K::load(p);
        p += ES;
      }
    }
  }

  // Load the NC-column panel of B, forward-substitute, write X back.
  K x[NC][M];
  for (int c = 0; c < NC; ++c) {
    for (int i = 0; i < M; ++i) {
      x[c][i] = K::load(g.b + c * g.b_jstride + i * ES);
    }
  }
  for (int i = 0; i < M; ++i) {
    for (int j = 0; j < i; ++j) {
      for (int c = 0; c < NC; ++c) {
        x[c][i] = K::fms(x[c][i], a[i][j], x[c][j]);
      }
    }
    for (int c = 0; c < NC; ++c) {
      x[c][i] = K::mul(x[c][i], a[i][i]); // reciprocal multiply, no FDIV
    }
  }
  for (int c = 0; c < NC; ++c) {
    for (int i = 0; i < M; ++i) {
      x[c][i].store(g.b + c * g.b_jstride + i * ES);
    }
  }
}

/// Triangular multiply: B(:, c) <- alpha * tri(A) * B(:, c) for an
/// NC-column panel, with A register-resident. Rows are processed bottom-up
/// so each overwritten row only feeds rows already finished.
template <class T, int M, int NC, int Bytes = 16>
void trmm_tri_kernel(const TrmmTriArgs<T>& g) {
  using K = kreg<T, Bytes>;
  using R = real_t<T>;
  constexpr index_t ES = K::stride;

  K a[M][M];
  {
    const R* p = g.pa;
    for (int i = 0; i < M; ++i) {
      for (int j = 0; j <= i; ++j) {
        a[i][j] = K::load(p);
        p += ES;
      }
    }
  }
  K x[NC][M];
  for (int c = 0; c < NC; ++c) {
    for (int i = 0; i < M; ++i) {
      x[c][i] = K::load(g.b + c * g.b_jstride + i * ES);
    }
  }
  for (int i = M - 1; i >= 0; --i) {
    for (int c = 0; c < NC; ++c) {
      K t = K::mul(a[i][i], x[c][i]);
      for (int j = 0; j < i; ++j) {
        t = K::fma(t, a[i][j], x[c][j]);
      }
      x[c][i] = K::scale(g.alpha, t);
    }
  }
  for (int c = 0; c < NC; ++c) {
    for (int i = 0; i < M; ++i) {
      x[c][i].store(g.b + c * g.b_jstride + i * ES);
    }
  }
}

template <class T, int MC, int NC, int Bytes = 16>
void trsm_rect_kernel(const TrsmRectArgs<T>& g) {
  using K = kreg<T, Bytes>;
  using R = real_t<T>;
  constexpr index_t ES = K::stride;

  K acc[MC][NC];
  for (int c = 0; c < NC; ++c) {
    for (int i = 0; i < MC; ++i) {
      acc[i][c] = K::load(g.b + c * g.xb_jstride + i * ES);
    }
  }

  const R* pa = g.pa;
  for (index_t k = 0; k < g.k; ++k) {
    K av[MC];
    for (int i = 0; i < MC; ++i) {
      av[i] = K::load(pa + i * ES);
    }
    pa += MC * ES;
    K xv[NC];
    for (int c = 0; c < NC; ++c) {
      xv[c] = K::load(g.x + c * g.xb_jstride + k * ES);
    }
    for (int i = 0; i < MC; ++i) {
      for (int c = 0; c < NC; ++c) {
        acc[i][c] = K::fms(acc[i][c], av[i], xv[c]);
      }
    }
  }

  for (int c = 0; c < NC; ++c) {
    for (int i = 0; i < MC; ++i) {
      acc[i][c].store(g.b + c * g.xb_jstride + i * ES);
    }
  }
}

} // namespace iatf::kernels
