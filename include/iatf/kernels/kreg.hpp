// Kernel register abstraction.
//
// The paper's kernels manipulate NEON vector registers holding the same
// element of P interleaved matrices. For real types one logical value is
// one vector register; for complex types it is a *pair* of registers (the
// real-part plane and the imaginary-part plane of the compact layout), and
// each complex multiply-add expands to the paper's 4 real FMA/FMS
// instructions (section 4.2.1: complex kernels need 2x the registers and
// 4x the computation ops per element).
//
// kreg<T, Bytes> hides that difference so the GEMM/TRSM kernel templates
// are written once against fmul / fma / fms / scale / recip.
#pragma once

#include "iatf/common/types.hpp"
#include "iatf/simd/vec.hpp"

namespace iatf::kernels {

template <class T, int Bytes = 16, bool = is_complex_v<T>> struct kreg;

/// Real-type register: one SIMD vector.
template <class T, int Bytes> struct kreg<T, Bytes, false> {
  using R = real_t<T>;
  using V = simd::compact_vec_t<T, Bytes>;
  /// Lanes (matrices interleaved) per logical value.
  static constexpr int pack = V::lanes;
  /// Scalars of R consumed by one load (= compact element stride).
  static constexpr int stride = V::lanes;

  V v;

  static kreg load(const R* p) { return {V::load(p)}; }
  void store(R* p) const { v.store(p); }
  static kreg zero() { return {V::zero()}; }

  static kreg mul(kreg a, kreg b) { return {a.v * b.v}; }
  static kreg fma(kreg acc, kreg a, kreg b) {
    return {V::fma(acc.v, a.v, b.v)};
  }
  static kreg fms(kreg acc, kreg a, kreg b) {
    return {V::fms(acc.v, a.v, b.v)};
  }
  friend kreg operator+(kreg a, kreg b) { return {a.v + b.v}; }

  /// alpha * x for a scalar alpha of type T.
  static kreg scale(T alpha, kreg x) {
    return {V::broadcast(alpha) * x.v};
  }

  /// Lane-wise reciprocal (used by the factorisation extensions; the
  /// BLAS-level kernels receive diagonals pre-inverted by the packers).
  static kreg recip(kreg x) { return {V::broadcast(R(1)) / x.v}; }

  /// Lane-wise square root (mathematically-real diagonals in POTRF).
  static kreg sqrt(kreg x) { return {V::sqrt(x.v)}; }

  /// acc - a*conj(b): the Hermitian rank-update of POTRF (plain fms for
  /// real types).
  static kreg fms_conj(kreg acc, kreg a, kreg b) {
    return fms(acc, a, b);
  }
};

/// Complex-type register: a (real-plane, imag-plane) vector pair.
template <class T, int Bytes> struct kreg<T, Bytes, true> {
  using R = real_t<T>;
  using V = simd::compact_vec_t<T, Bytes>;
  static constexpr int pack = V::lanes;
  static constexpr int stride = 2 * V::lanes;

  V re;
  V im;

  static kreg load(const R* p) {
    return {V::load(p), V::load(p + V::lanes)};
  }
  void store(R* p) const {
    re.store(p);
    im.store(p + V::lanes);
  }
  static kreg zero() { return {V::zero(), V::zero()}; }

  /// a * b: 2 fmul + 1 fms + 1 fma.
  static kreg mul(kreg a, kreg b) {
    kreg r;
    r.re = V::fms(a.re * b.re, a.im, b.im);
    r.im = V::fma(a.re * b.im, a.im, b.re);
    return r;
  }

  /// acc + a*b: the paper's 4-instruction complex update.
  static kreg fma(kreg acc, kreg a, kreg b) {
    kreg r;
    r.re = V::fms(V::fma(acc.re, a.re, b.re), a.im, b.im);
    r.im = V::fma(V::fma(acc.im, a.re, b.im), a.im, b.re);
    return r;
  }

  /// acc - a*b.
  static kreg fms(kreg acc, kreg a, kreg b) {
    kreg r;
    r.re = V::fma(V::fms(acc.re, a.re, b.re), a.im, b.im);
    r.im = V::fms(V::fms(acc.im, a.re, b.im), a.im, b.re);
    return r;
  }

  friend kreg operator+(kreg a, kreg b) {
    return {a.re + b.re, a.im + b.im};
  }

  static kreg scale(T alpha, kreg x) {
    const V ar = V::broadcast(alpha.real());
    const V ai = V::broadcast(alpha.imag());
    kreg r;
    r.re = V::fms(ar * x.re, ai, x.im);
    r.im = V::fma(ar * x.im, ai, x.re);
    return r;
  }

  /// Lane-wise complex reciprocal: conj(x) / |x|^2.
  static kreg recip(kreg x) {
    const V mag2 = V::fma(x.re * x.re, x.im, x.im);
    kreg r;
    r.re = x.re / mag2;
    r.im = (V::zero() - x.im) / mag2;
    return r;
  }

  /// Square root of a register whose value is mathematically real
  /// (Cholesky diagonals): sqrt of the real plane, zero imaginary plane.
  static kreg sqrt(kreg x) { return {V::sqrt(x.re), V::zero()}; }

  /// acc - a*conj(b): 4 real FMA/FMS, the Hermitian update of POTRF.
  static kreg fms_conj(kreg acc, kreg a, kreg b) {
    kreg r;
    r.re = V::fms(V::fms(acc.re, a.re, b.re), a.im, b.im);
    r.im = V::fms(V::fma(acc.im, a.re, b.im), a.im, b.re);
    return r;
  }
};

} // namespace iatf::kernels
