// Multicore execution support -- the paper's stated future work
// ("we would investigate and extend our approach to multicore CPU").
//
// Interleave groups are fully independent, so the natural parallelisation
// is across batch slices: each worker packs and computes its own range of
// groups with its own workspace, preserving the per-core L1 residency the
// Batch Counter establishes. This module provides the pool; the plan
// classes expose execute_parallel() built on it.
//
// Hardening contract (exercised by the fault-injection suite):
//   * every parallel_for invocation carries its own Job state (pending
//     count + first error), so errors never leak between calls and
//     concurrent parallel_for calls on one pool stay independent;
//   * the caller always waits for its queued chunks to drain before
//     returning or unwinding -- a throw from any chunk (including the
//     calling thread's own, or an injected "threadpool.*" fault) cannot
//     deadlock the pool, dangle the chunk function, or poison later calls;
//   * deadline-aware dispatch: a call carrying a Deadline stops launching
//     new chunks once it expires and reports Status::Timeout with
//     partial-work accounting instead of wedging the caller -- the pool
//     itself is never poisoned by a timed-out job (chunks already running
//     finish; only not-yet-started chunks are abandoned).
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "iatf/common/status.hpp"
#include "iatf/common/types.hpp"

namespace iatf {

class ThreadPool {
public:
  /// Spawns `threads` workers (0 = hardware concurrency). A pool of one
  /// worker degenerates to inline execution with no thread launched.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return workers_; }

  /// Run fn(chunk_begin, chunk_end) over [begin, end) split into roughly
  /// equal contiguous chunks, one per worker (plus the calling thread).
  /// Blocks until every chunk finishes; the first exception thrown by any
  /// chunk is rethrown here. The pool itself is unaffected by chunk
  /// failures and remains usable for subsequent calls.
  ///
  /// `grain` > 0 overrides the one-chunk-per-worker split with a target
  /// chunk size: the range is cut into ceil(total / grain) chunks that
  /// workers drain from the shared queue (finer chunks trade dispatch
  /// overhead for load balance -- a tunable the autotuner searches).
  /// `grain` <= 0 keeps the default split.
  ///
  /// A non-null `deadline` is checked between chunks: once expired, not
  /// yet started chunks are skipped (running ones finish) and the call
  /// throws TimeoutError carrying completed/total range items. The first
  /// chunk exception still wins over the timeout report.
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t, index_t)>& fn,
                    index_t grain = 0, const Deadline* deadline = nullptr);

  /// Process-wide pool, created on first use. It is a function-local
  /// static, so its destructor -- which joins every worker thread --
  /// runs during static destruction in reverse construction order:
  /// worker threads are guaranteed joined before any static constructed
  /// earlier (and before atexit handlers registered earlier) is torn
  /// down. Engine::default_engine() relies on this ordering.
  static ThreadPool& global();

private:
  /// Per-invocation state: lives on the caller's stack for the duration
  /// of its parallel_for (the caller never unwinds before pending == 0).
  struct Job {
    const std::function<void(index_t, index_t)>* fn = nullptr;
    const Deadline* deadline = nullptr; ///< optional per-call deadline
    std::size_t pending = 0; ///< queued chunks not yet finished
    std::exception_ptr first_error;
    index_t done_items = 0;    ///< range items completed by finished chunks
    index_t skipped_items = 0; ///< range items abandoned after expiry
    bool timed_out = false;    ///< at least one chunk was skipped
  };

  struct Task {
    Job* job = nullptr;
    index_t begin = 0;
    index_t end = 0;
  };

  void worker_loop();
  void run_task(const Task& task);

  unsigned workers_ = 1;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> queue_;
  bool stop_ = false;
};

} // namespace iatf
