// Crash-consistent health journal: the persistence layer that lets the
// lessons the resilience machinery learns (quarantined kernels, tripped
// breakers, degrade storms) survive process restarts.
//
// The TuningTable already showed the shape persisted runtime state needs
// on this codebase -- versioned line-oriented text, hardware-signature
// keying, advisory flock discipline, atomic tmp+rename writes -- and the
// ledger follows it exactly, with one addition: because health events are
// appended mid-flight (a quarantine discovered during serving must hit
// disk before a crash, not at the next graceful save), every record line
// carries its own CRC-32 so a torn tail from a SIGKILL mid-append is
// detected and truncated away instead of poisoning the whole file.
//
// Record kinds:
//   q <kind> <dtype> <bytes> <m> <n>   kernel quarantine (KernelId)
//   b <slot-hash>                      breaker trip of one class slot
//   d <event-mask>                     degrade event (DegradeEvent bits)
//   w <slot-hash>                      watchdog reclaim of a stalled class
//
// Replay semantics (Engine::set_health_ledger): quarantine records
// re-quarantine their kernels (replay only ever *quarantines* -- a
// ledger cannot mark anything Verified, so "verify never resurrects"
// holds across restarts); breaker-trip and watchdog records seed their
// slots HalfOpen so the restarted process probes the class before
// trusting it again; degrade records are informational (stats only).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "iatf/resilience/resilience.hpp"

namespace iatf::resilience {

/// One journaled health event.
struct LedgerRecord {
  enum class Kind : std::uint8_t {
    KernelQuarantine = 0, ///< `kernel` was quarantined
    BreakerTrip = 1,      ///< class slot `slot` tripped Open
    Degrade = 2,          ///< degrade event bitmask `events`
    WatchdogReclaim = 3,  ///< watchdog reclaimed a stall on slot `slot`
  };

  Kind kind = Kind::Degrade;
  KernelId kernel{};        ///< KernelQuarantine payload
  std::uint64_t slot = 0;   ///< BreakerTrip / WatchdogReclaim payload
  std::uint32_t events = 0; ///< Degrade payload (DegradeEvent bits)

  friend bool operator==(const LedgerRecord&, const LedgerRecord&) = default;
};

/// Outcome of HealthLedger::load. Unlike TuningTable::load, a corrupt
/// *tail* is not fatal: the valid prefix is kept (and rewritten over the
/// damaged file) because losing every lesson to one torn append would
/// defeat the ledger's purpose. Only a damaged header rejects the file.
enum class LedgerLoad {
  Ok = 0,
  Missing,          ///< file absent or unreadable
  Corrupt,          ///< bad magic/version/hw header: loaded as empty
  HardwareMismatch, ///< valid file journaled on different hardware
  Recovered,        ///< corrupt tail truncated; valid prefix loaded
};

const char* to_string(LedgerLoad result) noexcept;

/// Summary counters over the loaded + appended records.
struct LedgerStats {
  std::size_t records = 0;
  std::size_t quarantines = 0;
  std::size_t breaker_trips = 0;
  std::size_t degrades = 0;
  std::size_t watchdog_reclaims = 0;
};

/// Append-only crash-consistent journal of health events. Thread-safe:
/// append() may be called from dispatch threads while stats()/records()
/// are read elsewhere. Cross-process safety follows the TuningTable
/// discipline -- an advisory `<path>.lock` flock around every file
/// operation, tmp + atomic rename for whole-file rewrites.
class HealthLedger {
public:
  static constexpr int kFormatVersion = 1;

  /// Bound to `path`; empty path disables the ledger (append/save become
  /// no-ops, load reports Missing). Hardware defaults to the host
  /// signature; tests may pin another.
  explicit HealthLedger(std::string path = std::string(),
                        std::string hardware = std::string());

  const std::string& path() const noexcept { return path_; }
  const std::string& hardware() const noexcept { return hardware_; }
  bool enabled() const noexcept { return !path_.empty(); }

  /// Journal one event: appends a CRC-checksummed line to the file (under
  /// the file lock, flushed before returning) and records it in memory.
  /// Creates the file with a header on first append. I/O failure is
  /// swallowed -- journaling must never fail the serving path -- but the
  /// in-memory record is kept either way.
  void append(const LedgerRecord& record);

  /// Replace the in-memory records from the file. A corrupt record tail
  /// keeps the valid prefix, rewrites the file to just that prefix
  /// (truncate-and-recover) and reports Recovered. A corrupt header or a
  /// hardware mismatch loads as empty.
  LedgerLoad load();

  /// Compact: rewrite the file from the in-memory records (tmp + atomic
  /// rename under the lock). Returns false on I/O failure or when
  /// disabled, leaving any previous file intact.
  bool save() const;

  std::vector<LedgerRecord> records() const;
  LedgerStats stats() const;
  void clear();

  /// $IATF_HEALTH_LEDGER when set, else empty (ledger disabled). Unlike
  /// the tuning table there is no default filename: processes must opt
  /// in to journaling health state.
  static std::string default_path();

private:
  bool save_locked() const; ///< save() body; caller holds mu_

  std::string path_;
  std::string hardware_;
  mutable std::mutex mu_;
  std::vector<LedgerRecord> records_;
};

/// CRC-32 (IEEE 802.3, reflected) over `text` -- the per-record checksum.
/// Exposed for tests that hand-craft corrupt ledger lines.
std::uint32_t ledger_crc32(const std::string& text) noexcept;

} // namespace iatf::resilience
