// Minimal kernel-trust vocabulary shared by the execution plans and the
// resilience layer (resilience/resilience.hpp).
//
// Plans record which registry kernels their command queues call
// (KernelUse) and carry a cached verification verdict (PlanVerify) so the
// engine's dispatch can gate on one relaxed atomic load. This header is
// deliberately tiny and dependency-free: plan headers include it without
// pulling the engine-side guard/breaker machinery into every plan user.
#pragma once

#include <cstdint>

namespace iatf::resilience {

/// Trust state of one generated kernel (atomic per kernel, owned by the
/// engine's KernelGuard). Untested -> Verified/Quarantined transitions are
/// one-way per kernel until KernelGuard::reset().
enum class KernelState : std::uint8_t {
  Untested = 0,    ///< never canary-checked against iatf::ref
  Verified = 1,    ///< canary output matched the scalar reference
  Quarantined = 2, ///< mismatched or threw on the canary; never dispatched
};

const char* to_string(KernelState state) noexcept;

/// Cached whole-plan verdict derived from the states of every kernel the
/// plan references. Stored on the plan as a relaxed atomic so the hot
/// dispatch path pays one load once the plan is verified.
enum class PlanVerify : std::uint8_t {
  Untested = 0,
  Verified = 1,
  Quarantined = 2, ///< references >= 1 quarantined kernel: ref-route
};

/// One registry kernel referenced by a plan's command queue, identified
/// by its function kind and tile size (dtype and SIMD width are added by
/// the engine, which knows the plan's template parameters).
struct KernelUse {
  char kind = 0; ///< 'g' gemm, 't' trsm-tri, 'r' trsm-rect
  int m = 0;     ///< tile rows ('g'/'r': mc, 't': triangle M)
  int n = 0;     ///< tile cols (nc)

  friend bool operator==(const KernelUse&, const KernelUse&) = default;
};

} // namespace iatf::resilience
