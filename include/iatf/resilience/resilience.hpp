// Serving-hardening primitives behind Engine's self-healing behaviour:
//
//  * KernelGuard -- per-kernel trust ledger. Generated-code trust is
//    earned, not assumed (IAAT's install-time validation argument): each
//    registry kernel starts Untested, is canary-checked against iatf::ref
//    on first dispatch, and a mismatching/throwing kernel is Quarantined
//    so the engine stops routing work through it.
//
//  * CircuitBreaker -- per-descriptor-class degradation breaker. When a
//    class's recent calls keep degrading (fallback repairs, timeouts,
//    quarantine hits), the breaker Opens and routes the class to the
//    scalar ref path, probes after a cooldown (HalfOpen) and restores
//    (Closed) once a probe succeeds. All counting is in CALLS, not wall
//    time, so a seeded fault schedule drives bit-reproducible transitions.
//
//  * OverloadPolicy / RetryPolicy -- admission-control and transient-
//    retry knobs consumed by Engine (set_max_inflight / set_retry_policy).
//
// Everything here is engine-internal machinery with value-type knobs;
// the user-facing surface is Engine's setters plus EngineHealth.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "iatf/resilience/kernel_state.hpp"

namespace iatf::resilience {

/// Engine-wide identity of one generated kernel: the plan-level KernelUse
/// plus the dtype/width the plan was instantiated for.
struct KernelId {
  char kind = 0;  ///< 'g' gemm, 't' trsm-tri, 'r' trsm-rect
  char dtype = 0; ///< 's', 'd', 'c', 'z'
  int bytes = 0;  ///< SIMD register width (16 / 32)
  int m = 0;
  int n = 0;

  friend bool operator==(const KernelId&, const KernelId&) = default;
};

struct KernelIdHash {
  std::size_t operator()(const KernelId& k) const noexcept;
};

/// Thread-safe trust ledger over KernelIds. States only move
/// Untested -> Verified and Untested/Verified -> Quarantined (a later
/// quarantine may demote a kernel that passed its canary but keeps
/// misbehaving); reset() wipes the ledger (tests, self_test re-runs).
class KernelGuard {
public:
  KernelState state(const KernelId& id) const;
  void mark_verified(const KernelId& id);
  void mark_quarantined(const KernelId& id);

  /// True when any of `ids` is quarantined.
  bool any_quarantined(const std::vector<KernelId>& ids) const;

  std::size_t verified_count() const;
  std::size_t quarantined_count() const;

  void reset();

private:
  mutable std::mutex mu_;
  std::unordered_map<KernelId, KernelState, KernelIdHash> states_;
  std::size_t verified_ = 0;
  std::size_t quarantined_ = 0;
};

/// Breaker state of one descriptor-class slot.
enum class BreakerState : std::uint8_t {
  Closed = 0,   ///< normal dispatch; outcomes counted per window
  Open = 1,     ///< ref-route everything for `cooldown` calls
  HalfOpen = 2, ///< one probe runs the fast path; rest still ref-route
};

const char* to_string(BreakerState state) noexcept;

/// Deterministic breaker tuning. Counting is call-based (no wall clock):
/// every `window` calls of a Closed slot form a tumbling window; if
/// `threshold` or more of them degraded (fallback repair, timeout,
/// quarantine routing) the slot Opens for `cooldown` ref-routed calls,
/// then HalfOpens and probes. window == 0 disables the breaker entirely
/// (the default: one relaxed load on the hot path).
struct BreakerConfig {
  int window = 0;    ///< calls per Closed-state evaluation window
  int threshold = 0; ///< degraded calls per window that trip the slot
  int cooldown = 0;  ///< ref-routed calls before the HalfOpen probe

  bool enabled() const noexcept { return window > 0; }
};

/// What the breaker tells the engine to do with one call.
enum class BreakerDecision : std::uint8_t {
  Allow = 0,    ///< run the planned fast path
  Probe = 1,    ///< run the fast path as the HalfOpen probe
  RefRoute = 2, ///< skip the fast path; compute on the scalar reference
};

/// Per-descriptor-class circuit breaker: descriptor classes hash onto a
/// fixed array of slots, each an independent call-counted state machine.
/// All transitions are functions of the call/outcome sequence alone, so
/// a seeded fault schedule replays to bit-identical state trajectories.
class CircuitBreaker {
public:
  static constexpr std::size_t kSlots = 64;

  /// Swap the tuning and reset every slot to Closed with zeroed windows.
  void configure(const BreakerConfig& config);
  BreakerConfig config() const;
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Gate one call of the class hashing to `slot_hash`. Must be paired
  /// with record() for Allow/Probe decisions (RefRoute records itself).
  BreakerDecision admit(std::size_t slot_hash);

  /// Report the outcome of an admitted call: `degraded` covers fallback
  /// repairs, quarantine routing and timeouts. `probe` must be true iff
  /// admit() returned Probe for this call. Returns true when this call
  /// transitioned the slot to Open (a tumbling-window trip or a failed
  /// probe) -- the moment worth journaling to a health ledger.
  bool record(std::size_t slot_hash, bool degraded, bool probe);

  /// Trip the slot Open immediately with `cooldown_calls` of ref-routed
  /// cooldown, bypassing the window count. Used by the serve-layer
  /// watchdog to mark the class of a stalled dispatch. No-op while the
  /// breaker is disabled.
  void force_open(std::size_t slot_hash, int cooldown_calls);

  /// Start the slot Open with an exhausted cooldown so the next admit()
  /// runs the HalfOpen probe: the restart posture for a breaker trip
  /// replayed from a persisted health ledger.
  void seed_half_open(std::size_t slot_hash);

  BreakerState slot_state(std::size_t slot_hash) const;

  /// Slots currently in each state + cumulative transition count.
  struct Summary {
    std::size_t closed = 0;
    std::size_t open = 0;
    std::size_t half_open = 0;
    std::size_t transitions = 0; ///< state changes since configure()
  };
  Summary summary() const;

private:
  struct Slot {
    mutable std::mutex mu;
    BreakerState state = BreakerState::Closed;
    int window_calls = 0;    ///< Closed: calls in the current window
    int window_degraded = 0; ///< Closed: degraded calls in the window
    int open_remaining = 0;  ///< Open: ref-routed calls left to cooldown
    bool probe_inflight = false; ///< HalfOpen: a probe was handed out
  };

  Slot& slot_for(std::size_t slot_hash) noexcept {
    return slots_[slot_hash % kSlots];
  }
  const Slot& slot_for(std::size_t slot_hash) const noexcept {
    return slots_[slot_hash % kSlots];
  }

  std::array<Slot, kSlots> slots_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex config_mu_;
  BreakerConfig config_{};
  std::atomic<std::uint64_t> transitions_{0};
};

/// What Engine does with a call arriving past the in-flight budget.
enum class OverloadPolicy : std::uint8_t {
  Block = 0,        ///< wait for capacity (bounded by the call deadline)
  ShedNewest = 1,   ///< throw OverloadError without touching the pool
  DegradeToRef = 2, ///< admit, but compute on the scalar reference path
};

const char* to_string(OverloadPolicy policy) noexcept;

/// Transient-fault retry tuning. A transient failure (allocation or
/// worker failure under ExecPolicy::Fallback) is retried up to
/// max_attempts total attempts with capped exponential backoff
/// (base_delay, 2*base_delay, ... capped at 64x), never sleeping past
/// the call deadline. max_attempts <= 1 disables retry (the default:
/// failures degrade immediately, the pre-resilience behaviour).
/// jitter_seed != 0 decorrelates concurrent retriers: each sleep is
/// drawn deterministically from (seed, retry-sequence-number) in
/// [delay/2, delay], so coalesced multi-tenant retries stop storming in
/// lockstep while a fixed seed still replays bit-identically.
struct RetryPolicy {
  int max_attempts = 1;
  std::chrono::nanoseconds base_delay{0};
  std::uint64_t jitter_seed = 0;
};

/// The jittered sleep for one retry: a pure function of (delay, seed,
/// seq) via splitmix64, uniform in [delay/2, delay]. seed == 0 returns
/// `delay` unchanged (jitter disabled, the bit-compatible default).
std::chrono::nanoseconds jittered_backoff(std::chrono::nanoseconds delay,
                                          std::uint64_t seed,
                                          std::uint64_t seq) noexcept;

} // namespace iatf::resilience
