// Size-class scheduler for grouped variable-size compact batches.
//
// A grouped call hands the engine `group_count` segments, each with its
// own descriptor (shape, mode, scalars, batch) over compact-layout
// buffers. The scheduler's job is twofold:
//
//  * bin segments by descriptor (ClassKey) so each distinct descriptor
//    resolves exactly one execution plan through the engine's sharded
//    cache -- segments sharing a size class share a plan, and the
//    single-flight machinery collapses concurrent cold misses to one
//    build, exactly as for the fixed-size entry points;
//
//  * cut each segment's interleave groups into work items of a bounded
//    granularity and interleave the items round-robin across segments,
//    so the thread pool alternates between size classes and one huge
//    group cannot starve the small ones queued behind it.
//
// The binning and interleaving are pure functions over descriptors and
// extents, so they are directly unit-testable without any engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "iatf/common/types.hpp"
#include "iatf/factor/factor_plan.hpp"
#include "iatf/layout/compact.hpp"

namespace iatf::sched {

/// One GEMM segment of a grouped call:
/// C = alpha * op_a(A) * op_b(B) + beta * C for every matrix in the
/// segment's batch. Shapes are inferred from the buffers and the ops,
/// exactly like Engine::gemm. Buffers are non-owning.
template <class T> struct GemmSegment {
  Op op_a = Op::NoTrans;
  Op op_b = Op::NoTrans;
  T alpha = T(1);
  T beta = T(0);
  const CompactBuffer<T>* a = nullptr;
  const CompactBuffer<T>* b = nullptr;
  CompactBuffer<T>* c = nullptr;
};

/// One TRSM segment of a grouped call: op_a(A) X = alpha B (Left) or
/// X op_a(A) = alpha B (Right); B is overwritten by X.
template <class T> struct TrsmSegment {
  Side side = Side::Left;
  Uplo uplo = Uplo::Lower;
  Op op_a = Op::NoTrans;
  Diag diag = Diag::NonUnit;
  T alpha = T(1);
  const CompactBuffer<T>* a = nullptr;
  CompactBuffer<T>* b = nullptr;
};

/// One factorisation segment of a grouped call: factor the segment's
/// batch in place with the named routine (uplo/diag apply to Trtri
/// only). Heterogeneous chains -- a Cholesky beside a triangular inverse
/// beside an LU -- bin into separate size classes of one grouped call.
template <class T> struct FactorSegment {
  factor::FactorOp op = factor::FactorOp::Potrf;
  Uplo uplo = Uplo::Lower;
  Diag diag = Diag::NonUnit;
  CompactBuffer<T>* a = nullptr;
};

/// The size-class identity of a segment: everything the engine's plan
/// cache keys on except dtype (which is fixed per grouped call by the
/// template instantiation). Two segments with equal ClassKeys share an
/// execution plan. `bytes` carries the buffers' register width so a
/// coalescing front end never merges requests whose buffers belong to
/// different ISA backends (the kernel class is part of the identity);
/// within one engine grouped call it is redundant with the Bytes
/// template parameter and may stay 0.
struct ClassKey {
  char op = 0; ///< 'g' (GEMM), 't' (TRSM), 'p'/'l'/'i' (factorisations)
  index_t m = 0, n = 0, k = 0;
  std::uint8_t op_a = 0, op_b = 0, side = 0, uplo = 0, diag = 0;
  index_t batch = 0;
  int bytes = 0; ///< register width of the kernel class (0 = unspecified)

  friend bool operator==(const ClassKey&, const ClassKey&) = default;
};

/// The ClassKey of one factorisation descriptor (shared by the engine's
/// factor_grouped binning and by callers pre-binning their own chains).
ClassKey factor_class_key(factor::FactorOp op, index_t m, Uplo uplo,
                          Diag diag, index_t batch);

struct ClassKeyHash {
  std::size_t operator()(const ClassKey& k) const noexcept;
};

/// One size class: the shared descriptor plus the indices (into the
/// caller's segment span) of every segment carrying it.
struct SizeClass {
  ClassKey key;
  std::vector<std::size_t> segments;
};

/// Bin segments by descriptor, preserving first-appearance order of the
/// classes and ascending segment order within each class.
std::vector<SizeClass> bin_by_descriptor(std::span<const ClassKey> keys);

/// One thread-pool work item: a contiguous range of interleave groups of
/// one segment.
struct WorkItem {
  std::size_t segment = 0;
  index_t g_begin = 0;
  index_t g_end = 0;
};

/// Per-segment extent handed to interleave_slices: total interleave
/// groups and the granularity (groups per work item) chosen for it.
struct SegmentExtent {
  index_t groups = 0;
  index_t item_groups = 1;
};

/// Cut every segment into ceil(groups / item_groups) items and emit them
/// round-robin across segments (item 0 of each segment, then item 1 of
/// each, ...), so the pool's shared queue alternates between size classes
/// instead of draining one segment to completion first. Segments with
/// zero groups contribute nothing.
std::vector<WorkItem> interleave_slices(std::span<const SegmentExtent> extents);

/// Groups per work item for a segment of `seg_groups` interleave groups.
/// `tuned_chunk` (> 0) -- the plan's tuned/overridden parallel chunk
/// size -- wins when set. Otherwise aim for ~2 items per worker over
/// this segment alone (so the tail imbalance stays small even in the
/// degenerate one-segment case) but never cut finer than one L1 batch
/// slice (`slice_groups`), which bounds the per-item packing-workspace
/// amortisation loss. The result is clamped to [1, max(seg_groups, 1)].
index_t item_granularity(index_t seg_groups, index_t slice_groups,
                         index_t tuned_chunk, index_t workers);

} // namespace iatf::sched
