// The install-time Kernel Optimizer (paper section 4.3, Figure 5).
//
// Takes the kernel generator's naive instruction order -- all loads, then
// all FMULs -- and produces a placement that (1) separates dependent
// instructions by at least their producer latency and (2) interleaves
// loads between computation instructions so the FP pipes hide the load
// latency, exactly the two steps the paper describes. Implemented as
// dependence-aware list scheduling against the target machine model.
#pragma once

#include "iatf/codegen/ir.hpp"
#include "iatf/pipesim/machine_model.hpp"

namespace iatf::sched {

/// Dependence edge kinds, exposed for tests.
enum class DepKind : std::uint8_t { Raw, War, Waw, Mem };

struct DepEdge {
  int from = 0;
  int to = 0;
  int latency = 0;
  DepKind kind = DepKind::Raw;
};

/// Build the dependence graph of a program: register RAW/WAR/WAW plus
/// conservative ordering between overlapping same-base memory accesses
/// when at least one is a store. (Distinct base pointers are assumed
/// non-aliasing -- packed panels and C never overlap.)
std::vector<DepEdge> build_dependences(const codegen::Program& prog);

/// List-schedule the program for the machine model. The result contains
/// the same instructions in an order that preserves every dependence.
codegen::Program schedule(const codegen::Program& prog,
                          const pipesim::MachineModel& model);

} // namespace iatf::sched
