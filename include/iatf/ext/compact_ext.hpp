// Compact-layout extensions beyond the paper's GEMM/TRSM -- the future
// work its conclusion names: "the kernel design and optimization of other
// BLAS functions under the SIMD-friendly data layout". These mirror the
// routines Intel's compact BLAS/LAPACK exposes (mkl_?trmm_compact,
// mkl_?getrfnp_compact, mkl_?potrf_compact):
//
//  * compact_trmm     -- triangular matrix multiply, all 16 mode
//                        combinations via the same canonicalisation as
//                        TRSM, register-resident triangular kernels plus
//                        GEMM rectangular updates.
//  * compact_getrf_np -- unpivoted LU factorisation in place (L\U with
//                        unit lower diagonal), vectorised across the P
//                        interleaved matrices.
//  * compact_potrf    -- Cholesky factorisation of the lower triangle in
//                        place (A = L L^H), Hermitian for complex types.
//  * compact_getrs_np -- convenience solve using a getrf_np factorisation
//                        (two compact TRSMs).
//
// Note on padding: like TRSM, the factorisations divide by diagonal
// entries; call pad_identity() on buffers whose batch is not a multiple
// of the pack width so padded lanes stay finite.
//
// All routines are width-dispatching: the kernel class (128/256/512-bit
// backend) follows the buffers' pack width, as with the engine entry
// points. Unsupported widths are refused with Status::Unsupported.
#pragma once

#include "iatf/layout/compact.hpp"

namespace iatf::ext {

/// B = alpha * op(tri(A)) * B (Left) or alpha * B * op(tri(A)) (Right),
/// in place on B, for every matrix in the batch.
template <class T>
void compact_trmm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                  const CompactBuffer<T>& a, CompactBuffer<T>& b);

/// Unpivoted LU in place: each m x m matrix becomes L\U (unit lower
/// diagonal implied). The caller guarantees factorisability without
/// pivoting (e.g. diagonally dominant blocks), as with LAPACK's getrfnp.
template <class T> void compact_getrf_np(CompactBuffer<T>& a);

/// Cholesky in place on the lower triangle: A = L * L^H. Only the lower
/// triangle is read or written; the input must be positive definite
/// (padded lanes: use pad_identity()).
template <class T> void compact_potrf(CompactBuffer<T>& a);

/// Solve A X = B for every matrix using a compact_getrf_np factorisation
/// of A: forward substitution with the unit-lower L then back
/// substitution with U. B is overwritten by X.
template <class T>
void compact_getrs_np(const CompactBuffer<T>& lu, CompactBuffer<T>& b);

} // namespace iatf::ext
