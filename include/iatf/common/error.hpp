// Error type and argument-checking helpers.
//
// All user-facing entry points validate their descriptors and throw
// iatf::Error on misuse; internal invariants use IATF_ASSERT which compiles
// to a real check in all build types (the cost is negligible next to the
// packing/compute work it guards).
//
// Every Error carries a Status code from common/status.hpp so the C API
// and the engine's degradation logic can classify failures without
// parsing messages. IATF_CHECK throws Status::InvalidArg; use
// IATF_CHECK_AS for the other classes.
#pragma once

#include <stdexcept>
#include <string>

#include "iatf/common/status.hpp"

namespace iatf {

/// Exception thrown on invalid arguments or unsupported configurations.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what,
                 Status status = Status::InvalidArg)
      : std::runtime_error(what), status_(status) {}

  /// Stable classification of the failure (mirrors the C status codes).
  Status status() const noexcept { return status_; }

private:
  Status status_ = Status::InvalidArg;
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line,
                              const std::string& message,
                              Status status = Status::InvalidArg);
} // namespace detail

/// Validate a user-supplied condition; throws iatf::Error when violated.
#define IATF_CHECK(cond, message)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::iatf::detail::throw_error(__FILE__, __LINE__, (message));            \
    }                                                                        \
  } while (false)

/// IATF_CHECK with an explicit Status classification.
#define IATF_CHECK_AS(cond, status, message)                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::iatf::detail::throw_error(__FILE__, __LINE__, (message), (status));  \
    }                                                                        \
  } while (false)

/// Internal invariant; also throws (never UB) so property tests can probe
/// failure paths safely.
#define IATF_ASSERT(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::iatf::detail::throw_error(__FILE__, __LINE__,                        \
                                  "internal invariant violated: " #cond,     \
                                  ::iatf::Status::Internal);                 \
    }                                                                        \
  } while (false)

} // namespace iatf
