// Error type and argument-checking helpers.
//
// All user-facing entry points validate their descriptors and throw
// iatf::Error on misuse; internal invariants use IATF_ASSERT which compiles
// to a real check in all build types (the cost is negligible next to the
// packing/compute work it guards).
#pragma once

#include <stdexcept>
#include <string>

namespace iatf {

/// Exception thrown on invalid arguments or unsupported configurations.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line,
                              const std::string& message);
} // namespace detail

/// Validate a user-supplied condition; throws iatf::Error when violated.
#define IATF_CHECK(cond, message)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::iatf::detail::throw_error(__FILE__, __LINE__, (message));            \
    }                                                                        \
  } while (false)

/// Internal invariant; also throws (never UB) so property tests can probe
/// failure paths safely.
#define IATF_ASSERT(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::iatf::detail::throw_error(__FILE__, __LINE__,                        \
                                  "internal invariant violated: " #cond);    \
    }                                                                        \
  } while (false)

} // namespace iatf
