// Error type and argument-checking helpers.
//
// All user-facing entry points validate their descriptors and throw
// iatf::Error on misuse; internal invariants use IATF_ASSERT which compiles
// to a real check in all build types (the cost is negligible next to the
// packing/compute work it guards).
//
// Every Error carries a Status code from common/status.hpp so the C API
// and the engine's degradation logic can classify failures without
// parsing messages. IATF_CHECK throws Status::InvalidArg; use
// IATF_CHECK_AS for the other classes.
#pragma once

#include <stdexcept>
#include <string>

#include "iatf/common/status.hpp"

namespace iatf {

/// Exception thrown on invalid arguments or unsupported configurations.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what,
                 Status status = Status::InvalidArg)
      : std::runtime_error(what), status_(status) {}

  /// Stable classification of the failure (mirrors the C status codes).
  Status status() const noexcept { return status_; }

private:
  Status status_ = Status::InvalidArg;
};

/// Thrown when a per-call Deadline expires before the work completes.
/// Carries partial-work accounting: `completed` of `total` work items
/// (interleave-group slices for plan execution, range items for
/// ThreadPool::parallel_for) finished before expiry. The operation's
/// output is partially updated; callers either retry without a deadline
/// or discard the result. Never converted to a fallback recompute: the
/// guarded engine rethrows Timeout like InvalidArg, since a scalar
/// reference retry could only take longer.
class TimeoutError : public Error {
public:
  TimeoutError(index_t completed, index_t total)
      : Error("iatf: deadline exceeded (" + std::to_string(completed) +
                  " of " + std::to_string(total) + " work items completed)",
              Status::Timeout),
        completed_(completed), total_(total) {}

  index_t completed() const noexcept { return completed_; }
  index_t total() const noexcept { return total_; }

private:
  index_t completed_ = 0;
  index_t total_ = 0;
};

/// Thrown when admission control sheds a call: the engine's in-flight
/// budget (Engine::set_max_inflight) was exhausted and the overload
/// policy said to reject rather than queue or degrade. The call touched
/// neither its output buffers nor the thread pool; retrying later (once
/// load drains) is always safe.
class OverloadError : public Error {
public:
  OverloadError(std::size_t inflight, std::size_t max_inflight)
      : Error("iatf: call shed by admission control (" +
                  std::to_string(inflight) + " in flight, budget " +
                  std::to_string(max_inflight) + ")",
              Status::Overloaded) {}
};

/// Delivered (via std::future / completion callback, never thrown into
/// the submitter) for requests a serving front-end discarded before
/// execution: Server::stop() cancels everything still queued, and a
/// submission arriving after drain()/stop() is refused with this error.
/// The request's output buffers were never touched; distinct from
/// OverloadError (resource pressure, retry later) because retrying a
/// cancelled request against a stopping server is pointless.
class CancelledError : public Error {
public:
  explicit CancelledError(const std::string& what)
      : Error(what, Status::Cancelled) {}
};

/// Delivered (via std::future / completion callback) for requests whose
/// dispatch stalled past the watchdog budget: the supervisor reclaimed
/// the request, tripped the descriptor class's breaker and respawned the
/// dispatcher. The output buffers may have been partially written by the
/// wedged execution; re-submitting with fresh inputs is required.
class WatchdogError : public Error {
public:
  explicit WatchdogError(const std::string& what)
      : Error(what, Status::Watchdog) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line,
                              const std::string& message,
                              Status status = Status::InvalidArg);
} // namespace detail

/// Validate a user-supplied condition; throws iatf::Error when violated.
#define IATF_CHECK(cond, message)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::iatf::detail::throw_error(__FILE__, __LINE__, (message));            \
    }                                                                        \
  } while (false)

/// IATF_CHECK with an explicit Status classification.
#define IATF_CHECK_AS(cond, status, message)                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::iatf::detail::throw_error(__FILE__, __LINE__, (message), (status));  \
    }                                                                        \
  } while (false)

/// Internal invariant; also throws (never UB) so property tests can probe
/// failure paths safely.
#define IATF_ASSERT(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::iatf::detail::throw_error(__FILE__, __LINE__,                        \
                                  "internal invariant violated: " #cond,     \
                                  ::iatf::Status::Internal);                 \
    }                                                                        \
  } while (false)

} // namespace iatf
