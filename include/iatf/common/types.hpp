// Core enums, scalar-type traits and problem descriptors shared by every
// IATF module.
//
// The paper's run-time stage keys its execution plans on the "input matrix
// properties (Matrix Size, Transposed/Non-Transposed, Left/Right,
// Lower/Upper, Unit/NonUnit)" -- these are the types that carry those
// properties through the framework.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <type_traits>

namespace iatf {

using index_t = std::int64_t;

/// Transposition mode of an input operand (BLAS `trans` parameter).
enum class Op : std::uint8_t {
  NoTrans = 0,   ///< use A as stored
  Trans = 1,     ///< use A^T
  ConjTrans = 2, ///< use conj(A)^T (equals Trans for real types)
};

/// Which side the triangular matrix appears on in TRSM: AX=B or XA=B.
enum class Side : std::uint8_t { Left = 0, Right = 1 };

/// Which triangle of A is referenced.
enum class Uplo : std::uint8_t { Lower = 0, Upper = 1 };

/// Whether the diagonal of A is assumed to be all ones.
enum class Diag : std::uint8_t { NonUnit = 0, Unit = 1 };

const char* to_string(Op op) noexcept;
const char* to_string(Side side) noexcept;
const char* to_string(Uplo uplo) noexcept;
const char* to_string(Diag diag) noexcept;

namespace detail {
template <class T> struct scalar_traits;

template <> struct scalar_traits<float> {
  using real_type = float;
  static constexpr bool is_complex = false;
  static constexpr const char* blas_prefix = "s";
};
template <> struct scalar_traits<double> {
  using real_type = double;
  static constexpr bool is_complex = false;
  static constexpr const char* blas_prefix = "d";
};
template <> struct scalar_traits<std::complex<float>> {
  using real_type = float;
  static constexpr bool is_complex = true;
  static constexpr const char* blas_prefix = "c";
};
template <> struct scalar_traits<std::complex<double>> {
  using real_type = double;
  static constexpr bool is_complex = true;
  static constexpr const char* blas_prefix = "z";
};
} // namespace detail

/// Underlying real type of a (possibly complex) BLAS scalar type.
template <class T> using real_t = typename detail::scalar_traits<T>::real_type;

/// True for std::complex<float> / std::complex<double>.
template <class T>
inline constexpr bool is_complex_v = detail::scalar_traits<T>::is_complex;

/// Conventional single-letter BLAS prefix: s, d, c or z.
template <class T>
inline constexpr const char* blas_prefix_v =
    detail::scalar_traits<T>::blas_prefix;

/// conj() that is the identity for real types (std::conj would promote
/// a real argument to complex).
template <class T> constexpr T conj_if_complex(T v) noexcept {
  if constexpr (is_complex_v<T>) {
    return std::conj(v);
  } else {
    return v;
  }
}

/// Number of scalar FLOPs attributed to one multiply-add on type T.
/// A complex multiply-add costs 4 multiplies + 4 adds of real scalars.
template <class T> constexpr double flops_per_madd() noexcept {
  return is_complex_v<T> ? 8.0 : 2.0;
}

/// Descriptor of one compact-batched GEMM problem:
///   C = alpha * op(A) * op(B) + beta * C     for `batch` matrices.
struct GemmShape {
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;
  Op op_a = Op::NoTrans;
  Op op_b = Op::NoTrans;
  index_t batch = 0;

  friend bool operator==(const GemmShape&, const GemmShape&) = default;
};

/// Descriptor of one compact-batched TRSM problem:
///   op(A) * X = alpha * B   (Left)   or   X * op(A) = alpha * B   (Right)
/// where A is triangular and B (m x n) is overwritten by X.
struct TrsmShape {
  index_t m = 0;
  index_t n = 0;
  Side side = Side::Left;
  Uplo uplo = Uplo::Lower;
  Op op_a = Op::NoTrans;
  Diag diag = Diag::NonUnit;
  index_t batch = 0;

  /// Dimension of the triangular matrix A (m for Left, n for Right).
  index_t a_dim() const noexcept { return side == Side::Left ? m : n; }

  friend bool operator==(const TrsmShape&, const TrsmShape&) = default;
};

std::string to_string(const GemmShape& s);
std::string to_string(const TrsmShape& s);

/// Total scalar FLOPs of a batched GEMM (standard BLAS accounting).
template <class T> double gemm_flops(const GemmShape& s) noexcept {
  return flops_per_madd<T>() * static_cast<double>(s.m) *
         static_cast<double>(s.n) * static_cast<double>(s.k) *
         static_cast<double>(s.batch);
}

/// Total scalar FLOPs of a batched TRSM (standard BLAS accounting:
/// n*m^2 madds for Left, m*n^2 for Right).
template <class T> double trsm_flops(const TrsmShape& s) noexcept {
  const double a = static_cast<double>(s.a_dim());
  const double other =
      static_cast<double>(s.side == Side::Left ? s.n : s.m);
  return flops_per_madd<T>() / 2.0 * a * a * other *
         static_cast<double>(s.batch);
}

} // namespace iatf
