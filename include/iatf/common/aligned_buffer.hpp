// Cache-line aligned, RAII-owned flat buffer used for compact-layout
// storage and packed panels. SIMD loads in the micro-kernels assume at
// least 16-byte alignment; we align to 64 bytes so buffers also start on a
// cache-line boundary (the packing kernels stream whole lines).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

#include "iatf/common/error.hpp"
#include "iatf/common/fault_inject.hpp"

namespace iatf {

inline constexpr std::size_t kBufferAlignment = 64;

template <class T> class AlignedBuffer {
public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { resize(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocate to hold `count` value-initialised elements.
  void resize(std::size_t count) {
    release();
    if (count == 0) {
      return;
    }
    IATF_FAULT_POINT("alloc", ::iatf::Status::AllocFailure);
    const std::size_t bytes =
        round_up(count * sizeof(T), kBufferAlignment);
    void* p = std::aligned_alloc(kBufferAlignment, bytes);
    if (p == nullptr) {
      throw std::bad_alloc{};
    }
    data_ = static_cast<T*>(p);
    size_ = count;
    for (std::size_t i = 0; i < count; ++i) {
      new (data_ + i) T{};
    }
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  std::span<T> span() noexcept { return {data_, size_}; }
  std::span<const T> span() const noexcept { return {data_, size_}; }

private:
  static std::size_t round_up(std::size_t v, std::size_t a) noexcept {
    return (v + a - 1) / a * a;
  }

  void release() noexcept {
    if (data_ != nullptr) {
      for (std::size_t i = 0; i < size_; ++i) {
        data_[i].~T();
      }
      std::free(data_);
      data_ = nullptr;
      size_ = 0;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

} // namespace iatf
