// Deterministic fault injection for exercising the degradation paths.
//
// Production code marks its failure-prone operations with
// IATF_FAULT_POINT(site, status); tests arm a site by name and the next
// hit(s) throw fault::FaultInjected carrying that status. The whole
// framework costs one relaxed atomic-bool load per fault point while
// disarmed, so the instrumented hot paths (workspace allocation, registry
// lookup, thread-pool dispatch) keep their Fast-policy performance.
//
// Sites are plain strings so new ones need no central registry:
//   "alloc"               AlignedBuffer workspace/storage allocation
//   "registry.gemm/.tri/.rect/.trmm"   kernel-registry lookups
//   "plan.gemm" / "plan.trsm"          engine plan construction
//   "threadpool.dispatch" / "threadpool.worker"   parallel_for chunks
//   "threadpool.stall"    stall (not throw) a parallel_for chunk, for
//                         exercising deadline-aware dispatch
//   "plan.stall"          stall a plan build inside the engine's
//                         single-flight section (verifies one build per
//                         descriptor under concurrent misses)
//   "cache.evict"         throw during plan-cache LRU publish (the built
//                         plan must still be returned, just not cached)
//   "sched.bin" / "sched.interleave"   grouped-call size-class binning and
//                         work-item interleaving (sched/group_scheduler)
//   "resilience.verify"   kernel canary verification (a hit quarantines
//                         the kernel under test)
//   "resilience.probe"    circuit-breaker HalfOpen probe execution (a hit
//                         re-opens the breaker)
//   "serve.enqueue"       Server admission, after counters but before the
//                         request queues (a hit fails only that request)
//   "serve.coalesce"      dispatcher coalesce scan (a hit stops widening
//                         the batch; what was collected still dispatches)
//   "serve.dispatch"      dispatcher execution entry (a hit fails a single
//                         request, or splits a coalesced batch into
//                         per-request retries)
//   "ledger.append"       HealthLedger::append record write (a hit drops
//                         that record; the in-memory state is unaffected)
//   "ledger.save"         HealthLedger::save compaction write
//   "ledger.load"         HealthLedger::load parse entry
//   "watchdog.stall"      stall (not throw) the dispatcher inside
//                         execute_batch, for exercising the serve-layer
//                         watchdog's stalled-dispatch reclamation
//
// Arming is process-global (tests that arm faults must not run the same
// site concurrently from unrelated tests); fault::ScopedFault disarms on
// scope exit so a failing ASSERT cannot leak an armed site into the next
// test.
#pragma once

#include <atomic>
#include <string>

#include "iatf/common/error.hpp"

namespace iatf::fault {

/// Thrown by an armed fault point. `site()` identifies the injection
/// location; `status()` (inherited) classifies what real failure the
/// injection simulates.
class FaultInjected : public Error {
public:
  FaultInjected(std::string site, Status status)
      : Error("iatf: injected fault at " + site, status),
        site_(std::move(site)) {}

  const std::string& site() const noexcept { return site_; }

private:
  std::string site_;
};

namespace detail {
extern std::atomic<bool> g_enabled;
/// Slow path: called only while at least one site is armed.
bool should_fail(const char* site);
} // namespace detail

/// True while any site is armed (one relaxed load; the fast-path guard).
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arm `site`: skip the next `skip` hits, then fail the following `count`
/// hits. Re-arming an armed site replaces its schedule.
void arm(const char* site, int skip = 0, int count = 1);

/// Disarm one site / every site.
void disarm(const char* site);
void disarm_all();

/// Sleep-based fault for deadline testing: while `site` is armed, each
/// scheduled hit blocks the calling thread for `ms` milliseconds instead
/// of throwing -- it simulates a stalled worker rather than a failed one.
/// Costs one relaxed atomic load while disarmed, like IATF_FAULT_POINT.
void stall_if_armed(const char* site, int ms = 25);

/// Times an armed `site` was evaluated since arm() (0 if not armed).
int hits(const char* site);

/// RAII suppression for canary runs: while a thread holds a
/// SuppressionScope, every armed site EXCEPT those prefixed "resilience."
/// evaluates to "pass" on that thread without consuming its schedule or
/// counting a hit. The engine's kernel verification wraps its canary
/// plans in this scope so a test that armed, say, one "alloc" failure for
/// the call under test cannot have it swallowed by a background canary --
/// and a good kernel is never quarantined by an unrelated injected fault.
/// The "resilience." carve-out keeps the verification/probe paths
/// themselves testable. Nestable; thread-local.
struct SuppressionScope {
  SuppressionScope() noexcept;
  ~SuppressionScope();
  SuppressionScope(const SuppressionScope&) = delete;
  SuppressionScope& operator=(const SuppressionScope&) = delete;
};

/// RAII arming for tests: disarms every site on destruction so a thrown
/// assertion cannot leave faults armed for subsequent tests.
struct ScopedFault {
  explicit ScopedFault(const char* site, int skip = 0, int count = 1) {
    arm(site, skip, count);
  }
  ~ScopedFault() { disarm_all(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

} // namespace iatf::fault

/// Mark a failure-prone operation. Near-zero cost while disarmed; throws
/// fault::FaultInjected(site, status) when the armed schedule says so.
#define IATF_FAULT_POINT(site, status)                                       \
  do {                                                                       \
    if (::iatf::fault::enabled() &&                                          \
        ::iatf::fault::detail::should_fail(site)) {                          \
      throw ::iatf::fault::FaultInjected((site), (status));                  \
    }                                                                        \
  } while (false)
