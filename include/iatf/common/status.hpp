// Guarded-execution primitives: stable status codes, the execution-policy
// knob, and the per-call numerical-health report.
//
// The paper's run-time stage assumes well-formed inputs -- TRSM packing
// takes reciprocals of the diagonal, and any unsupported descriptor or
// allocation failure surfaces as a throw mid-batch. This layer is what a
// production deployment adds around that fast path: callers pick how much
// checking they want (ExecPolicy), the engine reports what it saw
// (BatchHealth), and degradation events are recorded instead of lost.
//
// ExecPolicy::Fast is the contract-preserving default: no snapshots, no
// scans, no overhead -- exactly the seed behaviour.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "iatf/common/types.hpp"

namespace iatf {

/// Stable error taxonomy shared by the C++ exceptions and the C API
/// (values mirror the C `iatf_status` enum exactly).
enum class Status : int {
  Ok = 0,
  InvalidArg = 1,       ///< malformed descriptor or mismatched buffers
  Unsupported = 2,      ///< valid request the build cannot serve
  AllocFailure = 3,     ///< workspace or buffer allocation failed
  NumericalHazard = 4,  ///< NaN/Inf output or singular TRSM diagonal
  Internal = 5,         ///< invariant violation or unexpected exception
  Timeout = 6,          ///< per-call deadline expired before completion
  Overloaded = 7,       ///< admission control shed the call (in-flight cap)
  Cancelled = 8,        ///< queued work cancelled by Server::stop()/shutdown
  Watchdog = 9,         ///< stalled dispatch reclaimed by the server watchdog
};

const char* to_string(Status status) noexcept;

/// How much guarding the engine wraps around plan execution.
enum class ExecPolicy : std::uint8_t {
  Fast = 0,     ///< zero-overhead: no checks, failures throw (seed behaviour)
  Check = 1,    ///< run the fast path, then report hazards in BatchHealth
  Fallback = 2, ///< Check + retry affected matrices on the reference path
};

const char* to_string(ExecPolicy policy) noexcept;

/// Absolute per-call deadline carried through dispatch (engine entry ->
/// plan execution -> thread-pool chunks). Expiry is checked between batch
/// slices and between pool chunks -- never mid-kernel -- so an expired
/// call stops at the next slice boundary and surfaces Status::Timeout
/// with partial-work accounting instead of wedging the caller. Outputs of
/// a timed-out call are partially updated (indeterminate).
struct Deadline {
  std::chrono::steady_clock::time_point at{};

  /// Deadline `budget` from now.
  static Deadline in(std::chrono::nanoseconds budget) {
    return Deadline{std::chrono::steady_clock::now() + budget};
  }

  bool expired() const noexcept {
    return std::chrono::steady_clock::now() >= at;
  }
};

/// Degradation events a guarded call can record (bitmask).
enum class DegradeEvent : std::uint32_t {
  None = 0,
  UnsupportedPlan = 1u << 0, ///< plan construction rejected the descriptor
  MissingKernel = 1u << 1,   ///< registry had no kernel for a tile size
  AllocFailure = 1u << 2,    ///< packing workspace allocation failed
  WorkerFailure = 1u << 3,   ///< a thread-pool chunk threw
  NumericalHazard = 1u << 4, ///< non-finite output or singular diagonal
  QuarantinedKernel = 1u << 5, ///< a verify-failed kernel forced the ref path
  BreakerOpen = 1u << 6,       ///< the degradation breaker routed to ref
  Overloaded = 1u << 7,        ///< admission control degraded the call to ref
};

constexpr DegradeEvent operator|(DegradeEvent a, DegradeEvent b) noexcept {
  return static_cast<DegradeEvent>(static_cast<std::uint32_t>(a) |
                                   static_cast<std::uint32_t>(b));
}
constexpr DegradeEvent operator&(DegradeEvent a, DegradeEvent b) noexcept {
  return static_cast<DegradeEvent>(static_cast<std::uint32_t>(a) &
                                   static_cast<std::uint32_t>(b));
}
constexpr DegradeEvent& operator|=(DegradeEvent& a, DegradeEvent b) noexcept {
  return a = a | b;
}
constexpr bool has_event(DegradeEvent set, DegradeEvent e) noexcept {
  return (set & e) != DegradeEvent::None;
}

/// Per-call health report returned by the guarded engine entry points.
/// Counts are matrices (batch lanes), not scalars; `first_*` fields are
/// the lowest affected batch index, or -1 when the count is zero.
struct BatchHealth {
  index_t batch = 0;           ///< lanes the call covered
  index_t nonfinite = 0;       ///< lanes whose output contains NaN/Inf
  index_t first_nonfinite = -1;
  index_t singular = 0;        ///< lanes with a zero/tiny/NaN TRSM diagonal
  index_t first_singular = -1;
  index_t fallback = 0;        ///< lanes recomputed on the reference path
  index_t first_fallback = -1;
  DegradeEvent events = DegradeEvent::None;

  /// No hazards seen and no degradation needed.
  bool clean() const noexcept {
    return nonfinite == 0 && singular == 0 && fallback == 0 &&
           events == DegradeEvent::None;
  }
  /// At least one lane did not run on the planned fast path.
  bool degraded() const noexcept {
    return fallback != 0 || events != DegradeEvent::None;
  }

  void merge(const BatchHealth& other) noexcept;
};

/// Hazard sink the plans write into while the data is hot. One recorder
/// serves one guarded call; lanes are flag slots so concurrent workers
/// (which own disjoint interleave groups, hence disjoint lanes) can note
/// hazards without synchronisation.
class HealthRecorder {
public:
  explicit HealthRecorder(index_t batch)
      : singular_(static_cast<std::size_t>(batch), 0),
        nonfinite_(static_cast<std::size_t>(batch), 0) {}

  void note_singular(index_t lane) noexcept {
    singular_[static_cast<std::size_t>(lane)] = 1;
  }
  void note_nonfinite(index_t lane) noexcept {
    nonfinite_[static_cast<std::size_t>(lane)] = 1;
  }

  const std::vector<char>& singular_lanes() const noexcept {
    return singular_;
  }
  const std::vector<char>& nonfinite_lanes() const noexcept {
    return nonfinite_;
  }

  /// True when lane `l` was flagged for any hazard.
  bool flagged(index_t lane) const noexcept {
    const auto i = static_cast<std::size_t>(lane);
    return singular_[i] != 0 || nonfinite_[i] != 0;
  }

  /// Fold the flags into counts and first-indices on `health`.
  void fill(BatchHealth& health) const noexcept;

private:
  std::vector<char> singular_;
  std::vector<char> nonfinite_;
};

/// Scan one interleave group's element blocks for NaN/Inf and flag the
/// affected lanes. `elems` is rows*cols, `pw` the interleave width,
/// `planes` 1 (real) or 2 (complex), `lanes` the live lane count of this
/// group (excludes padding) and `lane_base` the batch index of lane 0.
template <class R>
void scan_nonfinite_group(const R* gdata, index_t elems, index_t pw,
                          int planes, index_t lanes, index_t lane_base,
                          HealthRecorder& health) {
  const index_t es = pw * planes;
  for (index_t e = 0; e < elems; ++e) {
    const R* blk = gdata + e * es;
    for (index_t lane = 0; lane < lanes; ++lane) {
      bool bad = !std::isfinite(blk[lane]);
      if (planes == 2) {
        bad = bad || !std::isfinite(blk[pw + lane]);
      }
      if (bad) {
        health.note_nonfinite(lane_base + lane);
      }
    }
  }
}

} // namespace iatf
