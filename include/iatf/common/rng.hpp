// Deterministic random fills for tests and benchmarks.
//
// The paper initialises matrices "by filling with random floating-point
// numbers (0 to 1)" following the testing scheme of Jia et al. [13]; we do
// the same with a fixed-seed generator so runs are reproducible.
#pragma once

#include <complex>
#include <cstdint>
#include <random>
#include <span>

#include "iatf/common/types.hpp"

namespace iatf {

class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x1a7fu) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  template <class Real> Real uniform(Real lo = 0, Real hi = 1) {
    std::uniform_real_distribution<Real> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Fill with uniform values in [0,1) (both components for complex).
  template <class T> void fill(std::span<T> out) {
    using R = real_t<T>;
    for (T& v : out) {
      if constexpr (is_complex_v<T>) {
        v = T(uniform<R>(), uniform<R>());
      } else {
        v = uniform<R>();
      }
    }
  }

  /// Fill so values are safe as TRSM diagonals: magnitude bounded away
  /// from zero (in [0.5, 1.5)), avoiding ill-conditioned solves in tests.
  template <class T> void fill_diag_safe(std::span<T> out) {
    using R = real_t<T>;
    for (T& v : out) {
      const R mag = uniform<R>(R(0.5), R(1.5));
      if constexpr (is_complex_v<T>) {
        v = T(mag, uniform<R>(R(-0.25), R(0.25)));
      } else {
        v = mag;
      }
    }
  }

  std::mt19937_64& engine() noexcept { return engine_; }

private:
  std::mt19937_64 engine_;
};

} // namespace iatf
