// Tile-decomposition policy (paper Figure 4(b)).
//
// A dimension of the small matrix is split into chunks no larger than the
// main kernel size, preferring medium chunks over width-1 remainders: the
// paper tiles 15 as 4+4+4+3 (kernels 4x4 / 4x3 / 3x4 / 3x3) instead of
// leaving tiny edge kernels that waste SIMD lanes and registers.
#pragma once

#include <vector>

#include "iatf/common/types.hpp"

namespace iatf {

/// One chunk of a tiled dimension: [offset, offset+size).
struct Tile {
  index_t offset = 0;
  index_t size = 0;

  friend bool operator==(const Tile&, const Tile&) = default;
};

/// Split `extent` into chunks of at most `max_chunk` (>=1), avoiding a
/// trailing chunk of size 1 whenever `extent >= 2` allows it.
///
/// Guarantees: chunks are contiguous, cover [0, extent) exactly, each size
/// is in [1, max_chunk], and a size-1 chunk only appears when extent == 1
/// or max_chunk == 1.
std::vector<Tile> tile_dimension(index_t extent, index_t max_chunk);

} // namespace iatf
