// Cache hierarchy description used by the run-time stage's Batch Counter
// (paper section 5.1): the number of matrix groups packed per batch slice
// is chosen so the packed working set stays resident in L1d.
#pragma once

#include <cstddef>

namespace iatf {

/// Sizes (bytes) of the data-cache levels relevant to the batch counter.
struct CacheInfo {
  std::size_t l1d = 64 * 1024;  ///< Kunpeng 920 default (paper Table 2)
  std::size_t l2 = 512 * 1024;  ///< Kunpeng 920 default (paper Table 2)

  /// Detect from the running machine (sysfs on Linux); any level that
  /// cannot be detected keeps the Kunpeng 920 default above so the
  /// framework's tuning decisions mirror the paper's platform.
  static CacheInfo detect();

  /// The paper's evaluation platform, for reproducible tuning decisions.
  static CacheInfo kunpeng920() { return CacheInfo{}; }
};

} // namespace iatf
