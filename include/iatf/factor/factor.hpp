// Convenience front end for the iatf::factor subsystem: persistent packed
// layouts and fused batched factorisations over the process-wide default
// Engine (the factor analogue of iatf/core/compact_blas.hpp).
//
// The intended chained-call shape:
//
//   auto p = iatf::compact_pack(src, n, n, ld, stride, batch); // convert once
//   iatf::compact_gemm(..., p_f, p, ..., p_tmp);               // interleaved
//   iatf::compact_potrf_batch(p_tmp);                          //   end-to-end
//   iatf::compact_trsm(..., p_tmp, p_rhs);                     //   ...
//   iatf::compact_unpack(p_rhs, dst, ld, stride);              // convert once
//
// Each handle call skips the per-call pack/unpack round trip entirely;
// EngineStats::packed_reuse_hits / packed_repacks make the saving
// observable.
#pragma once

#include "iatf/core/engine.hpp"
#include "iatf/factor/packed_handle.hpp"
#include "iatf/layout/compact.hpp"

namespace iatf {

/// Convert a strided column-major batch into a persistent PackedHandle
/// (one counted conversion; see Engine::pack).
template <class T>
factor::PackedHandle<T> compact_pack(const T* src, index_t rows, index_t cols,
                                     index_t ld, index_t matrix_stride,
                                     index_t batch) {
  return Engine::default_engine().pack<T>(src, rows, cols, ld, matrix_stride,
                                          batch);
}

/// Convert a handle's contents out to a strided column-major batch.
template <class T>
void compact_unpack(const factor::PackedHandle<T>& handle, T* dst, index_t ld,
                    index_t matrix_stride) {
  Engine::default_engine().unpack<T>(handle, dst, ld, matrix_stride);
}

/// GEMM / TRSM over packed handles (plans cached under the packed layout
/// state; C's / B's epoch bumped).
template <class T>
BatchHealth compact_gemm(Op op_a, Op op_b, T alpha,
                         const factor::PackedHandle<T>& a,
                         const factor::PackedHandle<T>& b, T beta,
                         factor::PackedHandle<T>& c) {
  return Engine::default_engine().gemm<T>(op_a, op_b, alpha, a, b, beta, c);
}

template <class T>
BatchHealth compact_trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                         const factor::PackedHandle<T>& a,
                         factor::PackedHandle<T>& b) {
  return Engine::default_engine().trsm<T>(side, uplo, op_a, diag, alpha, a,
                                          b);
}

/// Batched Cholesky of the lower triangle in place (guarded: non-SPD
/// lanes are flagged / ref-repaired, never thrown).
template <class T> BatchHealth compact_potrf_batch(CompactBuffer<T>& a) {
  return Engine::default_engine().potrf_batch<T>(a);
}
template <class T>
BatchHealth compact_potrf_batch(factor::PackedHandle<T>& a) {
  return Engine::default_engine().potrf_batch<T>(a);
}

/// Batched unpivoted LU in place for diagonally-dominant batches.
template <class T> BatchHealth compact_getrf_nopiv_batch(CompactBuffer<T>& a) {
  return Engine::default_engine().getrf_nopiv_batch<T>(a);
}
template <class T>
BatchHealth compact_getrf_nopiv_batch(factor::PackedHandle<T>& a) {
  return Engine::default_engine().getrf_nopiv_batch<T>(a);
}

/// Batched in-place triangular inverse of the `uplo` triangle.
template <class T>
BatchHealth compact_trtri_batch(Uplo uplo, Diag diag, CompactBuffer<T>& a) {
  return Engine::default_engine().trtri_batch<T>(uplo, diag, a);
}
template <class T>
BatchHealth compact_trtri_batch(Uplo uplo, Diag diag,
                                factor::PackedHandle<T>& a) {
  return Engine::default_engine().trtri_batch<T>(uplo, diag, a);
}

/// Grouped heterogeneous factorisation chains; see Engine::factor_grouped.
template <class T>
std::vector<BatchHealth>
compact_factor_grouped(std::span<const sched::FactorSegment<T>> segments) {
  return Engine::default_engine().factor_grouped<T>(segments);
}

} // namespace iatf
