// Persistent packed layouts (iatf::factor, DESIGN.md section 13).
//
// Every engine call used to round-trip pack -> compute -> unpack, so a
// chained small-matrix pipeline (Cholesky solve, Kalman update) paid the
// interleave conversion once per call for operands that never left the
// engine. A PackedHandle makes the interleaved compact layout a
// first-class persistent format: Engine::pack() converts a strided
// column-major batch exactly once, the handle is then passed to
// GEMM/TRSM/factorisation entry points in place of raw pointers, and the
// data stays interleaved end-to-end until Engine::unpack() is asked for
// column-major output. The engine counts every conversion it performs
// (EngineStats::packed_repacks) and every handle operand it consumed
// without one (EngineStats::packed_reuse_hits), so layout-propagation
// effectiveness is directly observable.
//
// Epoch rule: the handle carries a monotonically increasing epoch tag.
// Every engine routine that writes through the handle (GEMM/TRSM output
// operands, in-place factorisations, repack) bumps it; read-only uses do
// not. The epoch is how callers holding several views of one pipeline
// distinguish "same buffer, new contents" without comparing data -- and
// how a serving layer can detect that a cached unpacked mirror of the
// handle has gone stale.
#pragma once

#include <cstdint>
#include <utility>

#include "iatf/common/error.hpp"
#include "iatf/layout/compact.hpp"

namespace iatf::factor {

/// Owning, move-only handle over a batch held in the interleaved compact
/// layout, plus its descriptor (rows/cols/batch/pack width, dtype via the
/// template parameter) and the mutation epoch. Create via Engine::pack()
/// (conversion, counted) or Engine::adopt_packed() (zero-copy adoption of
/// an already-compact buffer).
template <class T> class PackedHandle {
public:
  PackedHandle() = default;
  explicit PackedHandle(CompactBuffer<T> buf)
      : buf_(std::move(buf)), valid_(true) {}

  PackedHandle(PackedHandle&& other) noexcept
      : buf_(std::move(other.buf_)), epoch_(other.epoch_),
        valid_(other.valid_) {
    other.valid_ = false;
    other.epoch_ = 0;
  }
  PackedHandle& operator=(PackedHandle&& other) noexcept {
    if (this != &other) {
      buf_ = std::move(other.buf_);
      epoch_ = other.epoch_;
      valid_ = other.valid_;
      other.valid_ = false;
      other.epoch_ = 0;
    }
    return *this;
  }
  PackedHandle(const PackedHandle&) = delete;
  PackedHandle& operator=(const PackedHandle&) = delete;

  /// False for default-constructed or moved-from / released handles;
  /// passing an invalid handle to any engine routine throws InvalidArg.
  bool valid() const noexcept { return valid_; }

  index_t rows() const noexcept { return buf_.rows(); }
  index_t cols() const noexcept { return buf_.cols(); }
  index_t batch() const noexcept { return buf_.batch(); }
  index_t pack_width() const noexcept { return buf_.pack_width(); }

  /// Mutation tag: bumped by every engine routine that writes through
  /// the handle (factorisations, GEMM/TRSM output operands, repack).
  std::uint64_t epoch() const noexcept { return epoch_; }
  void bump_epoch() noexcept { ++epoch_; }

  /// The underlying interleaved storage. Mutating it directly is allowed
  /// (the handle owns it) but bypasses the epoch tag -- call
  /// bump_epoch() afterwards if other code keys on it.
  CompactBuffer<T>& buffer() noexcept { return buf_; }
  const CompactBuffer<T>& buffer() const noexcept { return buf_; }

  /// Give up ownership of the compact buffer; the handle becomes
  /// invalid. The zero-conversion escape hatch for code that wants the
  /// raw CompactBuffer API back.
  CompactBuffer<T> release() {
    IATF_CHECK(valid_, "PackedHandle::release: invalid handle");
    valid_ = false;
    epoch_ = 0;
    return std::move(buf_);
  }

private:
  CompactBuffer<T> buf_;
  std::uint64_t epoch_ = 0;
  bool valid_ = false;
};

} // namespace iatf::factor
