// Execution plans for fused batched compact factorisations.
//
// Three routines over batches of small (<= 33 x 33) matrices held in the
// interleaved compact layout, each vectorised across the P interleaved
// lanes exactly like the GEMM/TRSM kernels:
//
//  * Potrf   -- blocked right-looking Cholesky of the lower triangle,
//  * GetrfNp -- blocked right-looking unpivoted LU (diagonally-dominant
//               batches; partial pivoting would break lane lockstep),
//  * Trtri   -- in-place triangular inverse (either triangle, either
//               diagonal mode).
//
// The blocked factorisations are composed as panel-factor + compact-TRSM
// + compact-GEMM-update steps that never leave the packed layout between
// steps (DESIGN.md section 13 documents the blocking scheme); Trtri is a
// single register sweep -- at these sizes every element is already
// resident, so panels would add bookkeeping without reuse.
//
// Hazard contract: when a HealthRecorder is supplied, every pivot /
// diagonal is scanned before its reciprocal or square root. A bad pivot
// (non-positive for Cholesky; zero, subnormal or non-finite otherwise)
// flags the lane as singular and is substituted with 1 so the remaining
// lanes of the group factor unperturbed -- the flagged lane's contents
// are unspecified and the engine's Fallback policy restores them (see
// Engine::potrf_batch). Without a recorder (ExecPolicy::Fast) no scan
// runs and a bad pivot yields Inf/NaN confined to its own lane.
#pragma once

#include <cstdint>
#include <vector>

#include "iatf/common/status.hpp"
#include "iatf/common/types.hpp"
#include "iatf/layout/compact.hpp"
#include "iatf/resilience/resilience.hpp"

namespace iatf::factor {

enum class FactorOp : std::uint8_t { Potrf, GetrfNp, Trtri };

/// The full descriptor of one batched factorisation: everything the
/// engine's plan cache keys on except dtype/width (fixed per template
/// instantiation) and layout state (keyed by the engine).
struct FactorShape {
  FactorOp op = FactorOp::Potrf;
  index_t m = 0;              ///< matrix order
  Uplo uplo = Uplo::Lower;    ///< Trtri only (Potrf is lower by definition)
  Diag diag = Diag::NonUnit;  ///< Trtri only
  index_t batch = 0;

  friend bool operator==(const FactorShape&, const FactorShape&) = default;
};

/// Immutable execution plan for one FactorShape. Construction derives
/// the panel width; execute() runs the whole batch group by group. The
/// plan dispatches no registry kernels (the steps are straight-line
/// vector code over kreg), so it participates in the engine's plan cache
/// but not in kernel verify-and-quarantine.
template <class T, int Bytes = 16> class FactorPlan {
public:
  explicit FactorPlan(const FactorShape& shape);

  const FactorShape& shape() const noexcept { return shape_; }

  /// Panel width of the blocked factorisations (m for the unblocked
  /// small-m regime, 0 for Trtri which does not panel).
  index_t panel_width() const noexcept { return nb_; }

  /// Factor every matrix of `a` in place. `rec` (nullable) enables the
  /// pivot hazard scan; `deadline` (nullable) is checked at interleave-
  /// group boundaries and expiry throws TimeoutError with the completed
  /// group count. Requires a to be shape.m x shape.m with the kernel
  /// pack width.
  void execute(CompactBuffer<T>& a, HealthRecorder* rec,
               const Deadline* deadline) const;

  /// Floating-point operations for the whole batch (throughput
  /// reporting; the usual n^3/3-family counts).
  double flops() const noexcept;

  /// Registry kernels dispatched by this plan: none (the factor steps
  /// are inlined vector loops, not generated kernels). Present so the
  /// plan satisfies the engine cache's verification interface.
  const std::vector<resilience::KernelUse>& kernels_used() const noexcept {
    return kernels_;
  }

private:
  FactorShape shape_;
  index_t nb_ = 0;
  std::vector<resilience::KernelUse> kernels_;
};

} // namespace iatf::factor
