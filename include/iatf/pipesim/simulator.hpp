// Cycle-approximate in-order dual-issue pipeline simulator.
//
// This is the evaluation substrate standing in for the Kunpeng 920
// hardware: it scores an instruction stream under the machine model's
// issue rules and latencies, which is exactly the quantity the paper's
// kernel optimizer minimises when it reorders instructions (Figure 5).
// The simulator is deliberately in-order: the optimizer's *static*
// placement is what creates (or removes) the stalls being measured.
#pragma once

#include <vector>

#include "iatf/codegen/ir.hpp"
#include "iatf/pipesim/machine_model.hpp"

namespace iatf::pipesim {

struct SimResult {
  index_t cycles = 0;        ///< total cycles to issue & drain the stream
  index_t issue_cycles = 0;  ///< cycles consumed issuing (last issue + 1)
  index_t stall_cycles = 0;  ///< issue cycles in which nothing issued
  std::vector<index_t> issue_cycle; ///< per-instruction issue cycle

  /// FP throughput achieved by the stream, as a fraction of the machine's
  /// FP issue capacity over the simulated interval.
  double fp_utilisation = 0.0;
};

/// Simulate an instruction stream. Register dependencies are honoured via
/// a ready-time scoreboard; issue is strictly in program order, up to
/// issue_width per cycle subject to the per-port caps.
SimResult simulate(const codegen::Program& prog, const MachineModel& model);

} // namespace iatf::pipesim
