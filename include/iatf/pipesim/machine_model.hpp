// Machine models for the pipeline simulator and the list scheduler.
//
// The Kunpeng 920 model encodes the issue behaviour the paper reports in
// section 6.3: the core "can only issue one memory access instruction and
// one calculation instruction at the same time, or simultaneously issue
// two calculation instructions for single-precision floating-point
// numbers". Combined with 128-bit FMA that reproduces Table 2's peaks:
// 2.6 GHz * 1 FMA * 2 lanes * 2 flops = 10.4 GFLOPS FP64 and
// 2.6 GHz * 2 FMA * 4 lanes * 2 flops = 41.6 GFLOPS FP32.
#pragma once

#include <string>

#include "iatf/codegen/ir.hpp"

namespace iatf::pipesim {

struct MachineModel {
  std::string name = "kunpeng920";
  int issue_width = 2;
  /// Memory ops issued per cycle.
  int mem_per_cycle = 1;
  /// FP ops issued per cycle for 4-byte (SP) elements.
  int fp_per_cycle_sp = 2;
  /// FP ops issued per cycle for 8-byte (DP) elements.
  int fp_per_cycle_dp = 1;
  /// Integer ALU ops (pointer bumps) per cycle.
  int alu_per_cycle = 2;

  int load_latency = 4;  ///< L1 hit
  int fp_latency = 4;    ///< FMUL/FMLA/FMLS result latency
  int alu_latency = 1;
  int store_latency = 1;
  int prefetch_latency = 1;

  double freq_ghz = 2.6;

  static MachineModel kunpeng920() { return MachineModel{}; }

  /// An idealised single-issue in-order core, used by ablation benches to
  /// show how much of the kernel-optimizer benefit comes from dual issue.
  static MachineModel scalar_inorder() {
    MachineModel m;
    m.name = "scalar-inorder";
    m.issue_width = 1;
    m.fp_per_cycle_sp = 1;
    m.fp_per_cycle_dp = 1;
    m.alu_per_cycle = 1;
    return m;
  }

  int latency(codegen::Opcode op) const;
  int fp_per_cycle(int elem_bytes) const {
    return elem_bytes == 4 ? fp_per_cycle_sp : fp_per_cycle_dp;
  }
};

} // namespace iatf::pipesim
