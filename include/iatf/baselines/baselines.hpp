// Comparison baselines standing in for the libraries the paper evaluates
// against (section 6). The originals are proprietary or x86/ARM binary
// distributions, so each is re-implemented from scratch with the same
// *structural* behaviour the paper's comparison isolates:
//
//  * loop_*   -- "looping calls to the OpenBLAS interface": a competent
//    general-purpose column-major GEMM/TRSM invoked once per matrix, with
//    per-call argument validation and dispatch, no cross-matrix reuse.
//    This reproduces why generic libraries lose on tiny matrices: SIMD
//    vectors span one matrix's column (mostly idle lanes for n < width),
//    every call pays edge handling, and nothing is amortised.
//
//  * batch_*  -- "ARMPL batched GEMM": the same per-matrix kernels behind
//    a batch interface that validates once and amortises dispatch across
//    the group, still on the standard layout (the paper notes ARMPL/
//    LIBXSMM batch interfaces "are parallelized between matrices and do
//    not use SIMD-friendly data layout").
//
//  * smallspec_* -- "LIBXSMM": small-matrix-specialised kernels on the
//    standard layout, fully unrolled in K blocks and vectorised down the
//    M dimension with masked edges. Mirrors LIBXSMM's real limitations in
//    the paper: real types only and no TRSM.
//
// All baselines operate on plain strided column-major batches (matrix b
// at base + b*matrix_stride), i.e. the layout an application would hand
// to those libraries.
#pragma once

#include "iatf/common/types.hpp"

namespace iatf::baselines {

/// Single-matrix column-major GEMM used by the loop/batch baselines:
/// blocked, autovectorised axpy-style update -- a fair stand-in for a
/// general-purpose BLAS on matrices this small.
template <class T>
void tuned_gemm(Op op_a, Op op_b, index_t m, index_t n, index_t k, T alpha,
                const T* a, index_t lda, const T* b, index_t ldb, T beta,
                T* c, index_t ldc);

/// Single-matrix column-major TRSM (all modes) used by the loop baseline.
template <class T>
void tuned_trsm(Side side, Uplo uplo, Op op_a, Diag diag, index_t m,
                index_t n, T alpha, const T* a, index_t lda, T* b,
                index_t ldb);

/// Baseline 1: loop around per-matrix GEMM calls (OpenBLAS-loop
/// analogue). Matrix b of each operand lives at base + b*stride.
template <class T>
void loop_gemm(Op op_a, Op op_b, index_t m, index_t n, index_t k, T alpha,
               const T* a, index_t lda, index_t stride_a, const T* b,
               index_t ldb, index_t stride_b, T beta, T* c, index_t ldc,
               index_t stride_c, index_t batch);

/// Baseline 1 for TRSM: loop around per-matrix TRSM calls.
template <class T>
void loop_trsm(Side side, Uplo uplo, Op op_a, Diag diag, index_t m,
               index_t n, T alpha, const T* a, index_t lda,
               index_t stride_a, T* b, index_t ldb, index_t stride_b,
               index_t batch);

/// Baseline 2: batch interface with amortised validation/dispatch
/// (ARMPL-batch analogue); same standard-layout kernels.
template <class T>
void batch_gemm(Op op_a, Op op_b, index_t m, index_t n, index_t k, T alpha,
                const T* a, index_t lda, index_t stride_a, const T* b,
                index_t ldb, index_t stride_b, T beta, T* c, index_t ldc,
                index_t stride_c, index_t batch);

/// Baseline 3: small-matrix-specialised batch GEMM (LIBXSMM analogue).
/// Instantiated for float and double only; no TRSM (matching the
/// library's coverage as noted in the paper).
template <class T>
void smallspec_gemm(Op op_a, Op op_b, index_t m, index_t n, index_t k,
                    T alpha, const T* a, index_t lda, index_t stride_a,
                    const T* b, index_t ldb, index_t stride_b, T beta,
                    T* c, index_t ldc, index_t stride_c, index_t batch);

} // namespace iatf::baselines
