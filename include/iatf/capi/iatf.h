/* C89-compatible interface to the IATF compact batched BLAS.
 *
 * Mirrors the shape of vendor compact interfaces (e.g. MKL's
 * mkl_?gemm_compact): buffers hold a batch of fixed-size small matrices
 * in the SIMD-friendly interleaved layout behind an opaque handle, and
 * the compute routines run the input-aware execution plans of the C++
 * core. Four type variants are exposed with the conventional s/d/c/z
 * prefixes; complex scalars are passed as (re, im) pairs.
 *
 * Every routine returns IATF_STATUS_OK (0) on success and a stable
 * iatf_status code on failure; iatf_last_error() returns a thread-local
 * message for the most recent failure on the calling thread.
 */
#ifndef IATF_CAPI_IATF_H
#define IATF_CAPI_IATF_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Library version as "major.minor.patch" (static storage; never
 * free()). The wire protocol version is independent (see DESIGN.md
 * section 16). */
const char* iatf_version(void);

typedef enum iatf_op { IATF_NOTRANS = 0, IATF_TRANS = 1, IATF_CONJTRANS = 2 } iatf_op;
typedef enum iatf_side { IATF_LEFT = 0, IATF_RIGHT = 1 } iatf_side;
typedef enum iatf_uplo { IATF_LOWER = 0, IATF_UPPER = 1 } iatf_uplo;
typedef enum iatf_diag { IATF_NONUNIT = 0, IATF_UNIT = 1 } iatf_diag;

/* Stable error codes returned by every routine (mirrors the C++
 * iatf::Status enum value-for-value). */
typedef enum iatf_status {
  IATF_STATUS_OK = 0,
  IATF_STATUS_INVALID_ARG = 1,      /* malformed descriptor or buffers */
  IATF_STATUS_UNSUPPORTED = 2,      /* valid request this build can't serve */
  IATF_STATUS_ALLOC_FAILURE = 3,    /* buffer/workspace allocation failed */
  IATF_STATUS_NUMERICAL_HAZARD = 4, /* NaN/Inf output or singular diagonal */
  IATF_STATUS_INTERNAL = 5,         /* invariant violation / unknown error */
  IATF_STATUS_TIMEOUT = 6,          /* per-call deadline exceeded */
  IATF_STATUS_OVERLOADED = 7,       /* admission control shed the call */
  IATF_STATUS_CANCELLED = 8,        /* queued request cancelled by stop() */
  IATF_STATUS_WATCHDOG = 9          /* stalled dispatch reclaimed by the
                                     * server watchdog */
} iatf_status;

/* How much guarding the default engine wraps around gemm/trsm:
 * FAST (default) = no checks, failures return an error code;
 * CHECK = scan outputs, report IATF_STATUS_NUMERICAL_HAZARD on NaN/Inf
 * outputs or singular TRSM diagonals;
 * FALLBACK = CHECK + retry affected matrices on the scalar reference
 * path, returning IATF_STATUS_OK once they complete. */
typedef enum iatf_exec_policy {
  IATF_EXEC_FAST = 0,
  IATF_EXEC_CHECK = 1,
  IATF_EXEC_FALLBACK = 2
} iatf_exec_policy;

void iatf_set_exec_policy(iatf_exec_policy policy);
iatf_exec_policy iatf_get_exec_policy(void);

/* Per-call time budget for the compute routines on the default engine.
 * Each gemm/trsm call computes its deadline on entry; dispatch stops at
 * the next chunk/slice boundary past it and the call returns
 * IATF_STATUS_TIMEOUT with the output buffer partially updated. A
 * timed-out call never degrades to the fallback path (a recompute could
 * only take longer) and never poisons the thread pool -- subsequent
 * calls run normally. ms <= 0 disables (the default). */
void iatf_set_call_deadline_ms(double ms);
double iatf_get_call_deadline_ms(void);

/* ---- Runtime ISA selection ------------------------------------------ */

/* The kernels are compiled at several register widths (128/256/512-bit);
 * at runtime the library detects the widest backend the host supports
 * (CPUID on x86-64, hwcaps on AArch64) and packs new buffers at that
 * width, so compute calls dispatch to the matching kernel class. The
 * environment variable IATF_FORCE_ISA=<name> overrides the choice at
 * first use (silently falling back to the detected backend when the name
 * is unknown or unavailable -- the override must never SIGILL).
 *
 * iatf_force_isa() is the programmatic override: it instead REFUSES an
 * unknown or unavailable backend with IATF_STATUS_UNSUPPORTED and leaves
 * the active backend unchanged. Canonical names: "sse2", "avx2",
 * "avx512", "neon", "sve". Changing the active ISA affects buffers and
 * packed handles created afterwards; existing ones keep dispatching to
 * the backend they were packed for. */
int iatf_force_isa(const char* name);

/* Canonical name of the backend new buffers will pack for. */
const char* iatf_active_isa(void);

/* 1 if the named backend is available on this host (and would be
 * accepted by iatf_force_isa), 0 for unknown or unavailable names. */
int iatf_isa_supported(const char* name);

/* ---- Engine observability ------------------------------------------- */

/* One coherent snapshot of the default engine's counters. Fields may be
 * a few operations apart from each other when sampled under load. */
typedef struct iatf_engine_stats {
  int64_t plan_cache_size;     /* plans currently cached */
  int64_t plan_cache_capacity; /* configured LRU bound */
  int64_t hits;                /* lock-free cache hits */
  int64_t misses;              /* lookups that took the build path */
  int64_t builds;              /* plan constructions (single-flight) */
  int64_t tuned;               /* cached plans built from tuning records */
  int64_t evictions;           /* plans evicted by the LRU bound */
  int64_t degraded_calls;      /* guarded calls that degraded */
  int64_t fallback_lanes;      /* lanes recomputed on the reference path */
  int64_t timeout_calls;       /* calls that exceeded their deadline */
  int64_t grouped_calls;       /* *_grouped calls */
  /* Histogram of distinct execution plans per non-empty grouped call;
   * bucket upper bounds are 1, 2, 4, 8 and unbounded. */
  int64_t grouped_plan_hist[5];
  /* Self-healing counters (see "Serving hardening" below). */
  int64_t shed_calls;          /* calls rejected by admission control */
  int64_t ref_routed_calls;    /* whole calls served on the ref path */
  int64_t retries;             /* transient-failure retry attempts */
  int64_t verified_kernels;    /* kernels that passed their canary */
  int64_t quarantined_kernels; /* kernels pulled from dispatch */
  int64_t breaker_transitions; /* circuit-breaker state changes */
  /* Persistent packed layouts (see "Packed layouts & factorisations"). */
  int64_t packed_reuse_hits;   /* handle operands consumed with no pack */
  int64_t packed_repacks;      /* interleave conversions (pack + repack) */
  /* Multi-ISA dispatch: compute calls served per kernel width class. */
  int64_t width16_calls;       /* 128-bit backend (sse2 / neon) */
  int64_t width32_calls;       /* 256-bit backend (avx2) */
  int64_t width64_calls;       /* 512-bit backend (avx512) */
} iatf_engine_stats;

int iatf_get_engine_stats(iatf_engine_stats* stats);

/* Zero every counter reported by iatf_get_engine_stats. Cached plans,
 * the kernel-trust ledger and breaker slot states are untouched (those
 * are state, not statistics; verified/quarantined counts and breaker
 * transitions therefore survive a reset). */
void iatf_engine_stats_reset(void);

/* ---- Serving hardening (self-healing layer) -------------------------
 *
 * The default engine verifies generated kernels against the scalar
 * reference on first dispatch (quarantining mismatches), bounds the
 * number of in-flight calls, trips a per-descriptor-class circuit
 * breaker when a class keeps degrading, and retries transient faults.
 * Environment seeds: $IATF_MAX_INFLIGHT, $IATF_BREAKER_WINDOW,
 * $IATF_RETRY_MAX. */

/* Liveness snapshot of the self-healing layer. */
typedef struct iatf_engine_health {
  int64_t verified_kernels;
  int64_t quarantined_kernels;
  int64_t breaker_closed;    /* descriptor-class slots in Closed */
  int64_t breaker_open;      /* slots currently ref-routing */
  int64_t breaker_half_open; /* slots probing */
  int64_t breaker_transitions;
  int64_t inflight;     /* calls currently inside the engine */
  int64_t max_inflight; /* admission budget (0 = unlimited) */
  int64_t shed_calls;
  int64_t ref_routed_calls;
  int64_t retries;
} iatf_engine_health;

int iatf_get_engine_health(iatf_engine_health* health);

/* Kernel verify-and-quarantine (default on). Off restores unconditional
 * trust in generated kernels. */
void iatf_set_kernel_verification(int on);
int iatf_get_kernel_verification(void);

/* Canary-check every registry kernel of every type up front instead of
 * on first dispatch; returns the number of quarantined kernels. */
int64_t iatf_engine_self_test(void);

/* What happens to a call arriving past the in-flight budget. */
typedef enum iatf_overload_policy {
  IATF_OVERLOAD_BLOCK = 0,   /* wait for capacity (bounded by deadline) */
  IATF_OVERLOAD_SHED = 1,    /* fail fast with IATF_STATUS_OVERLOADED */
  IATF_OVERLOAD_DEGRADE = 2  /* serve on the scalar reference path */
} iatf_overload_policy;

/* At most `max` compute calls inside the default engine at once;
 * max <= 0 means unlimited (the default). */
void iatf_set_max_inflight(int64_t max);
int64_t iatf_get_max_inflight(void);
void iatf_set_overload_policy(iatf_overload_policy policy);
iatf_overload_policy iatf_get_overload_policy(void);

/* Retry transient faults (allocation / worker failures under the
 * FALLBACK policy) up to max_attempts total attempts with capped
 * exponential backoff starting at base_delay_ms. max_attempts <= 1
 * disables retry (the default). */
void iatf_set_retry_policy(int max_attempts, double base_delay_ms);

/* Deterministic jitter over the retry backoff: with seed != 0 every
 * retry sleep is drawn from (seed, retry-sequence-number) uniformly in
 * [delay/2, delay], decorrelating concurrent retriers while a fixed
 * seed replays the exact sleep schedule. seed == 0 disables jitter (the
 * default; sleeps are the plain exponential delays). Also seeded from
 * $IATF_RETRY_JITTER_SEED at engine construction. */
void iatf_set_retry_jitter_seed(uint64_t seed);

/* Degradation circuit breaker: every `window` calls of a descriptor
 * class, `threshold`+ degraded ones trip the class onto the reference
 * path for `cooldown` calls, then a probe decides recovery. window <= 0
 * disables (the default). Reconfiguring resets every slot. */
void iatf_set_breaker(int window, int threshold, int cooldown);

/* ---- Crash-consistent health ledger ---------------------------------
 *
 * An append-only, per-record-checksummed journal of the default
 * engine's health transitions (kernel quarantines, breaker trips,
 * watchdog reclaims, degrade events). With a ledger attached, every
 * transition is journaled as it happens; on restart, loading the same
 * ledger replays it -- kernels quarantined before a crash stay
 * quarantined (and are never re-dispatched), and recently-tripped
 * breaker classes restart in the probing posture. A corrupt tail is
 * truncated and recovered; a ledger written on different hardware loads
 * as empty. $IATF_HEALTH_LEDGER attaches a ledger automatically at
 * engine construction. */

typedef struct iatf_health_ledger_stats {
  int64_t records;           /* replayable records currently held */
  int64_t quarantines;       /* kernel-quarantine records */
  int64_t breaker_trips;     /* breaker-trip records */
  int64_t degrades;          /* degrade-event records */
  int64_t watchdog_reclaims; /* watchdog-reclaim records */
} iatf_health_ledger_stats;

/* Attach the ledger at `path` to the default engine and replay it.
 * NULL path selects $IATF_HEALTH_LEDGER (IATF_STATUS_INVALID_ARG when
 * unset). Returns IATF_STATUS_OK for a clean, missing or recovered
 * ledger (missing files start empty; a damaged tail is truncated), and
 * IATF_STATUS_UNSUPPORTED -- with the reason in iatf_last_error() --
 * for a corrupt header or hardware mismatch (the ledger then starts
 * empty but still journals new events). */
int iatf_health_ledger_load(const char* path);

/* Compact the attached ledger to disk (atomic temp file + rename).
 * IATF_STATUS_INVALID_ARG when no ledger is attached. */
int iatf_health_ledger_save(void);

/* Path of the attached ledger ("" when none); thread-local storage,
 * valid until the next call on this thread. */
const char* iatf_health_ledger_path(void);

/* Counters of the attached ledger; zeroed when none is attached. */
int iatf_health_ledger_get_stats(iatf_health_ledger_stats* stats);

/* Degradation-event bits reported in iatf_error_detail.events (mirrors
 * the C++ DegradeEvent bitmask). */
#define IATF_EVENT_QUARANTINED_KERNEL (1u << 5)
#define IATF_EVENT_BREAKER_OPEN (1u << 6)
#define IATF_EVENT_OVERLOADED (1u << 7)

/* Descriptor of the most recent failing (or degraded) compute call on
 * the calling thread, so an IATF_STATUS_OVERLOADED / _TIMEOUT return --
 * or a silent quarantine/breaker degradation -- can be attributed
 * without re-deriving the call site. */
typedef struct iatf_error_detail {
  int status;   /* iatf_status of the call (OK for pure degradations) */
  unsigned events; /* IATF_EVENT_* bits observed on the call */
  char op;      /* 'g' gemm, 't' trsm, 'p' potrf, 'l' getrf_nopiv,
                 * 'i' trtri, 0 unset */
  char dtype;   /* 's', 'd', 'c' or 'z', 0 unset */
  int64_t m, n, k; /* failing descriptor (k = 0 for trsm) */
  int64_t batch;
  int op_a, op_b;     /* iatf_op values; -1 when not applicable */
  int side, uplo, diag; /* trsm mode; -1 when not applicable */
} iatf_error_detail;

/* Copy the calling thread's last failure/degradation descriptor into
 * *detail. Returns 1 when a detail is available, 0 when no compute call
 * has failed or degraded since the last iatf_clear_error(). */
int iatf_last_error_detail(iatf_error_detail* detail);

/* Rebound the default engine's LRU plan cache (capacity >= 1); plans
 * past the new bound are evicted immediately. The initial capacity is
 * $IATF_PLAN_CACHE_CAP if set, else 512. */
int iatf_set_plan_cache_capacity(int64_t capacity);

/* Drop every cached plan and reset the cache counters. Safe to call
 * while other threads are inside compute routines: they finish on the
 * plans they already hold. */
void iatf_clear_plan_cache(void);

/* Error handling. */
const char* iatf_last_error(void);
/* Reset the calling thread's error message to the empty string. */
void iatf_clear_error(void);

/* Opaque compact-buffer handles, one per scalar type. */
typedef struct iatf_sbuf iatf_sbuf;
typedef struct iatf_dbuf iatf_dbuf;
typedef struct iatf_cbuf iatf_cbuf;
typedef struct iatf_zbuf iatf_zbuf;

#define IATF_DECLARE_TYPE(P, BUF, SCALAR)                                    \
  /* Create a zeroed batch of rows x cols matrices; NULL on failure. */     \
  BUF* iatf_##P##create(int64_t rows, int64_t cols, int64_t batch);         \
  void iatf_##P##destroy(BUF* buf);                                         \
  int64_t iatf_##P##rows(const BUF* buf);                                   \
  int64_t iatf_##P##cols(const BUF* buf);                                   \
  int64_t iatf_##P##batch(const BUF* buf);                                  \
  /* Copy matrix b in/out of column-major storage with leading dim ld.     \
   * For complex types the scalar pointers are interleaved (re, im). */    \
  int iatf_##P##import(BUF* buf, int64_t b, const SCALAR* src,              \
                       int64_t ld);                                         \
  int iatf_##P##export(const BUF* buf, int64_t b, SCALAR* dst,              \
                       int64_t ld);                                         \
  /* Write unit diagonals into padded lanes (required before TRSM /        \
   * factorisations when batch %% pack width != 0). */                      \
  int iatf_##P##pad_identity(BUF* buf);

IATF_DECLARE_TYPE(s, iatf_sbuf, float)
IATF_DECLARE_TYPE(d, iatf_dbuf, double)
IATF_DECLARE_TYPE(c, iatf_cbuf, float)
IATF_DECLARE_TYPE(z, iatf_zbuf, double)
#undef IATF_DECLARE_TYPE

/* C = alpha * op_a(A) * op_b(B) + beta * C for every matrix. */
int iatf_sgemm_compact(iatf_op op_a, iatf_op op_b, float alpha,
                       const iatf_sbuf* a, const iatf_sbuf* b, float beta,
                       iatf_sbuf* c);
int iatf_dgemm_compact(iatf_op op_a, iatf_op op_b, double alpha,
                       const iatf_dbuf* a, const iatf_dbuf* b,
                       double beta, iatf_dbuf* c);
int iatf_cgemm_compact(iatf_op op_a, iatf_op op_b, float alpha_re,
                       float alpha_im, const iatf_cbuf* a,
                       const iatf_cbuf* b, float beta_re, float beta_im,
                       iatf_cbuf* c);
int iatf_zgemm_compact(iatf_op op_a, iatf_op op_b, double alpha_re,
                       double alpha_im, const iatf_zbuf* a,
                       const iatf_zbuf* b, double beta_re, double beta_im,
                       iatf_zbuf* c);

/* op_a(A) X = alpha B (Left) / X op_a(A) = alpha B (Right); B <- X. */
int iatf_strsm_compact(iatf_side side, iatf_uplo uplo, iatf_op op_a,
                       iatf_diag diag, float alpha, const iatf_sbuf* a,
                       iatf_sbuf* b);
int iatf_dtrsm_compact(iatf_side side, iatf_uplo uplo, iatf_op op_a,
                       iatf_diag diag, double alpha, const iatf_dbuf* a,
                       iatf_dbuf* b);
int iatf_ctrsm_compact(iatf_side side, iatf_uplo uplo, iatf_op op_a,
                       iatf_diag diag, float alpha_re, float alpha_im,
                       const iatf_cbuf* a, iatf_cbuf* b);
int iatf_ztrsm_compact(iatf_side side, iatf_uplo uplo, iatf_op op_a,
                       iatf_diag diag, double alpha_re, double alpha_im,
                       const iatf_zbuf* a, iatf_zbuf* b);

/* ---- Grouped variable-size batches ----------------------------------
 *
 * A grouped call takes `group_count` segments, each with its own
 * descriptor (shape inferred from the buffers, mode, scalars, batch).
 * Segments sharing a descriptor share one cached execution plan, and
 * with a thread pool attached their batch slices are interleaved so a
 * large segment cannot starve small ones. The engine's exec policy and
 * per-call deadline apply to the whole grouped call; an unrepaired
 * numerical hazard in any segment returns
 * IATF_STATUS_NUMERICAL_HAZARD. */

typedef struct iatf_sgemm_segment {
  iatf_op op_a, op_b;
  float alpha, beta;
  const iatf_sbuf* a;
  const iatf_sbuf* b;
  iatf_sbuf* c;
} iatf_sgemm_segment;

typedef struct iatf_dgemm_segment {
  iatf_op op_a, op_b;
  double alpha, beta;
  const iatf_dbuf* a;
  const iatf_dbuf* b;
  iatf_dbuf* c;
} iatf_dgemm_segment;

typedef struct iatf_cgemm_segment {
  iatf_op op_a, op_b;
  float alpha_re, alpha_im, beta_re, beta_im;
  const iatf_cbuf* a;
  const iatf_cbuf* b;
  iatf_cbuf* c;
} iatf_cgemm_segment;

typedef struct iatf_zgemm_segment {
  iatf_op op_a, op_b;
  double alpha_re, alpha_im, beta_re, beta_im;
  const iatf_zbuf* a;
  const iatf_zbuf* b;
  iatf_zbuf* c;
} iatf_zgemm_segment;

typedef struct iatf_strsm_segment {
  iatf_side side;
  iatf_uplo uplo;
  iatf_op op_a;
  iatf_diag diag;
  float alpha;
  const iatf_sbuf* a;
  iatf_sbuf* b;
} iatf_strsm_segment;

typedef struct iatf_dtrsm_segment {
  iatf_side side;
  iatf_uplo uplo;
  iatf_op op_a;
  iatf_diag diag;
  double alpha;
  const iatf_dbuf* a;
  iatf_dbuf* b;
} iatf_dtrsm_segment;

typedef struct iatf_ctrsm_segment {
  iatf_side side;
  iatf_uplo uplo;
  iatf_op op_a;
  iatf_diag diag;
  float alpha_re, alpha_im;
  const iatf_cbuf* a;
  iatf_cbuf* b;
} iatf_ctrsm_segment;

typedef struct iatf_ztrsm_segment {
  iatf_side side;
  iatf_uplo uplo;
  iatf_op op_a;
  iatf_diag diag;
  double alpha_re, alpha_im;
  const iatf_zbuf* a;
  iatf_zbuf* b;
} iatf_ztrsm_segment;

int iatf_sgemm_grouped(const iatf_sgemm_segment* segments,
                       int64_t group_count);
int iatf_dgemm_grouped(const iatf_dgemm_segment* segments,
                       int64_t group_count);
int iatf_cgemm_grouped(const iatf_cgemm_segment* segments,
                       int64_t group_count);
int iatf_zgemm_grouped(const iatf_zgemm_segment* segments,
                       int64_t group_count);

int iatf_strsm_grouped(const iatf_strsm_segment* segments,
                       int64_t group_count);
int iatf_dtrsm_grouped(const iatf_dtrsm_segment* segments,
                       int64_t group_count);
int iatf_ctrsm_grouped(const iatf_ctrsm_segment* segments,
                       int64_t group_count);
int iatf_ztrsm_grouped(const iatf_ztrsm_segment* segments,
                       int64_t group_count);

/* ---- Async serving front-end ----------------------------------------
 *
 * An iatf_server queues compute requests against the default engine:
 * one dispatcher thread dequeues weighted-fair across tenants, merges
 * queued requests carrying the same descriptor (from any tenant) into
 * one grouped call, and sheds requests whose deadline expired while
 * queued. Submissions return a ticket; iatf_server_wait() blocks for
 * the result and iatf_server_poll() checks without blocking.
 *
 * Buffers passed to a submission are borrowed until its ticket resolves
 * (wait returns, or poll reports done); destroying or reusing them
 * earlier -- or writing one output buffer from two in-flight requests
 * -- is undefined. Destroy every server before process exit: the
 * default engine aborts at static destruction while servers exist. */

typedef struct iatf_server iatf_server;

typedef struct iatf_serve_config {
  int64_t queue_capacity;     /* <= 0 selects the default (1024) */
  int64_t per_tenant_quota;   /* <= 0 means no per-tenant bound */
  int64_t max_coalesce;       /* <= 0 selects the default (64) */
  iatf_overload_policy overload; /* queue-full behaviour */
  double default_deadline_ms; /* <= 0 means no default deadline */
} iatf_serve_config;

/* NULL config selects all defaults. NULL on failure. */
iatf_server* iatf_server_create(const iatf_serve_config* config);
/* Stops the server (cancelling queued requests) and frees it. Tickets
 * never waited on are discarded. */
void iatf_server_destroy(iatf_server* server);

/* Weighted-fair share for `tenant` (weight >= 1; default 1). */
int iatf_server_set_tenant_weight(iatf_server* server, uint32_t tenant,
                                  uint32_t weight);
/* Swap the queue-full policy at runtime. */
int iatf_server_set_overload_policy(iatf_server* server,
                                    iatf_overload_policy policy);

/* Watchdog supervision: with grace > 0 a supervisor thread reclaims a
 * dispatch that has not returned after grace x its deadline budget
 * (floor_ms for deadline-less requests, and the minimum budget
 * otherwise; <= 0 keeps the current floor, initially 1000 ms). A
 * reclaimed request resolves with IATF_STATUS_WATCHDOG -- its output
 * buffers may be partially written and stay borrowed until
 * iatf_server_stop/_drain/_destroy returns -- the class's circuit
 * breaker is forced Open (journaled to the health ledger) and a fresh
 * dispatcher replaces the wedged one. grace == 0 disables. */
int iatf_server_set_watchdog(iatf_server* server, double grace,
                             double floor_ms);

/* Queue a request for `tenant` with a per-request deadline budget
 * (deadline_ms <= 0 uses the server default). On IATF_STATUS_OK,
 * *ticket identifies the request; any other return means the request
 * was refused or already resolved with that status (overflow shed,
 * enqueue-time cancellation) and no ticket was issued. */
int iatf_server_submit_sgemm(iatf_server* server, iatf_op op_a,
                             iatf_op op_b, float alpha, const iatf_sbuf* a,
                             const iatf_sbuf* b, float beta, iatf_sbuf* c,
                             uint32_t tenant, double deadline_ms,
                             uint64_t* ticket);
int iatf_server_submit_dgemm(iatf_server* server, iatf_op op_a,
                             iatf_op op_b, double alpha,
                             const iatf_dbuf* a, const iatf_dbuf* b,
                             double beta, iatf_dbuf* c, uint32_t tenant,
                             double deadline_ms, uint64_t* ticket);
int iatf_server_submit_strsm(iatf_server* server, iatf_side side,
                             iatf_uplo uplo, iatf_op op_a, iatf_diag diag,
                             float alpha, const iatf_sbuf* a, iatf_sbuf* b,
                             uint32_t tenant, double deadline_ms,
                             uint64_t* ticket);
int iatf_server_submit_dtrsm(iatf_server* server, iatf_side side,
                             iatf_uplo uplo, iatf_op op_a, iatf_diag diag,
                             double alpha, const iatf_dbuf* a,
                             iatf_dbuf* b, uint32_t tenant,
                             double deadline_ms, uint64_t* ticket);

/* Non-blocking check: 1 = resolved (*status holds the request's final
 * iatf_status; the ticket stays valid for iatf_server_wait), 0 = still
 * pending, IATF_STATUS_INVALID_ARG = unknown ticket. */
int iatf_server_poll(iatf_server* server, uint64_t ticket, int* status);
/* Block until the request resolves; returns its final status and
 * consumes the ticket. */
int iatf_server_wait(iatf_server* server, uint64_t ticket);
/* Request cancellation of a pending ticket (advisory). A request still
 * queued resolves with IATF_STATUS_CANCELLED at dequeue; one already
 * dispatched -- alone or coalesced with other requests -- completes
 * normally, and its coalesce-mates are never disturbed. The ticket
 * stays waitable either way. IATF_STATUS_INVALID_ARG = unknown
 * ticket. */
int iatf_server_cancel(iatf_server* server, uint64_t ticket);

/* Refuse new submissions and complete everything queued/in flight. */
int iatf_server_drain(iatf_server* server);
/* Refuse new submissions, finish in-flight work, cancel the queued
 * remainder with IATF_STATUS_CANCELLED. */
int iatf_server_stop(iatf_server* server);

/* Coherent snapshot of the server's counters. */
typedef struct iatf_server_stats {
  int64_t queued;             /* requests currently queued */
  int64_t queue_capacity;     /* configured shared bound */
  int64_t inflight;           /* requests currently executing */
  int64_t submitted;          /* total requests offered */
  int64_t completed;          /* requests that finished execution */
  int64_t dispatch_calls;     /* engine dispatches (1 per batch) */
  int64_t coalesced_requests; /* requests that shared a dispatch */
  /* Requests-per-dispatch histogram; upper bounds 1, 2, 4, 8, inf. */
  int64_t coalesce_hist[5];
  int64_t shed_expired;       /* dequeue-time deadline sheds */
  int64_t shed_overflow;      /* submit-time queue-full sheds */
  int64_t cancelled;          /* stop()-cancelled + late refusals */
  int64_t degraded_inline;    /* queue-full requests served inline */
  int64_t watchdog_kicks;     /* stalled dispatches reclaimed */
  int64_t heartbeats;         /* dispatcher rounds started */
} iatf_server_stats;

int iatf_server_get_stats(iatf_server* server, iatf_server_stats* stats);
/* Requests of `tenant` dequeued for execution so far (-1 on error). */
int64_t iatf_server_tenant_served(iatf_server* server, uint32_t tenant);

/* ---- Autotuning -----------------------------------------------------
 *
 * The process-wide tuning table feeds the default engine: records are
 * consulted whenever a plan is built for a matching descriptor, and
 * missing descriptors fall back to the manual override (below), the
 * IATF_FORCE_PACK_A / IATF_FORCE_PACK_B / IATF_SLICE_OVERRIDE
 * environment variables, and finally the analytical model. */

/* Manual plan overrides for descriptors the tuning table does not
 * cover. force_pack_* : -1 keeps the analytical choice, 0 forces
 * no-pack, 1 forces pack; zero slice/caps/chunk mean "analytical".
 * Forcing no-pack for an operand the plan must gather is reported as
 * IATF_STATUS_INVALID_ARG by the compute routine that builds the plan. */
typedef struct iatf_plan_tuning {
  int force_pack_a;
  int force_pack_b;
  int64_t slice_override;
  int mc_cap;
  int nc_cap;
  int64_t chunk_groups;
} iatf_plan_tuning;

/* Install (or, with NULL, remove) the manual override on the default
 * engine; either way the plan cache is invalidated. */
int iatf_set_plan_tuning(const iatf_plan_tuning* tuning);

/* Empirically tune one descriptor (dtype is 's','d','c' or 'z') and
 * store the winning record in the process-wide table. batch <= 0 and
 * reps <= 0 select the defaults (256 matrices, 5 repetitions). */
int iatf_tune_gemm(char dtype, iatf_op op_a, iatf_op op_b, int64_t m,
                   int64_t n, int64_t k, int64_t batch, int reps);
int iatf_tune_trsm(char dtype, iatf_side side, iatf_uplo uplo,
                   iatf_op op_a, iatf_diag diag, int64_t m, int64_t n,
                   int64_t batch, int reps);

/* Records currently in the process-wide table. */
int64_t iatf_tune_count(void);
/* Drop every record (the engine reverts to the analytical model). */
void iatf_tune_clear(void);

/* Persist / restore the table. NULL path selects $IATF_TUNE_FILE, else
 * "iatf_tune.tbl" in the working directory. Saving is atomic (temp file
 * + rename). Loading a missing, corrupt or hardware-mismatched file
 * keeps the current table untouched and returns
 * IATF_STATUS_UNSUPPORTED with the reason in iatf_last_error(). */
int iatf_tune_save(const char* path);
int iatf_tune_load(const char* path);

/* ---- Packed layouts & factorisations --------------------------------
 *
 * A packed handle holds a batch persistently in the interleaved compact
 * layout: iatf_?pack() converts a strided column-major array exactly
 * once, every *_packed compute routine then consumes the handle with no
 * per-call conversion (counted in iatf_engine_stats.packed_reuse_hits /
 * packed_repacks), and iatf_?unpack() converts the result back out.
 *
 * The batched factorisations run under the engine's exec policy like
 * gemm/trsm: with IATF_EXEC_CHECK a non-SPD / hard-singular matrix is
 * reported as IATF_STATUS_NUMERICAL_HAZARD; with IATF_EXEC_FALLBACK the
 * affected matrices are repaired on the scalar reference path (restored
 * to their original input when even the reference refuses them) and the
 * call returns IATF_STATUS_OK, never poisoning the healthy remainder. */

typedef struct iatf_spacked iatf_spacked;
typedef struct iatf_dpacked iatf_dpacked;
typedef struct iatf_cpacked iatf_cpacked;
typedef struct iatf_zpacked iatf_zpacked;

#define IATF_DECLARE_PACKED(P, PACKED, BUF, SCALAR)                          \
  /* Pack matrix b at src + b*matrix_stride (column-major, leading        \
   * dimension ld) for b in [0, batch); NULL on failure. */               \
  PACKED* iatf_##P##pack(const SCALAR* src, int64_t rows, int64_t cols,     \
                         int64_t ld, int64_t matrix_stride, int64_t batch); \
  /* Refresh a handle's contents in place (same shape, counted repack). */ \
  int iatf_##P##repack(PACKED* p, const SCALAR* src, int64_t ld,            \
                       int64_t matrix_stride);                              \
  /* Convert the handle's contents back out (no conversion counted). */    \
  int iatf_##P##unpack(const PACKED* p, SCALAR* dst, int64_t ld,            \
                       int64_t matrix_stride);                              \
  void iatf_##P##free_packed(PACKED* p);                                    \
  int64_t iatf_##P##packed_rows(const PACKED* p);                           \
  int64_t iatf_##P##packed_cols(const PACKED* p);                           \
  int64_t iatf_##P##packed_batch(const PACKED* p);                          \
  /* Mutation epoch: bumped by every routine that writes the handle. */    \
  uint64_t iatf_##P##packed_epoch(const PACKED* p);                         \
  /* GEMM / TRSM over packed handles (semantics of the _compact calls). */ \
  int iatf_##P##gemm_packed(iatf_op op_a, iatf_op op_b, SCALAR alpha,       \
                            const PACKED* a, const PACKED* b, SCALAR beta,  \
                            PACKED* c);                                     \
  int iatf_##P##trsm_packed(iatf_side side, iatf_uplo uplo, iatf_op op_a,   \
                            iatf_diag diag, SCALAR alpha, const PACKED* a,  \
                            PACKED* b);                                     \
  /* Batched factorisations, over compact buffers and packed handles:     \
   * blocked Cholesky (lower), unpivoted LU for diagonally-dominant       \
   * batches, in-place triangular inverse. */                              \
  int iatf_##P##potrf_batch(BUF* a);                                        \
  int iatf_##P##getrfnp_batch(BUF* a);                                      \
  int iatf_##P##trtri_batch(iatf_uplo uplo, iatf_diag diag, BUF* a);        \
  int iatf_##P##potrf_packed(PACKED* a);                                    \
  int iatf_##P##getrfnp_packed(PACKED* a);                                  \
  int iatf_##P##trtri_packed(iatf_uplo uplo, iatf_diag diag, PACKED* a);

IATF_DECLARE_PACKED(s, iatf_spacked, iatf_sbuf, float)
IATF_DECLARE_PACKED(d, iatf_dpacked, iatf_dbuf, double)
#undef IATF_DECLARE_PACKED

/* Complex variants: identical surface, with scalars passed as (re, im)
 * pairs and strided storage interleaved (re, im) per element, so SCALAR*
 * pointers address 2*rows*cols real values per matrix. */
#define IATF_DECLARE_PACKED_CX(P, PACKED, BUF, SCALAR)                       \
  PACKED* iatf_##P##pack(const SCALAR* src, int64_t rows, int64_t cols,     \
                         int64_t ld, int64_t matrix_stride, int64_t batch); \
  int iatf_##P##repack(PACKED* p, const SCALAR* src, int64_t ld,            \
                       int64_t matrix_stride);                              \
  int iatf_##P##unpack(const PACKED* p, SCALAR* dst, int64_t ld,            \
                       int64_t matrix_stride);                              \
  void iatf_##P##free_packed(PACKED* p);                                    \
  int64_t iatf_##P##packed_rows(const PACKED* p);                           \
  int64_t iatf_##P##packed_cols(const PACKED* p);                           \
  int64_t iatf_##P##packed_batch(const PACKED* p);                          \
  uint64_t iatf_##P##packed_epoch(const PACKED* p);                         \
  int iatf_##P##gemm_packed(iatf_op op_a, iatf_op op_b, SCALAR alpha_re,    \
                            SCALAR alpha_im, const PACKED* a,               \
                            const PACKED* b, SCALAR beta_re,                \
                            SCALAR beta_im, PACKED* c);                     \
  int iatf_##P##trsm_packed(iatf_side side, iatf_uplo uplo, iatf_op op_a,   \
                            iatf_diag diag, SCALAR alpha_re,                \
                            SCALAR alpha_im, const PACKED* a, PACKED* b);   \
  int iatf_##P##potrf_batch(BUF* a);                                        \
  int iatf_##P##getrfnp_batch(BUF* a);                                      \
  int iatf_##P##trtri_batch(iatf_uplo uplo, iatf_diag diag, BUF* a);        \
  int iatf_##P##potrf_packed(PACKED* a);                                    \
  int iatf_##P##getrfnp_packed(PACKED* a);                                  \
  int iatf_##P##trtri_packed(iatf_uplo uplo, iatf_diag diag, PACKED* a);

IATF_DECLARE_PACKED_CX(c, iatf_cpacked, iatf_cbuf, float)
IATF_DECLARE_PACKED_CX(z, iatf_zpacked, iatf_zbuf, double)
#undef IATF_DECLARE_PACKED_CX

/* Extensions: B = alpha * op(tri(A)) * B, unpivoted LU, Cholesky. */
int iatf_strmm_compact(iatf_side side, iatf_uplo uplo, iatf_op op_a,
                       iatf_diag diag, float alpha, const iatf_sbuf* a,
                       iatf_sbuf* b);
int iatf_dtrmm_compact(iatf_side side, iatf_uplo uplo, iatf_op op_a,
                       iatf_diag diag, double alpha, const iatf_dbuf* a,
                       iatf_dbuf* b);
int iatf_sgetrfnp_compact(iatf_sbuf* a);
int iatf_dgetrfnp_compact(iatf_dbuf* a);
int iatf_spotrf_compact(iatf_sbuf* a);
int iatf_dpotrf_compact(iatf_dbuf* a);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* IATF_CAPI_IATF_H */
