// SIMD-friendly compact data layout (paper section 4.1, Figure 3).
//
// A batch of NM equally-sized small matrices is stored as ceil(NM/P)
// *groups*. Within a group, the P matrices are interleaved element-wise:
// the value at position (i,j) of each of the P matrices occupies P
// consecutive scalars, so one 128-bit vector load brings the same element
// of P matrices into a SIMD register ("P = the number of data that fills
// the length of the SIMD register": 4 for float, 2 for double on the
// paper's 128-bit NEON).
//
// Complex matrices are stored as two planes per element -- P real parts
// followed by P imaginary parts -- which is what lets the complex kernels
// run on plain real-vector FMA/FMS (the paper's 4-multiply complex update,
// section 4.2.1).
//
// Groups that extend past NM are zero-padded; pad_identity() additionally
// writes a unit diagonal into padded lanes so triangular solves on the pad
// cannot divide by zero.
#pragma once

#include <span>
#include <vector>

#include "iatf/common/aligned_buffer.hpp"
#include "iatf/common/error.hpp"
#include "iatf/common/types.hpp"
#include "iatf/simd/vec.hpp"

namespace iatf {

/// Owning container for a batch of fixed-size small matrices in compact
/// layout. Scalar type T may be real or complex; storage is always the
/// underlying real type.
template <class T> class CompactBuffer {
public:
  using real_type = real_t<T>;
  static constexpr int planes = is_complex_v<T> ? 2 : 1;

  CompactBuffer() = default;

  /// Create a zero-initialised batch of `batch` matrices of size
  /// rows x cols, interleaved `pack_width` matrices per group (defaults to
  /// the 128-bit lane count for T).
  CompactBuffer(index_t rows, index_t cols, index_t batch,
                index_t pack_width = simd::pack_width_v<T>)
      : rows_(rows), cols_(cols), batch_(batch), pw_(pack_width) {
    IATF_CHECK(rows >= 0 && cols >= 0 && batch >= 0,
               "CompactBuffer: negative dimension");
    IATF_CHECK(pack_width >= 1, "CompactBuffer: pack width must be >= 1");
    data_.resize(static_cast<std::size_t>(groups() * group_stride()));
  }

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t batch() const noexcept { return batch_; }
  index_t pack_width() const noexcept { return pw_; }

  /// Number of interleave groups (batch rounded up to pack_width).
  index_t groups() const noexcept {
    return pw_ == 0 ? 0 : (batch_ + pw_ - 1) / pw_;
  }

  /// Scalars (of real_type) occupied by one group.
  index_t group_stride() const noexcept {
    return rows_ * cols_ * pw_ * planes;
  }

  /// Scalars (of real_type) occupied by one element block of a group.
  index_t element_stride() const noexcept { return pw_ * planes; }

  real_type* data() noexcept { return data_.data(); }
  const real_type* data() const noexcept { return data_.data(); }
  std::size_t size() const noexcept { return data_.size(); }

  real_type* group_data(index_t g) noexcept {
    return data_.data() + g * group_stride();
  }
  const real_type* group_data(index_t g) const noexcept {
    return data_.data() + g * group_stride();
  }

  /// Offset (in real scalars, within a group) of element (i,j)'s block.
  index_t element_offset(index_t i, index_t j) const noexcept {
    return (j * rows_ + i) * element_stride();
  }

  /// Element (i,j) of matrix `b` in the batch.
  T get(index_t b, index_t i, index_t j) const {
    check_index(b, i, j);
    const real_type* p =
        group_data(b / pw_) + element_offset(i, j) + (b % pw_);
    if constexpr (is_complex_v<T>) {
      return T(p[0], p[pw_]);
    } else {
      return *p;
    }
  }

  void set(index_t b, index_t i, index_t j, T value) {
    check_index(b, i, j);
    real_type* p = group_data(b / pw_) + element_offset(i, j) + (b % pw_);
    if constexpr (is_complex_v<T>) {
      p[0] = value.real();
      p[pw_] = value.imag();
    } else {
      *p = value;
    }
  }

  /// Write 1 onto the diagonal of padded lanes (lanes >= batch in the last
  /// group). Keeps triangular solves on the padding finite.
  void pad_identity() {
    const index_t first_pad = batch_ % pw_;
    if (first_pad == 0 || groups() == 0) {
      return;
    }
    real_type* g = group_data(groups() - 1);
    const index_t d = rows_ < cols_ ? rows_ : cols_;
    for (index_t i = 0; i < d; ++i) {
      real_type* p = g + element_offset(i, i);
      for (index_t lane = first_pad; lane < pw_; ++lane) {
        p[lane] = real_type(1);
        if constexpr (is_complex_v<T>) {
          p[pw_ + lane] = real_type(0);
        }
      }
    }
  }

  /// Import matrix `b` from a column-major buffer with leading dimension
  /// `ld` (>= rows).
  void import_colmajor(index_t b, const T* src, index_t ld) {
    IATF_CHECK(ld >= rows_, "import_colmajor: ld < rows");
    for (index_t j = 0; j < cols_; ++j) {
      for (index_t i = 0; i < rows_; ++i) {
        set(b, i, j, src[j * ld + i]);
      }
    }
  }

  /// Export matrix `b` to a column-major buffer with leading dimension
  /// `ld` (>= rows).
  void export_colmajor(index_t b, T* dst, index_t ld) const {
    IATF_CHECK(ld >= rows_, "export_colmajor: ld < rows");
    for (index_t j = 0; j < cols_; ++j) {
      for (index_t i = 0; i < rows_; ++i) {
        dst[j * ld + i] = get(b, i, j);
      }
    }
  }

private:
  void check_index(index_t b, index_t i, index_t j) const {
    IATF_CHECK(b >= 0 && b < batch_, "CompactBuffer: batch index");
    IATF_CHECK(i >= 0 && i < rows_, "CompactBuffer: row index");
    IATF_CHECK(j >= 0 && j < cols_, "CompactBuffer: col index");
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t batch_ = 0;
  index_t pw_ = 1;
  AlignedBuffer<real_type> data_;
};

/// Convert a whole batch held as one strided column-major array
/// (matrix b starts at src + b*matrix_stride) into compact layout.
/// Bulk path: walks group by group so the interleave gather runs without
/// per-element checks (the conversion cost is itself measured by
/// bench_ablation_convert).
template <class T>
CompactBuffer<T>
to_compact(const T* src, index_t rows, index_t cols, index_t ld,
           index_t matrix_stride, index_t batch,
           index_t pack_width = simd::pack_width_v<T>) {
  using R = real_t<T>;
  IATF_CHECK(ld >= rows, "to_compact: ld < rows");
  CompactBuffer<T> out(rows, cols, batch, pack_width);
  const index_t pw = pack_width;
  for (index_t g = 0; g < out.groups(); ++g) {
    R* gdata = out.group_data(g);
    const index_t lanes =
        g * pw + pw <= batch ? pw : batch - g * pw;
    const T* gsrc = src + g * pw * matrix_stride;
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        R* blk = gdata + (j * rows + i) * out.element_stride();
        for (index_t lane = 0; lane < lanes; ++lane) {
          const T v = gsrc[lane * matrix_stride + j * ld + i];
          if constexpr (is_complex_v<T>) {
            blk[lane] = v.real();
            blk[pw + lane] = v.imag();
          } else {
            blk[lane] = v;
          }
        }
      }
    }
  }
  return out;
}

/// Convert a compact batch back to one strided column-major array.
template <class T>
void from_compact(const CompactBuffer<T>& src, T* dst, index_t ld,
                  index_t matrix_stride) {
  using R = real_t<T>;
  IATF_CHECK(ld >= src.rows(), "from_compact: ld < rows");
  const index_t pw = src.pack_width();
  const index_t rows = src.rows();
  const index_t cols = src.cols();
  for (index_t g = 0; g < src.groups(); ++g) {
    const R* gdata = src.group_data(g);
    const index_t lanes =
        g * pw + pw <= src.batch() ? pw : src.batch() - g * pw;
    T* gdst = dst + g * pw * matrix_stride;
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        const R* blk = gdata + (j * rows + i) * src.element_stride();
        for (index_t lane = 0; lane < lanes; ++lane) {
          if constexpr (is_complex_v<T>) {
            gdst[lane * matrix_stride + j * ld + i] =
                T(blk[lane], blk[pw + lane]);
          } else {
            gdst[lane * matrix_stride + j * ld + i] = blk[lane];
          }
        }
      }
    }
  }
}

} // namespace iatf
