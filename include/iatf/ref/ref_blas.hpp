// Reference (scalar, column-major) GEMM and TRSM covering every mode and
// scalar type. This module is the correctness oracle for all IATF tests:
// it is written for clarity, follows the BLAS definitions literally, and
// has no performance tricks whatsoever.
#pragma once

#include "iatf/common/types.hpp"

namespace iatf::ref {

/// C = alpha * op_a(A) * op_b(B) + beta * C, column-major.
/// A is (m x k) after op_a, B is (k x n) after op_b, C is m x n.
template <class T>
void gemm(Op op_a, Op op_b, index_t m, index_t n, index_t k, T alpha,
          const T* a, index_t lda, const T* b, index_t ldb, T beta, T* c,
          index_t ldc);

/// Solve op_a(A) * X = alpha * B (Left) or X * op_a(A) = alpha * B (Right)
/// in place: B (m x n, column-major) is overwritten by X. A is the
/// triangular matrix of order m (Left) or n (Right).
template <class T>
void trsm(Side side, Uplo uplo, Op op_a, Diag diag, index_t m, index_t n,
          T alpha, const T* a, index_t lda, T* b, index_t ldb);

/// B = alpha * op_a(A) * B (Left) or alpha * B * op_a(A) (Right) in
/// place, A triangular of order m (Left) or n (Right).
template <class T>
void trmm(Side side, Uplo uplo, Op op_a, Diag diag, index_t m, index_t n,
          T alpha, const T* a, index_t lda, T* b, index_t ldb);

/// Unpivoted LU factorisation in place: A (m x m) becomes L\U with a unit
/// lower diagonal (LAPACK getrfnp convention).
template <class T> void getrf_np(index_t m, T* a, index_t lda);

/// Cholesky factorisation of the lower triangle in place: A = L * L^H
/// (L * L^T for real types). Only the lower triangle is referenced or
/// written. Requires positive-definite input.
template <class T> void potrf(index_t m, T* a, index_t lda);

/// Triangular inverse in place (LAPACK trtri): the `uplo` triangle of A
/// (m x m) is overwritten by its inverse. Unit triangles keep their
/// implicit unit diagonal. A zero diagonal produces Inf/NaN in that
/// column, never a throw (BLAS-undefined input, defined IEEE output).
template <class T>
void trtri(Uplo uplo, Diag diag, index_t m, T* a, index_t lda);

} // namespace iatf::ref
