// iatf::serve -- asynchronous multi-tenant front-end over one Engine.
//
// The engine already survives heavy in-process traffic (admission
// control, breakers, deadlines, grouped scheduling), but its API is one
// synchronous call per caller thread: a slow or abusive tenant
// monopolises the engine and there is no way to drain or restart under
// load. Server closes that gap with a bounded submission queue and a
// single dispatcher thread:
//
//  * Async API. submit_gemm / submit_trsm / submit_grouped return a
//    std::future (and optionally invoke a completion callback); the
//    submitting thread never executes the work itself except under the
//    DegradeToRef queue-full policy. Every submitted request is resolved
//    exactly once: with a BatchHealth, or with OverloadError /
//    TimeoutError / CancelledError -- never abandoned, including across
//    drain(), stop() and destruction mid-fault-storm.
//
//  * Cross-tenant coalescing. The dispatcher merges queued single
//    requests carrying the same descriptor class (sched::ClassKey +
//    dtype) -- from any tenant -- into one gemm_grouped / trsm_grouped
//    call, so the input-aware batching win survives many small clients.
//    A coalesced dispatch that fails is retried request-by-request, so
//    one tenant's bad descriptor cannot fail its coalesce-mates.
//
//  * Per-tenant isolation. Each tenant has its own FIFO queue bounded by
//    a quota (so one tenant cannot fill the shared queue), and dequeue
//    order is weighted-fair stride scheduling: with weights w_i, tenant i
//    receives ~w_i / sum(w) of dispatches under saturation regardless of
//    submission rates.
//
//  * Backpressure. The queue is bounded; a full queue (or exhausted
//    tenant quota) applies resilience::OverloadPolicy semantics: Block
//    waits for space (bounded by the request deadline), ShedNewest
//    resolves the future with OverloadError, DegradeToRef executes the
//    request synchronously on the submitting thread.
//
//  * Deadline shedding. A request whose deadline expires while queued is
//    resolved with TimeoutError at dequeue and never dispatched -- queue
//    time counts against the budget, and dead work is never executed.
//
//  * Graceful lifecycle. drain() refuses new submissions and completes
//    everything queued and in flight; stop() refuses new submissions,
//    completes in-flight work and cancels the still-queued remainder
//    with CancelledError. The destructor stop()s. Servers must be
//    destroyed before their engine (~Engine aborts otherwise; see
//    DESIGN.md section 12 for the default_engine() ordering rule).
//
//  * Watchdog supervision (opt-in; DESIGN.md section 14). With
//    watchdog_grace > 0 a supervisor thread watches the in-flight
//    dispatch: a batch that has not returned after grace x its deadline
//    budget (watchdog_floor for deadline-less requests) is reclaimed --
//    its futures resolve with WatchdogError, the descriptor class's
//    circuit breaker is forced Open, the event is journaled to the
//    engine's health ledger, and a fresh dispatcher thread replaces the
//    wedged one so queued work keeps moving. The wedged thread is
//    retired and joined at stop()/drain()/destruction.
//
// Buffers referenced by a submitted request are non-owning: the caller
// keeps them alive and unaliased (no two in-flight requests writing one
// output buffer) until the request's future resolves. A WatchdogError
// resolution is the one exception: the wedged dispatcher may still be
// touching the buffers after the future resolves, so they stay borrowed
// until stop() or drain() returns (which joins the retired thread).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "iatf/common/status.hpp"
#include "iatf/core/engine.hpp"
#include "iatf/resilience/resilience.hpp"
#include "iatf/sched/group_scheduler.hpp"

namespace iatf::serve {

/// Caller-chosen tenant identity. Tenants are created on first use
/// (weight 1, shared default quota); set_tenant_weight adjusts shares.
using TenantId = std::uint32_t;

/// Server construction knobs. Defaults suit a mid-size serving tier;
/// every field can be tightened for tests.
struct ServeConfig {
  /// Total queued requests across all tenants (>= 1). Submissions past
  /// this bound hit `overload`.
  std::size_t queue_capacity = 1024;
  /// Queued requests one tenant may hold (0 = no per-tenant bound
  /// beyond queue_capacity). Submissions past the quota hit `overload`
  /// even when the shared queue has space.
  std::size_t per_tenant_quota = 0;
  /// Most single requests merged into one grouped dispatch (>= 1).
  std::size_t max_coalesce = 64;
  /// Queue-full behaviour (reuses the engine's overload taxonomy).
  resilience::OverloadPolicy overload = resilience::OverloadPolicy::Block;
  /// Deadline applied to requests submitted without one (0 = none).
  std::chrono::nanoseconds default_deadline{0};
  /// Watchdog stall multiplier: a dispatched batch that has not returned
  /// after grace x its deadline budget is reclaimed (futures resolve
  /// with WatchdogError, the class breaker is forced Open, the
  /// dispatcher is respawned). 0 disables supervision entirely (the
  /// default: no supervisor thread is started).
  double watchdog_grace = 0.0;
  /// Stall budget for requests dispatched without a deadline, and the
  /// minimum budget for very tight deadlines (a near-deadline request
  /// must not be reclaimed faster than it could plausibly execute).
  std::chrono::nanoseconds watchdog_floor{1'000'000'000};
  /// Supervisor poll period (also bounds reclamation latency).
  std::chrono::nanoseconds watchdog_poll{10'000'000};
};

/// Cooperative cancellation handle for queued requests. A network
/// front-end mints one token per request (or per connection) and flags
/// it when the client goes away; the dispatcher checks the token at
/// dequeue -- the same point deadline shedding happens -- and resolves
/// a flagged request with CancelledError instead of dispatching it.
/// Cancellation is advisory past that point: a request already inside
/// a dispatch completes normally (its result is simply unwanted), and
/// sibling requests coalesced with a cancelled one are never disturbed.
using CancelToken = std::shared_ptr<std::atomic<bool>>;

inline CancelToken make_cancel_token() {
  return std::make_shared<std::atomic<bool>>(false);
}

inline void cancel(const CancelToken& token) noexcept {
  if (token) {
    token->store(true, std::memory_order_relaxed);
  }
}

/// Per-submission options.
struct SubmitOptions {
  TenantId tenant = 0;
  /// Relative deadline budget for this request, covering queue time and
  /// execution start; 0 = ServeConfig::default_deadline. An expired
  /// request is shed at dequeue with TimeoutError, never dispatched.
  std::chrono::nanoseconds deadline{0};
  /// Optional cancellation handle (see CancelToken above); null means
  /// the request cannot be cancelled.
  CancelToken cancel;
};

/// Per-tenant accounting inside ServerStats.
struct TenantStats {
  TenantId tenant = 0;
  std::uint32_t weight = 1;
  std::uint64_t submitted = 0;     ///< requests offered by this tenant
  std::uint64_t served = 0;        ///< requests dequeued for execution
  std::uint64_t shed_expired = 0;  ///< shed at dequeue: deadline expired
  std::uint64_t shed_overflow = 0; ///< shed at submit: queue/quota full
  std::uint64_t cancelled = 0;     ///< cancelled by stop()/refused late
};

/// One coherent snapshot of the server's counters (mirrored by the C
/// API's iatf_server_stats). Taken under the queue lock, so the global
/// fields are mutually consistent.
struct ServerStats {
  std::size_t queued = 0;         ///< requests currently queued
  std::size_t queue_capacity = 0; ///< configured shared bound
  std::size_t inflight = 0;       ///< requests currently executing
  std::uint64_t submitted = 0;    ///< total requests offered
  std::uint64_t completed = 0;    ///< requests that finished execution
  std::uint64_t dispatch_calls = 0; ///< engine dispatches (1 per batch)
  /// Requests that shared their dispatch with at least one coalesce-mate
  /// (the ISSUE's `server_coalesced` acceptance counter).
  std::uint64_t coalesced_requests = 0;
  /// Histogram of requests-per-dispatch; bucket upper bounds are
  /// 1, 2, 4, 8 and unbounded. Mass above the first bucket means
  /// cross-tenant coalescing is collapsing traffic onto grouped calls.
  static constexpr std::size_t kCoalesceBuckets = 5;
  std::array<std::uint64_t, kCoalesceBuckets> coalesce_hist{};
  std::uint64_t shed_expired = 0;  ///< dequeue-time deadline sheds
  std::uint64_t shed_overflow = 0; ///< submit-time queue-full sheds
  std::uint64_t cancelled = 0;     ///< stop()-cancelled + late refusals
  std::uint64_t degraded_inline = 0; ///< DegradeToRef inline executions
  std::uint64_t watchdog_kicks = 0;  ///< stalled dispatches reclaimed
  std::uint64_t heartbeats = 0;      ///< dispatcher rounds started
  std::vector<TenantStats> tenants;  ///< ascending tenant id
};

/// Stride scheduler over a dynamic tenant population: every tenant owns
/// a virtual-time `pass`; pick() selects the smallest pass among the
/// currently runnable tenants and charge() advances the chosen tenant by
/// kScale / weight, so long-run dispatch shares converge to the weight
/// ratios. activate() re-aligns a tenant that went idle with the global
/// virtual time, so sleeping never accumulates credit (an idle tenant
/// cannot burst-starve the others when it wakes). Deterministic: ties
/// break toward the lower tenant id. Not thread-safe (the Server calls
/// it under its queue lock).
class WeightedPicker {
public:
  static constexpr std::uint64_t kScale = 1u << 20;

  /// Set (or create with) `weight` >= 1; existing pass is preserved.
  void set_weight(TenantId tenant, std::uint32_t weight);
  std::uint32_t weight(TenantId tenant) const;

  /// Tenant became runnable (its queue turned non-empty).
  void activate(TenantId tenant);

  /// Smallest-pass runnable tenant (ties -> lower id). `runnable` must
  /// be non-empty; unknown ids are treated as weight-1 tenants.
  TenantId pick(std::span<const TenantId> runnable) const;

  /// Account one dequeued request of `tenant`.
  void charge(TenantId tenant);

private:
  struct State {
    std::uint64_t pass = 0;
    std::uint32_t weight = 1;
  };
  State& state_for(TenantId tenant);
  std::unordered_map<TenantId, State> states_;
  std::uint64_t vtime_ = 0; ///< pass of the most recently charged tenant
};

namespace detail {
struct Request; // queue node; defined in server.cpp
}

class Server {
public:
  /// Completion callback for single-request submissions. Runs on the
  /// dispatcher thread (or the submitting thread for requests resolved
  /// at submit time) with the request's final status: Ok with the
  /// BatchHealth, or the error class the future carries. Callbacks must
  /// be fast and must not throw (exceptions are swallowed); the future
  /// is always resolved as well.
  using Completion = std::function<void(Status, const BatchHealth&)>;
  /// Completion callback for grouped submissions; the span is empty on
  /// failure statuses.
  using GroupedCompletion =
      std::function<void(Status, std::span<const BatchHealth>)>;

  /// Binds to `engine` (non-owning) and starts the dispatcher thread.
  /// The engine must outlive this Server (enforced: ~Engine aborts while
  /// servers are attached).
  explicit Server(Engine& engine, ServeConfig config = {});
  ~Server(); ///< stop(): cancels queued work, joins the dispatcher

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Queue C = alpha * op_a(A) * op_b(B) + beta * C over the batch.
  /// Buffers are borrowed until the future resolves.
  template <class T>
  std::future<BatchHealth>
  submit_gemm(Op op_a, Op op_b, T alpha, const CompactBuffer<T>& a,
              const CompactBuffer<T>& b, T beta, CompactBuffer<T>& c,
              SubmitOptions opts = {}, Completion on_complete = nullptr);

  /// Queue op_a(A) X = alpha B (Left) or X op_a(A) = alpha B (Right);
  /// B is overwritten by X.
  template <class T>
  std::future<BatchHealth>
  submit_trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
              const CompactBuffer<T>& a, CompactBuffer<T>& b,
              SubmitOptions opts = {}, Completion on_complete = nullptr);

  /// Queue a pre-assembled grouped call (segments copied; buffers
  /// borrowed). Dispatched as-is -- grouped submissions do not coalesce
  /// with other requests, their segments already amortise the call.
  template <class T>
  std::future<std::vector<BatchHealth>>
  submit_grouped(std::span<const sched::GemmSegment<T>> segments,
                 SubmitOptions opts = {},
                 GroupedCompletion on_complete = nullptr);
  template <class T>
  std::future<std::vector<BatchHealth>>
  submit_grouped(std::span<const sched::TrsmSegment<T>> segments,
                 SubmitOptions opts = {},
                 GroupedCompletion on_complete = nullptr);

  /// Weighted-fair share for `tenant` (>= 1; default 1). Takes effect
  /// from the next dispatch decision.
  void set_tenant_weight(TenantId tenant, std::uint32_t weight);

  /// Swap the queue-full policy at runtime (applies to new submissions).
  void set_overload_policy(resilience::OverloadPolicy policy);

  /// Enable (grace > 0) or disable (grace == 0) watchdog supervision at
  /// runtime. Starts the supervisor thread on first enable; disabling
  /// leaves the thread idle (dispatches are simply no longer
  /// registered). See ServeConfig::watchdog_grace / watchdog_floor.
  void set_watchdog(double grace, std::chrono::nanoseconds floor =
                                      std::chrono::nanoseconds{0});

  /// Operational freeze: pause() stops dispatching (submissions still
  /// queue, bounded as usual); resume() restarts. drain()/stop()
  /// override a pause -- a paused server still drains to completion.
  void pause();
  void resume();

  /// Refuse new submissions and complete everything queued and in
  /// flight; returns once the server is idle and the dispatcher has
  /// exited. Terminal and idempotent; safe to race with stop().
  void drain();

  /// Refuse new submissions, complete in-flight work, and cancel every
  /// still-queued request with CancelledError. Terminal, idempotent,
  /// safe to call concurrently and from multiple threads.
  void stop();

  /// True while submissions are accepted (before drain()/stop()).
  bool accepting() const;

  ServerStats stats() const;
  Engine& engine() noexcept { return engine_; }

private:
  struct Tenant {
    std::deque<std::unique_ptr<detail::Request>> q;
    std::uint64_t submitted = 0;
    std::uint64_t served = 0;
    std::uint64_t shed_expired = 0;
    std::uint64_t shed_overflow = 0;
    std::uint64_t cancelled = 0;
  };
  enum class Phase : std::uint8_t { Running, Draining, Stopping };

  void enqueue(std::unique_ptr<detail::Request> r,
               const SubmitOptions& opts);
  /// Dispatcher main loop for one dispatcher generation. A thread whose
  /// `epoch` no longer matches dispatcher_epoch_ was retired by the
  /// watchdog: it exits without touching dispatcher_done_ or the queue.
  void run_dispatcher(std::uint64_t epoch);
  /// One dequeue -> coalesce -> execute round. `lk` is held on entry and
  /// exit, released around the engine call.
  void dispatch_round(std::unique_lock<std::mutex>& lk,
                      std::uint64_t epoch);
  void execute_batch(
      std::vector<std::shared_ptr<detail::Request>> batch) noexcept;
  template <class T>
  void run_coalesced_gemm(
      std::vector<std::shared_ptr<detail::Request>>& batch);
  template <class T>
  void run_coalesced_trsm(
      std::vector<std::shared_ptr<detail::Request>>& batch);
  void cancel_queued(std::unique_lock<std::mutex>& lk);
  void join_dispatcher();
  Tenant& tenant_for(TenantId id); ///< mu_ held

  /// Supervisor loop: polls the registered in-flight dispatch and
  /// reclaims it once past its stall deadline.
  void run_watchdog();
  /// Reclaim the registered dispatch: retire the wedged dispatcher
  /// thread, spawn a replacement, fail the batch with WatchdogError and
  /// trip the class breaker. `lk` held on entry/exit, released around
  /// the resolutions.
  void reclaim_inflight(std::unique_lock<std::mutex>& lk);
  /// Force the stalled request's descriptor class Open on the engine's
  /// breaker (journaled to the health ledger by the engine).
  void trip_class(const detail::Request& r);
  void stop_watchdog();

  Engine& engine_;
  ServeConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< dispatcher waits for work
  std::condition_variable space_cv_; ///< Block submitters wait for space
  std::condition_variable idle_cv_;  ///< drain()/stop() wait for quiesce
  std::unordered_map<TenantId, Tenant> tenants_;
  WeightedPicker picker_;
  Phase phase_ = Phase::Running;
  bool paused_ = false;
  bool dispatcher_done_ = false;
  std::size_t queued_ = 0;
  std::size_t inflight_ = 0;       ///< dispatcher-executed requests
  std::size_t inline_running_ = 0; ///< DegradeToRef on submitter threads

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dispatch_calls_ = 0;
  std::uint64_t coalesced_requests_ = 0;
  std::array<std::uint64_t, ServerStats::kCoalesceBuckets>
      coalesce_hist_{};
  std::uint64_t shed_expired_ = 0;
  std::uint64_t shed_overflow_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t degraded_inline_ = 0;
  std::uint64_t watchdog_kicks_ = 0;
  std::uint64_t heartbeats_ = 0;

  /// The (single) dispatch currently executing with mu_ released,
  /// registered -- only while the watchdog is enabled -- so the
  /// supervisor can reclaim it if the dispatcher wedges. Requests are
  /// shared between the executing batch and this registration; the
  /// per-request settled flag makes resolution exactly-once regardless
  /// of which side gets there first.
  struct InflightDispatch {
    std::vector<std::shared_ptr<detail::Request>> batch;
    std::chrono::steady_clock::time_point stall_at{};
    bool active = false;
  };
  InflightDispatch inflight_dispatch_;
  std::uint64_t dispatcher_epoch_ = 0; ///< current dispatcher generation
  bool watchdog_stop_ = false;
  std::condition_variable watchdog_cv_; ///< wakes the supervisor early
  std::vector<std::thread> zombies_; ///< retired dispatchers to join

  std::mutex join_mu_; ///< serialises dispatcher join across stop/drain
  std::thread dispatcher_;
  std::thread watchdog_;
};

} // namespace iatf::serve
