// iatf::net -- the "iatf-wire 1" framing protocol.
//
// Everything the daemon reads off a socket flows through this header's
// strict decoder before any engine code sees it, so the decoder is the
// trust boundary: it must classify every possible byte sequence --
// truncated, oversized, bit-flipped, adversarial -- as either a
// well-formed frame or a stable WireError, without crashing, leaking,
// or reading out of bounds. It is a pure byte-in/event-out state
// machine (no sockets, no time, no allocation beyond the bounded frame
// buffer), which is what makes it directly fuzzable
// (tests/fuzz/test_fuzz_wire.cpp).
//
// Frame layout (all integers little-endian):
//
//   offset size field
//   0      4    magic        "IATF" (0x46544149)
//   4      1    version      1
//   5      1    type         FrameType
//   6      2    reserved     must be 0
//   8      8    request_id   client-chosen correlation id
//   16     4    payload_len  bounded by the receiver's max_payload
//   20     4    payload_crc  CRC-32 (IEEE) over the payload bytes
//   24     ..   payload
//
// Error discipline: a header whose framing cannot be trusted (bad
// magic, unknown version, non-zero reserved bits, oversized length) is
// FATAL -- the receiver answers with one ERROR frame and closes,
// because byte boundaries beyond it are unknowable. A frame whose
// header is self-consistent but whose payload is bad (CRC mismatch,
// malformed submit, bogus enum) is NON-FATAL: the frame is rejected
// with an ERROR frame carrying the offending request_id and the
// connection keeps its framing. The decoder never throws on input
// bytes; only on programmer error (feeding a failed decoder).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "iatf/common/types.hpp"

namespace iatf::net {

inline constexpr std::uint32_t kWireMagic = 0x46544149u; // "IATF"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
/// Default bound on payload_len; the daemon's --max-payload-mb knob
/// tightens or widens it per deployment.
inline constexpr std::size_t kDefaultMaxPayload = 16u << 20;

/// Frame types of iatf-wire 1. A connection must open with Hello (the
/// version handshake); anything else first is a Protocol error.
enum class FrameType : std::uint8_t {
  Hello = 1,      ///< client->server: u32 wire version
  HelloAck = 2,   ///< server->client: version + caps
  SubmitGemm = 3, ///< client->server: descriptor + A/B/C data
  Result = 4,     ///< server->client: status (+ C data when Ok)
  Error = 5,      ///< server->client: stable wire-level refusal
  Ping = 6,       ///< client->server: liveness probe (empty payload)
  Pong = 7,       ///< server->client: probe answer (empty payload)
  Cancel = 8,     ///< client->server: cancel the queued request_id
  Goodbye = 9,    ///< client->server: no more submits; close when idle
};

/// Stable wire-level error taxonomy (values are wire format; never
/// renumber). `fatal` below says which of these end the connection.
enum class WireError : std::uint32_t {
  None = 0,
  BadMagic = 1,       ///< fatal: stream is not iatf-wire
  BadVersion = 2,     ///< fatal: unknown protocol revision
  BadReserved = 3,    ///< fatal: reserved header bits set
  Oversized = 4,      ///< fatal: payload_len above the receiver bound
  BadType = 5,        ///< frame skipped: unknown FrameType
  BadCrc = 6,         ///< frame skipped: payload CRC mismatch
  BadPayload = 7,     ///< frame skipped: malformed/ill-sized payload
  Protocol = 8,       ///< frame refused: wrong state (no Hello, dup id)
  Busy = 9,           ///< connection shed at accept (connection cap)
  ShuttingDown = 10,  ///< submit refused: daemon is draining
  UnknownRequest = 11,///< cancel of an id that is not pending
  Backpressure = 12,  ///< submit refused: per-connection cap reached
};

const char* to_string(FrameType type) noexcept;
const char* to_string(WireError error) noexcept;
/// True for errors after which the byte stream cannot be re-framed.
bool is_fatal(WireError error) noexcept;

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) -- the same
/// polynomial the health ledger journals with.
std::uint32_t crc32(const void* data, std::size_t size) noexcept;

struct FrameHeader {
  std::uint8_t version = kWireVersion;
  FrameType type = FrameType::Hello;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Serialise one frame (header + CRC computed here) onto `out`.
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint64_t request_id,
                  std::span<const std::uint8_t> payload);

/// Incremental strict decoder: feed() arbitrary byte chunks, then pull
/// next() until NeedMore. After a fatal error the decoder latches: every
/// further next() repeats the error and feed() discards input (the
/// connection is done; remaining bytes are unframeable).
class Decoder {
public:
  explicit Decoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  struct Event {
    enum class Kind { NeedMore, Frame, Error } kind = Kind::NeedMore;
    net::Frame frame;                    ///< valid when kind == Frame
    WireError error = WireError::None;   ///< valid when kind == Error
    std::uint64_t request_id = 0;        ///< offender id when known
    bool fatal = false;                  ///< close after answering
  };

  void feed(const void* data, std::size_t size);
  Event next();

  std::size_t buffered() const noexcept { return buf_.size() - pos_; }
  bool failed() const noexcept { return fatal_ != WireError::None; }
  std::size_t max_payload() const noexcept { return max_payload_; }

private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0; ///< consumed prefix of buf_
  std::size_t max_payload_;
  WireError fatal_ = WireError::None;
  std::uint64_t fatal_id_ = 0;
};

// ---- Payload codecs ---------------------------------------------------
//
// Fixed little-endian layouts; every parse_* is total (never throws,
// never reads past the span) and returns WireError::None or the precise
// refusal. Reserved bytes must be zero so revision bumps stay
// detectable.

/// SubmitGemm payload: a 52-byte descriptor followed by the A, B and C
/// batches as contiguous column-major matrices (matrix b of A starts at
/// element b*m*k, and so on). dtype is 's' or 'd'.
struct GemmSubmit {
  char dtype = 'd';
  std::uint8_t op_a = 0; ///< iatf::Op value (0/1/2)
  std::uint8_t op_b = 0;
  std::uint32_t m = 0, n = 0, k = 0, batch = 0;
  std::uint32_t tenant = 0;
  double alpha = 1.0, beta = 0.0;
  /// Client-side relative deadline budget in ms (0 = none); the server
  /// charges socket/decode time since the frame's first byte against it.
  double deadline_ms = 0.0;
  /// Views into the parsed payload (element type per dtype).
  std::span<const std::uint8_t> a, b, c;
};

/// Dimension sanity bounds. The engine itself rejects sizes above the
/// kernel grid with Status::Unsupported; these wire bounds only stop a
/// hostile client from forcing pathological allocations before the
/// engine ever sees the request.
inline constexpr std::uint32_t kMaxWireDim = 4096;
inline constexpr std::uint32_t kMaxWireBatch = 1u << 20;

WireError parse_gemm_submit(std::span<const std::uint8_t> payload,
                            GemmSubmit& out) noexcept;
/// Builder (client side): appends descriptor + data to `payload`.
/// a/b/c sizes must match the descriptor; checked with IATF_CHECK.
void append_gemm_submit(std::vector<std::uint8_t>& payload,
                        const GemmSubmit& submit);

/// Result payload: i32 status, u32 reserved, then the C batch
/// (column-major contiguous) iff status == 0.
struct ResultMsg {
  std::int32_t status = 0;
  std::span<const std::uint8_t> c;
};
WireError parse_result(std::span<const std::uint8_t> payload,
                       ResultMsg& out) noexcept;
void append_result(std::vector<std::uint8_t>& payload, std::int32_t status,
                   std::span<const std::uint8_t> c);

/// Error payload: u32 WireError code, i32 iatf_status (0 when the
/// refusal is purely wire-level), u16 message length, u16 reserved,
/// message bytes.
struct ErrorMsg {
  WireError code = WireError::None;
  std::int32_t status = 0;
  std::string message;
};
WireError parse_error(std::span<const std::uint8_t> payload,
                      ErrorMsg& out) noexcept;
void append_error(std::vector<std::uint8_t>& payload, WireError code,
                  std::int32_t status, std::string_view message);

/// Hello payload: u32 wire version. HelloAck payload: u32 accepted
/// version, u32 server max_payload, u32 per-connection submit cap.
struct HelloAckMsg {
  std::uint32_t version = kWireVersion;
  std::uint32_t max_payload = 0;
  std::uint32_t max_outstanding = 0;
};
WireError parse_hello(std::span<const std::uint8_t> payload,
                      std::uint32_t& version) noexcept;
void append_hello(std::vector<std::uint8_t>& payload);
WireError parse_hello_ack(std::span<const std::uint8_t> payload,
                          HelloAckMsg& out) noexcept;
void append_hello_ack(std::vector<std::uint8_t>& payload,
                      const HelloAckMsg& ack);

} // namespace iatf::net
