// iatf::net::Client -- a small blocking iatf-wire 1 client, used by the
// loadgen's --replay-over-socket mode, the net tests, and as the
// reference implementation of the client side of the protocol.
//
// Single-threaded by design: one Client is one connection driven by one
// thread (the loadgen gives each replay worker its own Client).
// Submissions are asynchronous at the protocol level -- submit_gemm()
// only sends the frame -- and replies are pulled with next_reply(),
// which blocks up to a timeout. The caller correlates replies to
// submissions by request_id, exactly like the wire does.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "iatf/net/wire.hpp"

namespace iatf::net {

class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect + Hello/HelloAck handshake. Throws iatf::Error on refusal
  /// (including a server Error frame answering the Hello).
  void connect_unix(const std::string& path,
                    std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(5000));
  void connect_tcp(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds timeout =
                       std::chrono::milliseconds(5000));
  void close();
  bool connected() const noexcept { return fd_ >= 0; }
  /// Server capabilities from the handshake.
  const HelloAckMsg& server_caps() const noexcept { return caps_; }

  /// Send one SubmitGemm frame (fields of `submit` fully populated,
  /// data spans included) and return its request id.
  std::uint64_t submit_gemm(const GemmSubmit& submit);
  /// Send a Cancel for an earlier submission.
  void cancel(std::uint64_t request_id);
  /// Liveness probe; answered by a Pong reply.
  std::uint64_t ping();
  /// Announce no further submissions; the server closes once every
  /// outstanding request has been answered.
  void goodbye();

  /// One server-to-client frame, decoded.
  struct Reply {
    FrameType type = FrameType::Error;
    std::uint64_t request_id = 0;
    /// Result frames: iatf status and (when status == 0) the C batch.
    std::int32_t status = 0;
    std::vector<std::uint8_t> c;
    /// Error frames.
    ErrorMsg error;
  };

  /// Block until the next server frame (Result / Error / Pong) or the
  /// timeout. Replies stashed by reply_for() are handed out first, in
  /// arrival order. Returns false on timeout; throws iatf::Error if the
  /// server closed the connection or sent garbage.
  bool next_reply(Reply& out, std::chrono::milliseconds timeout);

  /// Block until the reply for `request_id` arrives or the timeout.
  /// Replies for OTHER requests pulled off the socket along the way are
  /// stashed (the server interleaves: a compute Result can overtake a
  /// later Pong) and served by subsequent reply_for()/next_reply()
  /// calls, so waiting on one id never loses another id's reply.
  bool reply_for(std::uint64_t request_id, Reply& out,
                 std::chrono::milliseconds timeout);

  /// Raw socket (tests use it to kill the connection mid-request).
  int fd() const noexcept { return fd_; }

private:
  void handshake(std::chrono::milliseconds timeout);
  void send_frame(FrameType type, std::uint64_t request_id,
                  std::span<const std::uint8_t> payload);
  /// next_reply without the stash: always pulls from the socket.
  bool pull_reply(Reply& out, std::chrono::milliseconds timeout);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  Decoder decoder_;
  HelloAckMsg caps_;
  std::vector<std::uint8_t> caps_payload_; ///< raw HelloAck payload
  std::deque<Reply> stash_; ///< replies pulled while waiting on an id
};

} // namespace iatf::net
