// iatf::net::NetServer -- the poll-based reactor that serves iatf-wire 1
// over TCP and Unix-domain sockets, bridging socket frames into an
// iatf::serve::Server.
//
// Threading model: ONE reactor thread owns every socket and every piece
// of per-connection state (decoder, write buffer, pending table), so
// connection handling needs no locks at all. The only cross-thread
// structure is the completion queue: serve-side completion callbacks
// (dispatcher thread) push {connection, request, status} records and
// write one byte to a wake pipe; the reactor drains the queue, looks the
// connection up (it may have died -- records for dead connections are
// dropped), serialises the Result frame and queues it for write. The
// queue is held by shared_ptr from every callback, so completions that
// fire after the NetServer is destroyed land in a parked queue instead
// of freed memory.
//
// Robustness contract (DESIGN.md section 16):
//  * Every malformed byte sequence is answered with a stable Error frame
//    (fatal framing errors flush the frame and close; payload-level
//    errors keep the connection).
//  * Bounded everything: read buffering is bounded by the decoder's
//    max_payload, write buffering by max_write_buffer (a client that
//    stops reading is disconnected), per-connection outstanding submits
//    by max_outstanding (excess answered Backpressure), connections by
//    max_connections with OverloadPolicy semantics at accept (Block
//    parks the listener; ShedNewest answers Busy and closes).
//  * Deadline propagation: a submit's deadline budget starts at the
//    frame's first buffered byte, so socket and decode time count
//    against it exactly like queue time does inside the Server.
//  * A dead client's queued requests are cancelled (their tokens flag,
//    the dispatcher sheds them at dequeue); requests from other
//    connections are never disturbed.
//  * drain() closes the listeners, answers new submits ShuttingDown,
//    lets every outstanding request resolve and flush, then drains the
//    underlying Server. stop() tears everything down immediately.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "iatf/net/wire.hpp"
#include "iatf/resilience/resilience.hpp"
#include "iatf/serve/server.hpp"

namespace iatf::net {

struct NetConfig {
  /// Listen on this Unix-domain socket path when non-empty (the path is
  /// unlinked first; stale sockets from a crashed daemon never block a
  /// restart).
  std::string unix_path;
  /// Listen on tcp_host:tcp_port when true; port 0 binds an ephemeral
  /// port reported by NetServer::tcp_port().
  bool tcp = false;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;

  /// Connection cap and what to do at it: Block parks the listeners
  /// (the kernel backlog holds arrivals until a slot frees);
  /// ShedNewest accepts, answers one Error(Busy) frame and closes.
  /// DegradeToRef is meaningless at accept and treated as ShedNewest.
  std::size_t max_connections = 64;
  resilience::OverloadPolicy accept_overload =
      resilience::OverloadPolicy::ShedNewest;

  /// Decoder payload bound (wire Oversized above it).
  std::size_t max_payload = kDefaultMaxPayload;
  /// Outstanding submits one connection may hold (Backpressure above).
  std::size_t max_outstanding = 64;
  /// Queued unsent bytes before a non-reading client is disconnected.
  std::size_t max_write_buffer = 64u << 20;
  /// A connection with queued bytes and no write progress for this long
  /// is a slow client: disconnected, pending requests cancelled.
  std::chrono::milliseconds write_timeout{10000};
};

struct NetStats {
  std::uint64_t accepted = 0;      ///< connections accepted
  std::uint64_t shed_busy = 0;     ///< connections refused at the cap
  std::uint64_t closed = 0;        ///< connections closed (any reason)
  std::uint64_t slow_closes = 0;   ///< closed for write timeout/overflow
  std::uint64_t frames_in = 0;     ///< well-formed frames decoded
  std::uint64_t frames_out = 0;    ///< frames serialised
  std::uint64_t wire_errors = 0;   ///< Error frames sent (all causes)
  std::uint64_t fatal_errors = 0;  ///< ... of which closed the connection
  std::uint64_t submits = 0;       ///< SubmitGemm frames accepted
  std::uint64_t results = 0;       ///< Result frames sent
  std::uint64_t cancels = 0;       ///< Cancel frames honoured
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t connections = 0;   ///< currently open
};

class NetServer {
public:
  /// Binds to `server` (non-owning; must outlive the NetServer).
  NetServer(serve::Server& server, NetConfig config);
  ~NetServer(); ///< stop()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bind + listen on the configured endpoints and start the reactor
  /// thread. Throws iatf::Error (Status::Internal) on any socket
  /// failure, with errno text.
  void start();

  /// Graceful shutdown: stop accepting, refuse new submits with
  /// ShuttingDown, resolve and flush every outstanding request, close
  /// all connections, join the reactor, then drain() the underlying
  /// Server. Idempotent; safe to call instead of stop().
  void drain();

  /// Immediate shutdown: cancel outstanding requests, close all
  /// sockets, join the reactor. Idempotent.
  void stop();

  /// Actual TCP port after start() (useful with tcp_port = 0).
  std::uint16_t tcp_port() const noexcept;

  NetStats stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

} // namespace iatf::net
