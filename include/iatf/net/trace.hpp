// "iatf-trace 1" -- recorded heavy-traffic traces as timestamped JSONL.
//
// One line per submission, plus a header line identifying the format:
//
//   {"format":"iatf-trace","version":1}
//   {"t_us":0,"tenant":0,"kind":"gemm","dtype":"d","m":8,"n":8,"k":8,
//    "batch":8,"deadline_ms":0.000}
//
// t_us is microseconds since the start of the recording; replaying in
// open-loop mode reproduces these arrival times instead of the closed
// feedback loop the loadgen otherwise runs, so a recorded burst stays a
// burst. The format deliberately stores descriptors, not matrix
// contents: replay synthesizes deterministic data per shape, which
// keeps traces tiny (a day of traffic is descriptors, not gigabytes)
// and free of tenant data.
//
// The reader is strict the same way the wire decoder is: a malformed
// line fails the whole load with the line number in the error, because
// a silently half-read trace would replay the wrong workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iatf/common/types.hpp"

namespace iatf::net {

inline constexpr int kTraceVersion = 1;

struct TraceEvent {
  std::int64_t t_us = 0;      ///< microseconds since recording start
  std::uint32_t tenant = 0;
  char kind = 'g';            ///< 'g' = gemm (the only kind in v1)
  char dtype = 'd';           ///< 's' or 'd'
  index_t m = 0, n = 0, k = 0, batch = 0;
  double deadline_ms = 0.0;   ///< 0 = no deadline
};

/// Append-only trace writer; record() is thread-safe (the loadgen's
/// tenant threads all log through one writer). Throws iatf::Error on
/// open/write failure.
class TraceWriter {
public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void record(const TraceEvent& event);
  std::size_t recorded() const noexcept;

private:
  struct Impl;
  Impl* impl_;
};

/// Load a whole trace, sorted by t_us (stable: equal timestamps keep
/// file order). Throws iatf::Error(InvalidArg) naming the offending
/// line on any malformed input.
std::vector<TraceEvent> load_trace(const std::string& path);

/// Serialise one event as its JSONL line (no trailing newline).
std::string trace_line(const TraceEvent& event);

} // namespace iatf::net
