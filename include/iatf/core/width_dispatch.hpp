// Runtime width -> compile-time kernel-class dispatch.
//
// The engine's entry points are templated over the register width in
// bytes (the Bytes parameter threaded through kreg / Registry / plans),
// but user-facing surfaces -- the C API, the serving front end, the
// compact_* free functions -- receive buffers whose width is a runtime
// property (chosen by the active ISA when the buffer was created). This
// helper folds that runtime width back onto the instantiated kernel
// classes exactly once, at the dispatch boundary.
#pragma once

#include <type_traits>
#include <utility>

#include "iatf/common/error.hpp"
#include "iatf/common/types.hpp"

namespace iatf {

/// Invoke `f` with std::integral_constant<int, Bytes> for the kernel
/// class whose register width matches `pack_width` lanes of
/// real_t<T>. Widths outside the instantiated set {16, 32, 64} throw
/// Status::Unsupported -- a diagnosable refusal, never a SIGILL or a
/// silently wrong kernel.
template <class T, class F>
decltype(auto) dispatch_width(index_t pack_width, F&& f) {
  const index_t bytes =
      pack_width * static_cast<index_t>(sizeof(real_t<T>));
  switch (bytes) {
  case 16:
    return std::forward<F>(f)(std::integral_constant<int, 16>{});
  case 32:
    return std::forward<F>(f)(std::integral_constant<int, 32>{});
  case 64:
    return std::forward<F>(f)(std::integral_constant<int, 64>{});
  default:
    throw Error("iatf: no kernel class for pack width " +
                    std::to_string(pack_width) + " (register width " +
                    std::to_string(bytes) + " bytes)",
                Status::Unsupported);
  }
}

} // namespace iatf
