// Convenience front end: compact batched BLAS free functions over the
// process-wide default Engine. This is the API the examples and benchmark
// harness call; applications wanting their own tuning parameters or plan
// cache construct an iatf::Engine instead.
//
// These entry points are width-dispatching: the kernel class (128/256/
// 512-bit backend) is chosen from the output buffer's pack width, so a
// buffer created at the active ISA's width (e.g. through the C API)
// automatically runs on the matching backend. Buffers of a width with no
// instantiated kernel class are refused with Status::Unsupported.
#pragma once

#include "iatf/core/engine.hpp"
#include "iatf/core/width_dispatch.hpp"
#include "iatf/layout/compact.hpp"

namespace iatf {

/// C = alpha * op_a(A) * op_b(B) + beta * C for every matrix in the batch.
/// The health report is empty under the default ExecPolicy::Fast and safe
/// to ignore.
template <class T>
BatchHealth compact_gemm(Op op_a, Op op_b, T alpha,
                         const CompactBuffer<T>& a, const CompactBuffer<T>& b,
                         T beta, CompactBuffer<T>& c) {
  return dispatch_width<T>(c.pack_width(), [&](auto bytes) {
    return Engine::default_engine().gemm<T, decltype(bytes)::value>(
        op_a, op_b, alpha, a, b, beta, c);
  });
}

/// op_a(A) X = alpha B (Left) or X op_a(A) = alpha B (Right); B is
/// overwritten by X for every matrix in the batch.
template <class T>
BatchHealth compact_trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                         const CompactBuffer<T>& a, CompactBuffer<T>& b) {
  return dispatch_width<T>(b.pack_width(), [&](auto bytes) {
    return Engine::default_engine().trsm<T, decltype(bytes)::value>(
        side, uplo, op_a, diag, alpha, a, b);
  });
}

/// Grouped GEMM over variable-size segments (one descriptor each); the
/// size-class scheduler shares one execution plan per distinct
/// descriptor. Returns one BatchHealth per segment, in call order.
/// All segments of one call must share a pack width (the width keys the
/// kernel class); the class is chosen from the first segment's output.
template <class T>
std::vector<BatchHealth>
compact_gemm_grouped(std::span<const sched::GemmSegment<T>> segments) {
  const index_t pw = (!segments.empty() && segments.front().c != nullptr)
                         ? segments.front().c->pack_width()
                         : simd::pack_width_v<T>;
  return dispatch_width<T>(pw, [&](auto bytes) {
    return Engine::default_engine().gemm_grouped<T, decltype(bytes)::value>(
        segments);
  });
}

/// Grouped TRSM over variable-size segments; see compact_gemm_grouped.
template <class T>
std::vector<BatchHealth>
compact_trsm_grouped(std::span<const sched::TrsmSegment<T>> segments) {
  const index_t pw = (!segments.empty() && segments.front().b != nullptr)
                         ? segments.front().b->pack_width()
                         : simd::pack_width_v<T>;
  return dispatch_width<T>(pw, [&](auto bytes) {
    return Engine::default_engine().trsm_grouped<T, decltype(bytes)::value>(
        segments);
  });
}

} // namespace iatf
