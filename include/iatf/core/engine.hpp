// The run-time stage front end: an Engine owns the plan cache and the
// tuning parameters (cache sizes), and hands out immutable execution plans
// keyed by the input descriptor.
//
// "For large groups of matrix batch operations, the run-time stage
// overhead is not significant, since it only generates this execution plan
// at the beginning" (paper section 5.3) -- the cache is what makes repeat
// calls with the same descriptor plan-free.
//
// Concurrency model (DESIGN.md section 9). The cache is sharded and
// read-mostly: a hit performs one atomic shared_ptr load of the shard's
// immutable map snapshot and takes no exclusive lock, so hundreds of
// threads replaying hot descriptors never serialise on a mutex. Misses
// take the shard mutex only to register a single-flight build -- N
// threads missing on the same cold descriptor produce exactly one plan
// build, with the other N-1 waiting on the leader's result. Each shard
// is a bounded LRU (capacity from the constructor or
// $IATF_PLAN_CACHE_CAP, default 512 plans per engine) so an adversarial
// stream of distinct descriptors evicts old plans instead of exhausting
// memory; in-flight executions keep their plan alive through their own
// shared_ptr regardless of eviction.
//
// Tuning state (table / manual override) is an immutable
// generation-counted snapshot swapped atomically (RCU-style): a plan
// build reads one coherent config, never a half-updated mix, and a build
// that raced a reconfiguration is simply not cached (its generation is
// stale) rather than poisoning the fresh cache.
//
// The engine is also the guarded-execution boundary (common/status.hpp):
// under ExecPolicy::Fast the gemm/trsm entry points behave exactly like
// the raw plans; under Check they additionally report numerical hazards
// in a BatchHealth; under Fallback any classified failure is retried on
// the scalar reference path and recorded instead of thrown. A per-call
// deadline (set_call_deadline) bounds each gemm/trsm: expiry surfaces as
// Status::Timeout with partial-work accounting -- it is rethrown, never
// degraded to a fallback recompute, which could only take longer.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "iatf/common/cache_info.hpp"
#include "iatf/common/status.hpp"
#include "iatf/common/types.hpp"
#include "iatf/factor/factor_plan.hpp"
#include "iatf/factor/packed_handle.hpp"
#include "iatf/plan/gemm_plan.hpp"
#include "iatf/plan/trsm_plan.hpp"
#include "iatf/resilience/health_ledger.hpp"
#include "iatf/resilience/resilience.hpp"
#include "iatf/sched/group_scheduler.hpp"

namespace iatf {

namespace tune {
class TuningTable;
struct TuneKey;
} // namespace tune

/// One coherent snapshot of every engine counter (mirrored by the C API's
/// iatf_engine_stats). Counters are individually atomic; the snapshot is
/// taken without stopping concurrent traffic, so fields may be a few
/// operations apart from each other under load.
struct EngineStats {
  std::size_t plan_cache_size = 0;     ///< plans currently cached
  std::size_t plan_cache_capacity = 0; ///< configured LRU bound
  std::size_t hits = 0;         ///< lookups served from a snapshot
  std::size_t misses = 0;       ///< lookups that took the build path
  std::size_t builds = 0;       ///< plan constructions (single-flight:
                                ///< concurrent misses share one build)
  std::size_t tuned = 0;        ///< cached plans built from a tuning record
  std::size_t evictions = 0;    ///< plans evicted by the LRU bound
  std::size_t degraded_calls = 0; ///< guarded calls that degraded
  std::size_t fallback_lanes = 0; ///< lanes recomputed on the ref path
  std::size_t timeout_calls = 0;  ///< calls that exceeded their deadline
  std::size_t grouped_calls = 0;  ///< gemm_grouped/trsm_grouped calls
  /// Histogram of distinct execution plans per non-empty grouped call;
  /// bucket upper bounds are 1, 2, 4, 8 and unbounded. A serving mix
  /// concentrated in the first buckets means the size-class binning is
  /// collapsing ragged traffic onto few plans (the cache-friendly case).
  static constexpr std::size_t kGroupedPlanBuckets = 5;
  std::array<std::size_t, kGroupedPlanBuckets> distinct_plans_per_call{};
  // Self-healing counters (DESIGN.md section 11).
  std::size_t shed_calls = 0;      ///< calls rejected by admission control
  std::size_t ref_routed_calls = 0; ///< whole calls served on the ref path
  std::size_t retries = 0;         ///< transient-failure retry attempts
  // Persistent packed layouts (DESIGN.md section 13): how often the
  // layout propagation paid off versus how often a conversion ran.
  std::size_t packed_reuse_hits = 0; ///< handle operands consumed without
                                     ///< an interleave conversion
  std::size_t packed_repacks = 0;    ///< interleave conversions performed
                                     ///< (pack + repack calls)
  std::size_t verified_kernels = 0;    ///< kernels that passed their canary
  std::size_t quarantined_kernels = 0; ///< kernels pulled from dispatch
  std::size_t breaker_transitions = 0; ///< breaker state changes
  // Multi-ISA dispatch (DESIGN.md section 15): compute calls served per
  // kernel width class. A serving mix stuck on width16 on an AVX-512
  // host usually means buffers were created before the ISA was forced.
  std::size_t width16_calls = 0; ///< calls on the 128-bit backend
  std::size_t width32_calls = 0; ///< calls on the 256-bit backend
  std::size_t width64_calls = 0; ///< calls on the 512-bit backend
};

/// Liveness snapshot of the self-healing layer (the C API's
/// iatf_engine_health): how much of the kernel population is trusted, what
/// the per-class circuit breakers are doing, and the admission pressure.
struct EngineHealth {
  std::size_t verified_kernels = 0;
  std::size_t quarantined_kernels = 0;
  std::size_t breaker_closed = 0;    ///< descriptor-class slots Closed
  std::size_t breaker_open = 0;      ///< slots currently ref-routing
  std::size_t breaker_half_open = 0; ///< slots probing
  std::size_t breaker_transitions = 0;
  std::size_t inflight = 0;     ///< calls currently inside the engine
  std::size_t max_inflight = 0; ///< admission budget (0 = unlimited)
  std::size_t shed_calls = 0;
  std::size_t ref_routed_calls = 0;
  std::size_t retries = 0;
};

class Engine {
public:
  /// Plans cached per engine when neither the constructor argument nor
  /// $IATF_PLAN_CACHE_CAP says otherwise.
  static constexpr std::size_t kDefaultPlanCacheCapacity = 512;
  static constexpr std::size_t kPlanCacheShards = 8;

  /// Tuning parameters default to the detected host caches; pass
  /// CacheInfo::kunpeng920() to reproduce the paper's decisions exactly.
  /// `plan_cache_capacity` bounds the LRU plan cache; 0 means
  /// $IATF_PLAN_CACHE_CAP if set (and positive), else the default.
  explicit Engine(CacheInfo cache = CacheInfo::detect(),
                  std::size_t plan_cache_capacity = 0);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Aborts the process (never UB) when an iatf::serve::Server is still
  /// attached: a live dispatcher thread would otherwise execute on a
  /// destroyed engine. Destroy (or stop()) every Server before its
  /// engine; for default_engine() that means before static destruction
  /// begins, i.e. before main() returns (DESIGN.md section 12).
  ~Engine();

  /// Get or build the plan for a GEMM descriptor. `layout` is part of
  /// the cache key (0 = raw buffers, 1 = packed handles) so the packed
  /// and unpacked variants of one descriptor coexist as distinct entries.
  template <class T, int Bytes = 16>
  std::shared_ptr<const plan::GemmPlan<T, Bytes>>
  plan_gemm(const GemmShape& shape, std::uint8_t layout = 0);

  /// Get or build the plan for a TRSM descriptor; see plan_gemm for
  /// `layout`.
  template <class T, int Bytes = 16>
  std::shared_ptr<const plan::TrsmPlan<T, Bytes>>
  plan_trsm(const TrsmShape& shape, std::uint8_t layout = 0);

  /// C = alpha * op_a(A) * op_b(B) + beta * C for every matrix in the
  /// batch. Shapes are inferred from the buffers and the ops. The returned
  /// report is empty (batch only) under ExecPolicy::Fast.
  template <class T, int Bytes = 16>
  BatchHealth gemm(Op op_a, Op op_b, T alpha, const CompactBuffer<T>& a,
                   const CompactBuffer<T>& b, T beta, CompactBuffer<T>& c);

  /// op_a(A) X = alpha B (Left) or X op_a(A) = alpha B (Right); B is
  /// overwritten by X for every matrix in the batch.
  template <class T, int Bytes = 16>
  BatchHealth trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                   const CompactBuffer<T>& a, CompactBuffer<T>& b);

  /// Grouped GEMM over variable-size segments: each segment carries its
  /// own shape/mode/scalars/batch. Segments are binned by descriptor
  /// (one plan resolution per distinct size class, through the same
  /// sharded single-flight cache as gemm) and, when a thread pool is
  /// attached, their batch slices are interleaved across workers so one
  /// large segment cannot starve the rest. ExecPolicy, the per-call
  /// deadline and per-lane hazard repair apply exactly as for gemm; the
  /// returned vector holds one BatchHealth per segment, in call order.
  template <class T, int Bytes = 16>
  std::vector<BatchHealth>
  gemm_grouped(std::span<const sched::GemmSegment<T>> segments);

  /// Grouped TRSM over variable-size segments; see gemm_grouped.
  template <class T, int Bytes = 16>
  std::vector<BatchHealth>
  trsm_grouped(std::span<const sched::TrsmSegment<T>> segments);

  // --- Persistent packed layouts & fused factorisations (iatf::factor,
  // --- DESIGN.md section 13) -------------------------------------------

  /// Convert a strided column-major batch (matrix b at src + b *
  /// matrix_stride, leading dimension ld) into a persistent PackedHandle.
  /// The one conversion is counted in EngineStats::packed_repacks; every
  /// subsequent engine call consuming the handle skips its pack stage and
  /// counts a packed_reuse_hit per handle operand instead.
  /// `pack_width` selects the interleave factor (and thereby the kernel
  /// width class the handle's compute calls dispatch to); the default is
  /// the paper's 128-bit lane count.
  template <class T>
  factor::PackedHandle<T> pack(const T* src, index_t rows, index_t cols,
                               index_t ld, index_t matrix_stride,
                               index_t batch,
                               index_t pack_width = simd::pack_width_v<T>);

  /// Wrap an already-interleaved buffer in a handle, zero-copy (no
  /// conversion, so no repack is counted).
  template <class T> factor::PackedHandle<T> adopt_packed(CompactBuffer<T> buf);

  /// Refresh a valid handle's contents from a strided column-major batch
  /// of the same shape. Counts one packed_repack and bumps the epoch.
  template <class T>
  void repack(factor::PackedHandle<T>& handle, const T* src, index_t ld,
              index_t matrix_stride);

  /// Convert a handle's contents out to a strided column-major batch.
  /// Read-only: the epoch is untouched and nothing is counted -- exporting
  /// results is the pipeline's one unavoidable conversion.
  template <class T>
  void unpack(const factor::PackedHandle<T>& handle, T* dst, index_t ld,
              index_t matrix_stride);

  /// GEMM over packed handles: identical semantics to the buffer overload
  /// but the plan is cached under the packed layout state (both variants
  /// coexist), three reuse hits are counted, and C's epoch is bumped.
  /// Every handle must be valid or the call throws InvalidArg.
  template <class T, int Bytes = 16>
  BatchHealth gemm(Op op_a, Op op_b, T alpha,
                   const factor::PackedHandle<T>& a,
                   const factor::PackedHandle<T>& b, T beta,
                   factor::PackedHandle<T>& c);

  /// TRSM over packed handles; B's epoch is bumped.
  template <class T, int Bytes = 16>
  BatchHealth trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                   const factor::PackedHandle<T>& a,
                   factor::PackedHandle<T>& b);

  /// Batched Cholesky of the lower triangle in place (A = L L^H per
  /// lane). Guarded execution applies: under Check, non-SPD lanes are
  /// flagged singular; under Fallback they are additionally repaired --
  /// restored to their original input -- instead of poisoning the batch,
  /// while healthy lanes keep their factorisation. The strict upper
  /// triangle is not referenced or written; pad lanes are reset to
  /// identity. Factor plans dispatch no registry kernels, so the kernel
  /// verify-and-quarantine gate and the per-class breaker do not apply.
  template <class T, int Bytes = 16>
  BatchHealth potrf_batch(CompactBuffer<T>& a);

  /// Batched unpivoted LU in place (A = L\U, unit lower diagonal) for
  /// diagonally-dominant batches. Zero/subnormal/non-finite pivots flag
  /// the lane under Check and repair it under Fallback (the reference
  /// factorisation result when finite, the original input otherwise).
  template <class T, int Bytes = 16>
  BatchHealth getrf_nopiv_batch(CompactBuffer<T>& a);

  /// Batched in-place triangular inverse of the `uplo` triangle. Bad
  /// diagonals are flagged/repaired like getrf_nopiv_batch.
  template <class T, int Bytes = 16>
  BatchHealth trtri_batch(Uplo uplo, Diag diag, CompactBuffer<T>& a);

  /// Factorisations over packed handles: one reuse hit, epoch bump.
  template <class T, int Bytes = 16>
  BatchHealth potrf_batch(factor::PackedHandle<T>& a);
  template <class T, int Bytes = 16>
  BatchHealth getrf_nopiv_batch(factor::PackedHandle<T>& a);
  template <class T, int Bytes = 16>
  BatchHealth trtri_batch(Uplo uplo, Diag diag,
                          factor::PackedHandle<T>& a);

  /// Grouped heterogeneous factorisation chains: each segment names one
  /// routine and its batch. One admission slot covers the whole call
  /// (like gemm_grouped); plans resolve per distinct descriptor class
  /// through the shared cache and the distinct-plan histogram is updated.
  /// Segments execute sequentially (factor plans are single register
  /// sweeps; there is no per-group work splitting to interleave).
  template <class T, int Bytes = 16>
  std::vector<BatchHealth>
  factor_grouped(std::span<const sched::FactorSegment<T>> segments);

  /// Get or build the plan for a factorisation descriptor. `layout` is
  /// the layout state the plan is keyed under (0 = raw buffers, 1 =
  /// packed handles), mirroring the keying of plan_gemm/plan_trsm.
  template <class T, int Bytes = 16>
  std::shared_ptr<const factor::FactorPlan<T, Bytes>>
  plan_factor(const factor::FactorShape& shape, std::uint8_t layout = 0);

  const CacheInfo& cache_info() const noexcept { return cache_; }

  /// Guarding level for gemm/trsm. Fast (the default) is the seed
  /// behaviour: failures throw, no health scanning, no snapshots.
  void set_policy(ExecPolicy policy) noexcept {
    policy_.store(policy, std::memory_order_relaxed);
  }
  ExecPolicy policy() const noexcept {
    return policy_.load(std::memory_order_relaxed);
  }

  /// Per-call time budget for gemm/trsm: each call computes its deadline
  /// on entry and the dispatch layers stop at the first slice/chunk
  /// boundary past it, throwing a TimeoutError (Status::Timeout) with
  /// partial-work accounting. <= 0 disables (the default). The output
  /// buffer of a timed-out call is partially updated.
  void set_call_deadline(std::chrono::nanoseconds budget) noexcept {
    deadline_ns_.store(budget.count(), std::memory_order_relaxed);
  }
  std::chrono::nanoseconds call_deadline() const noexcept {
    return std::chrono::nanoseconds(
        deadline_ns_.load(std::memory_order_relaxed));
  }

  /// Attach a (non-owning) thread pool; gemm/trsm then execute their plans
  /// across the pool's workers. nullptr restores sequential execution. The
  /// caller keeps the pool alive for as long as it is attached.
  void set_thread_pool(ThreadPool* pool) noexcept {
    pool_.store(pool, std::memory_order_relaxed);
  }
  ThreadPool* thread_pool() const noexcept {
    return pool_.load(std::memory_order_relaxed);
  }

  /// Attach an empirical tuning table (tune/tuning_table.hpp). Plans
  /// built after this consult the table first: a record matching the
  /// descriptor overrides the analytical model, a miss falls through to
  /// the manual override / environment / analytical chain. The cache is
  /// cleared so descriptors planned before the table re-plan against it.
  /// nullptr detaches. The swap is torn-free: in-flight calls either see
  /// the complete old table or the complete new one, never a mix.
  void set_tuning_table(std::shared_ptr<const tune::TuningTable> table);
  std::shared_ptr<const tune::TuningTable> tuning_table() const;

  /// Manual plan override applied to every subsequent plan whose
  /// descriptor misses the tuning table (ablations, experiments). Also
  /// clears the plan cache. clear_plan_tuning() restores the environment
  /// (IATF_FORCE_PACK_A/B, IATF_SLICE_OVERRIDE) / analytical chain.
  void set_plan_tuning(const plan::PlanTuning& tuning);
  void clear_plan_tuning();
  plan::PlanTuning plan_tuning() const;

  /// Rebound the LRU plan cache (>= 1), evicting immediately if the new
  /// capacity is smaller than the current population.
  void set_plan_cache_capacity(std::size_t capacity);
  std::size_t plan_cache_capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Plan-cache statistics (for tests and the plan-cache ablation bench).
  /// Lock-free; exact under concurrency (atomic counters).
  std::size_t plan_cache_size() const;
  std::size_t plan_cache_hits() const noexcept {
    return static_cast<std::size_t>(
        hits_.load(std::memory_order_relaxed));
  }
  std::size_t plan_cache_misses() const noexcept {
    return static_cast<std::size_t>(
        misses_.load(std::memory_order_relaxed));
  }
  /// Plan constructions since the last clear. Single-flight keeps this at
  /// one per cold descriptor no matter how many threads miss on it.
  std::size_t plan_cache_builds() const noexcept {
    return static_cast<std::size_t>(
        builds_.load(std::memory_order_relaxed));
  }
  /// Plans inserted into the cache that were built from a tuning-table
  /// record (cumulative since the last clear/reconfiguration).
  std::size_t plan_cache_tuned() const noexcept {
    return static_cast<std::size_t>(
        tuned_.load(std::memory_order_relaxed));
  }
  std::size_t plan_cache_evictions() const noexcept {
    return static_cast<std::size_t>(
        evictions_.load(std::memory_order_relaxed));
  }
  void clear_plan_cache();

  /// Every counter in one struct (the C API's iatf_engine_stats).
  EngineStats stats() const;

  /// Zero every stats() counter (cache hit/miss/build accounting, degrade
  /// and resilience counters, the grouped histogram). Cache contents, the
  /// kernel-trust ledger and breaker slot states are untouched: those are
  /// state, not statistics.
  void reset_stats();

  /// Snapshot of the self-healing layer; see EngineHealth.
  EngineHealth health() const;

  // --- Self-healing serving layer (DESIGN.md section 11) ---------------

  /// Kernel verify-and-quarantine. On (the default), the first dispatch
  /// of each execution plan canary-checks every registry kernel the plan
  /// references against the scalar reference on a tiny deterministic
  /// batch; kernels that mismatch or throw are quarantined, cached plans
  /// referencing them are invalidated, and rebuilt plans substitute
  /// smaller tile caps that avoid the bad kernel (falling back to the
  /// reference path when no substitute exists). Off restores unconditional
  /// trust in generated kernels (the pre-resilience behaviour).
  void set_kernel_verification(bool on) noexcept {
    verify_kernels_.store(on, std::memory_order_relaxed);
  }
  bool kernel_verification() const noexcept {
    return verify_kernels_.load(std::memory_order_relaxed);
  }

  /// Canary-check every registry kernel of every dtype/width up front
  /// (install-time validation instead of first-dispatch validation).
  /// Returns the number of quarantined kernels afterwards.
  std::size_t self_test();

  /// Admission control: at most `max` gemm/trsm/grouped calls inside the
  /// engine at once; 0 (the default, also $IATF_MAX_INFLIGHT) means
  /// unlimited. What happens to excess calls is set_overload_policy():
  /// Block waits for capacity (bounded by the call deadline), ShedNewest
  /// throws OverloadError (Status::Overloaded), DegradeToRef serves the
  /// call immediately on the scalar reference path.
  void set_max_inflight(std::size_t max) noexcept {
    max_inflight_.store(max, std::memory_order_relaxed);
    admit_cv_.notify_all();
  }
  std::size_t max_inflight() const noexcept {
    return max_inflight_.load(std::memory_order_relaxed);
  }
  void set_overload_policy(resilience::OverloadPolicy policy) noexcept {
    overload_policy_.store(static_cast<std::uint8_t>(policy),
                           std::memory_order_relaxed);
  }
  resilience::OverloadPolicy overload_policy() const noexcept {
    return static_cast<resilience::OverloadPolicy>(
        overload_policy_.load(std::memory_order_relaxed));
  }

  /// Transient-fault retry under ExecPolicy::Fallback: allocation and
  /// worker failures are retried up to max_attempts total attempts with
  /// capped exponential backoff before degrading to the reference path.
  /// Also seeded from $IATF_RETRY_MAX. Default: no retry.
  void set_retry_policy(const resilience::RetryPolicy& policy) noexcept {
    retry_attempts_.store(policy.max_attempts, std::memory_order_relaxed);
    retry_base_ns_.store(policy.base_delay.count(),
                         std::memory_order_relaxed);
    retry_seed_.store(policy.jitter_seed, std::memory_order_relaxed);
  }
  resilience::RetryPolicy retry_policy() const noexcept {
    resilience::RetryPolicy p;
    p.max_attempts = retry_attempts_.load(std::memory_order_relaxed);
    p.base_delay = std::chrono::nanoseconds(
        retry_base_ns_.load(std::memory_order_relaxed));
    p.jitter_seed = retry_seed_.load(std::memory_order_relaxed);
    return p;
  }

  /// Degradation circuit breaker over descriptor classes; see
  /// resilience::BreakerConfig (window == 0 disables, the default; also
  /// seeded from $IATF_BREAKER_WINDOW). Reconfiguring resets every slot.
  void set_breaker_config(const resilience::BreakerConfig& config) {
    breaker_.configure(config);
  }
  resilience::BreakerConfig breaker_config() const {
    return breaker_.config();
  }
  /// Breaker state of the descriptor class a shape hashes to (tests;
  /// the class identity includes dtype and SIMD width, hence templated).
  template <class T, int Bytes = 16>
  resilience::BreakerState gemm_breaker_state(const GemmShape& shape) const;
  template <class T, int Bytes = 16>
  resilience::BreakerState trsm_breaker_state(const TrsmShape& shape) const;

  // --- Crash-consistent health ledger (DESIGN.md section 14) -----------

  /// Attach a HealthLedger at `path`, load it, and replay its records:
  /// journaled kernel quarantines re-quarantine (replay never verifies,
  /// so "verify never resurrects" holds across restarts), breaker-trip
  /// and watchdog records seed their class slots toward a HalfOpen probe
  /// (no-op while the breaker is disabled), and cached plans touching a
  /// replayed quarantine are invalidated. Subsequent quarantines, breaker
  /// trips and watchdog reclaims are journaled as they happen. Also wired
  /// from $IATF_HEALTH_LEDGER at construction. Returns the load outcome
  /// (wrong-hardware or corrupt-header ledgers attach empty).
  resilience::LedgerLoad set_health_ledger(const std::string& path);

  /// The attached ledger, or nullptr when none is attached. The pointer
  /// stays valid until the next set_health_ledger() call.
  std::shared_ptr<resilience::HealthLedger> health_ledger() const;

  /// Trip the breaker slot of one descriptor class immediately (the
  /// serve-layer watchdog marking a stalled dispatch) and journal the
  /// reclaim. cooldown_calls < 0 uses the breaker's configured cooldown.
  /// No-op while the breaker is disabled; the journal entry is written
  /// either way so the stall survives restarts as a record.
  template <class T, int Bytes = 16>
  void trip_gemm_class(const GemmShape& shape, int cooldown_calls);
  template <class T, int Bytes = 16>
  void trip_trsm_class(const TrsmShape& shape, int cooldown_calls);

  // --- Serving front-end registration (iatf::serve internals) ----------

  /// Called by iatf::serve::Server's constructor/destructor so ~Engine
  /// can enforce the shutdown ordering contract (servers die first).
  /// Not for user code.
  void attach_server() noexcept {
    servers_.fetch_add(1, std::memory_order_relaxed);
  }
  void detach_server() noexcept {
    servers_.fetch_sub(1, std::memory_order_relaxed);
  }
  /// Servers currently bound to this engine (tests, diagnostics).
  std::size_t attached_servers() const noexcept {
    return servers_.load(std::memory_order_relaxed);
  }

  /// The process-wide default engine used by the free functions in
  /// iatf/core/compact_blas.hpp and the C API.
  ///
  /// Teardown contract: the engine is a function-local static, so it is
  /// constructed on first use and destroyed during static destruction in
  /// reverse construction order. The engine owns no threads -- worker
  /// threads live in ThreadPool (whose own destructor joins them), and
  /// single-flight build state is owned by the stacks of the threads in
  /// the call -- so its destructor only releases cached plans. Calling
  /// default_engine() from atexit-era code is therefore safe as long as
  /// that code does not outlive main()'s last use ordering guarantees;
  /// plans handed out earlier stay valid through their shared_ptr even
  /// after the engine itself is gone.
  static Engine& default_engine();

private:
  struct PlanKey {
    char op = 0;    // 'g', 't', 'p' (potrf), 'l' (getrf_np), 'i' (trtri)
    char dtype = 0; // 's','d','c','z'
    int bytes = 0;  // SIMD register width
    index_t m = 0, n = 0, k = 0;
    std::uint8_t op_a = 0, op_b = 0, side = 0, uplo = 0, diag = 0;
    /// Layout state of the operands: 0 = raw compact buffers, 1 = packed
    /// handles. Keying on it keeps both variants of one descriptor live
    /// in the cache side by side.
    std::uint8_t layout = 0;
    index_t batch = 0;

    friend bool operator==(const PlanKey&, const PlanKey&) = default;
  };

  struct PlanKeyHash {
    std::size_t operator()(const PlanKey& k) const noexcept;
  };

  /// Immutable cache entry; `last_used` is the only mutable field and is
  /// a relaxed atomic so hits can bump recency without any lock.
  /// `kernels` lists the registry kernels the plan dispatches through so
  /// a quarantine can invalidate exactly the entries it taints.
  struct CacheEntry {
    std::shared_ptr<const void> plan;
    bool tuned = false;
    std::vector<resilience::KernelId> kernels;
    mutable std::atomic<std::uint64_t> last_used{0};
  };

  using PlanMap =
      std::unordered_map<PlanKey, std::shared_ptr<CacheEntry>, PlanKeyHash>;

  /// Single-flight build state shared by every thread that missed on the
  /// same cold descriptor: the leader builds, the rest wait on `cv`.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::uint64_t generation = 0;
    std::shared_ptr<const void> plan;
    std::exception_ptr error;
  };

  struct Shard {
    mutable std::mutex mu; ///< guards snapshot publication and inflight
    std::atomic<std::shared_ptr<const PlanMap>> snapshot{};
    std::unordered_map<PlanKey, std::shared_ptr<Flight>, PlanKeyHash>
        inflight;
  };

  /// Immutable tuning configuration, swapped whole (RCU-style). A plan
  /// build resolves against exactly one config; `generation` gates the
  /// insert so a build that raced a reconfiguration is not cached.
  struct TuningConfig {
    std::shared_ptr<const tune::TuningTable> table;
    plan::PlanTuning manual{};
    bool has_manual = false;
    std::uint64_t generation = 0;
  };

  Shard& shard_for(const PlanKey& key);

  template <class Plan, class Make>
  std::shared_ptr<const Plan> lookup(const PlanKey& key, Make&& make);

  /// Publish `plan` into the shard's snapshot (copy-on-write), evicting
  /// the least-recently-used entries past the per-shard bound. No-op when
  /// `generation` is stale (the cache was cleared/re-tuned mid-build).
  void insert_plan(Shard& shard, const PlanKey& key,
                   std::shared_ptr<const void> plan, bool tuned,
                   std::vector<resilience::KernelId> kernels,
                   std::uint64_t generation, std::uint64_t now);

  /// Evict least-recently-used entries until `map` fits `cap`.
  void evict_to_capacity(PlanMap& map, std::size_t cap);

  std::size_t shard_capacity() const noexcept;

  /// Bump the generation, publish `next` as the tuning config (when
  /// non-null) and wipe every shard. Serialised by config_mu_.
  void reconfigure(std::shared_ptr<TuningConfig> next);

  /// Table -> manual override -> environment -> analytical default,
  /// resolved against one immutable config snapshot.
  plan::PlanTuning resolve_tuning(const TuningConfig& config,
                                  const tune::TuneKey& key,
                                  bool* from_table) const;

  /// Full gemm/trsm pipelines with an explicit layout state; the public
  /// buffer overloads forward with layout 0, the packed-handle overloads
  /// with layout 1.
  template <class T, int Bytes>
  BatchHealth gemm_at(Op op_a, Op op_b, T alpha, const CompactBuffer<T>& a,
                      const CompactBuffer<T>& b, T beta, CompactBuffer<T>& c,
                      std::uint8_t layout);
  template <class T, int Bytes>
  BatchHealth trsm_at(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                      const CompactBuffer<T>& a, CompactBuffer<T>& b,
                      std::uint8_t layout);

  template <class T, int Bytes>
  BatchHealth guarded_gemm(const GemmShape& shape, T alpha,
                           const CompactBuffer<T>& a,
                           const CompactBuffer<T>& b, T beta,
                           CompactBuffer<T>& c, ExecPolicy policy,
                           ThreadPool* pool, const Deadline* deadline,
                           std::uint8_t layout);
  template <class T, int Bytes>
  BatchHealth guarded_trsm(const TrsmShape& shape, T alpha,
                           const CompactBuffer<T>& a, CompactBuffer<T>& b,
                           ExecPolicy policy, ThreadPool* pool,
                           const Deadline* deadline, std::uint8_t layout);

  /// Admission + deadline + policy dispatch for one factorisation call
  /// (the factor analogue of gemm_at); `factor_execute` is the post-
  /// admission core shared with factor_grouped.
  template <class T, int Bytes>
  BatchHealth factor_dispatch(const factor::FactorShape& shape,
                              CompactBuffer<T>& a, std::uint8_t layout);
  template <class T, int Bytes>
  BatchHealth factor_execute(const factor::FactorShape& shape,
                             CompactBuffer<T>& a, ExecPolicy policy,
                             const Deadline* deadline, std::uint8_t layout);
  template <class T, int Bytes>
  BatchHealth ref_route_factor(const factor::FactorShape& shape,
                               CompactBuffer<T>& a, DegradeEvent event);

  /// Count one non-empty grouped call that resolved `distinct` plans.
  void record_grouped_plans(std::size_t distinct) noexcept;

  // --- Self-healing internals ------------------------------------------

  /// Outcome of the admission gate for one call.
  enum class Admit : std::uint8_t { Run, RefRoute };

  /// Count the call in and apply the overload policy. Returns RefRoute
  /// for DegradeToRef past the budget; throws OverloadError (ShedNewest)
  /// or TimeoutError (Block past the deadline) WITHOUT counting the call
  /// in. On Run/RefRoute the caller must pair with release_call().
  Admit admit_call(const Deadline* deadline);
  void release_call() noexcept;

  /// First-dispatch gate: resolve the plan's verification verdict,
  /// canary-checking any still-untested kernel. Returns false when the
  /// plan references a quarantined kernel (caller must ref-route).
  template <class T, int Bytes, class Plan>
  bool ensure_verified(const Plan& plan);

  /// Canary-check one registry kernel against the scalar reference.
  /// Returns true on match, false on mismatch/throw (caller quarantines).
  template <class T, int Bytes>
  bool verify_kernel(const resilience::KernelUse& use);
  template <class T, int Bytes>
  bool run_gemm_canary(const resilience::KernelUse& use);
  template <class T, int Bytes>
  bool run_trsm_canary(const resilience::KernelUse& use);

  template <class T, int Bytes>
  static PlanKey gemm_plan_key(const GemmShape& shape,
                               std::uint8_t layout = 0);
  template <class T, int Bytes>
  static PlanKey trsm_plan_key(const TrsmShape& shape,
                               std::uint8_t layout = 0);
  template <class T, int Bytes>
  static PlanKey factor_plan_key(const factor::FactorShape& shape,
                                 std::uint8_t layout);

  /// Drop every cached entry referencing a quarantined kernel (their
  /// descriptor classes rebuild through single-flight on the next miss).
  void invalidate_quarantined_plans();

  /// Serve one whole call on the scalar reference path, recording the
  /// degradation. Used for quarantined plans, Open breaker slots and
  /// DegradeToRef admission.
  template <class T, int Bytes>
  BatchHealth ref_route_gemm(const GemmShape& shape, T alpha,
                             const CompactBuffer<T>& a,
                             const CompactBuffer<T>& b, T beta,
                             CompactBuffer<T>& c, DegradeEvent event);
  template <class T, int Bytes>
  BatchHealth ref_route_trsm(const TrsmShape& shape, T alpha,
                             const CompactBuffer<T>& a, CompactBuffer<T>& b,
                             DegradeEvent event);

  template <class T, int Bytes>
  std::size_t self_test_type();

  /// Journal helpers: no-ops while no ledger is attached. Quarantines
  /// and breaker trips are appended at the moment they happen so a
  /// SIGKILL immediately afterwards still finds them on disk.
  void journal_quarantine(const resilience::KernelId& id);
  void journal_breaker_trip(std::size_t slot_hash);
  void journal_watchdog(std::size_t slot_hash);
  void journal_degrade(unsigned events);

  /// breaker_.record + journal when the call tripped the slot Open.
  void record_breaker(std::size_t slot_hash, bool degraded, bool probe);

  CacheInfo cache_;
  std::atomic<ExecPolicy> policy_{ExecPolicy::Fast};
  std::atomic<ThreadPool*> pool_{nullptr};
  std::atomic<std::int64_t> deadline_ns_{0};
  std::atomic<std::size_t> capacity_{kDefaultPlanCacheCapacity};

  std::array<Shard, kPlanCacheShards> shards_;
  std::atomic<std::shared_ptr<const TuningConfig>> tuning_{};
  std::mutex config_mu_; ///< serialises reconfigurations, not lookups
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> tick_{0}; ///< LRU recency clock

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> builds_{0};
  std::atomic<std::uint64_t> tuned_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> degraded_calls_{0};
  std::atomic<std::uint64_t> fallback_lanes_{0};
  std::atomic<std::uint64_t> timeout_calls_{0};
  std::atomic<std::uint64_t> grouped_calls_{0};
  std::array<std::atomic<std::uint64_t>, EngineStats::kGroupedPlanBuckets>
      grouped_plan_hist_{};

  // Self-healing state. All knobs default to the pre-resilience
  // behaviour except kernel verification, which is on (trust is earned).
  resilience::KernelGuard guard_;
  resilience::CircuitBreaker breaker_;
  std::atomic<bool> verify_kernels_{true};
  std::atomic<std::size_t> max_inflight_{0}; ///< 0 = unlimited
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint8_t> overload_policy_{0}; ///< OverloadPolicy::Block
  std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  std::atomic<int> retry_attempts_{1};
  std::atomic<std::int64_t> retry_base_ns_{0};
  std::atomic<std::uint64_t> retry_seed_{0};
  std::atomic<std::uint64_t> shed_calls_{0};
  std::atomic<std::uint64_t> ref_routed_calls_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> packed_reuse_hits_{0};
  std::atomic<std::uint64_t> packed_repacks_{0};
  /// Compute calls per kernel width class: [0]=16B, [1]=32B, [2]=64B.
  std::array<std::atomic<std::uint64_t>, 3> width_calls_{};

  /// Count one compute call against its kernel width class.
  void note_width_call(int bytes) {
    const std::size_t idx = bytes == 32 ? 1 : (bytes == 64 ? 2 : 0);
    width_calls_[idx].fetch_add(1, std::memory_order_relaxed);
  }

  /// iatf::serve::Server instances currently bound to this engine; the
  /// destructor aborts while nonzero (shutdown ordering contract).
  std::atomic<std::size_t> servers_{0};

  /// Crash-consistent health journal; nullptr while none is attached.
  /// The mutex guards pointer swaps only -- the ledger itself is
  /// internally synchronised, so journal helpers copy the shared_ptr and
  /// append outside the lock.
  mutable std::mutex ledger_mu_;
  std::shared_ptr<resilience::HealthLedger> ledger_;
};

} // namespace iatf
