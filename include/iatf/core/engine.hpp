// The run-time stage front end: an Engine owns the plan cache and the
// tuning parameters (cache sizes), and hands out immutable execution plans
// keyed by the input descriptor.
//
// "For large groups of matrix batch operations, the run-time stage
// overhead is not significant, since it only generates this execution plan
// at the beginning" (paper section 5.3) -- the cache is what makes repeat
// calls with the same descriptor plan-free.
//
// The engine is also the guarded-execution boundary (common/status.hpp):
// under ExecPolicy::Fast the gemm/trsm entry points behave exactly like
// the raw plans (one relaxed atomic load of overhead); under Check they
// additionally report numerical hazards in a BatchHealth; under Fallback
// any classified failure -- unsupported plan, missing kernel, workspace
// allocation failure, worker exception, hazardous output -- is retried on
// the scalar reference path and recorded instead of thrown.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "iatf/common/cache_info.hpp"
#include "iatf/common/status.hpp"
#include "iatf/common/types.hpp"
#include "iatf/plan/gemm_plan.hpp"
#include "iatf/plan/trsm_plan.hpp"

namespace iatf {

namespace tune {
class TuningTable;
struct TuneKey;
} // namespace tune

class Engine {
public:
  /// Tuning parameters default to the detected host caches; pass
  /// CacheInfo::kunpeng920() to reproduce the paper's decisions exactly.
  explicit Engine(CacheInfo cache = CacheInfo::detect()) : cache_(cache) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Get or build the plan for a GEMM descriptor.
  template <class T, int Bytes = 16>
  std::shared_ptr<const plan::GemmPlan<T, Bytes>>
  plan_gemm(const GemmShape& shape);

  /// Get or build the plan for a TRSM descriptor.
  template <class T, int Bytes = 16>
  std::shared_ptr<const plan::TrsmPlan<T, Bytes>>
  plan_trsm(const TrsmShape& shape);

  /// C = alpha * op_a(A) * op_b(B) + beta * C for every matrix in the
  /// batch. Shapes are inferred from the buffers and the ops. The returned
  /// report is empty (batch only) under ExecPolicy::Fast.
  template <class T, int Bytes = 16>
  BatchHealth gemm(Op op_a, Op op_b, T alpha, const CompactBuffer<T>& a,
                   const CompactBuffer<T>& b, T beta, CompactBuffer<T>& c);

  /// op_a(A) X = alpha B (Left) or X op_a(A) = alpha B (Right); B is
  /// overwritten by X for every matrix in the batch.
  template <class T, int Bytes = 16>
  BatchHealth trsm(Side side, Uplo uplo, Op op_a, Diag diag, T alpha,
                   const CompactBuffer<T>& a, CompactBuffer<T>& b);

  const CacheInfo& cache_info() const noexcept { return cache_; }

  /// Guarding level for gemm/trsm. Fast (the default) is the seed
  /// behaviour: failures throw, no health scanning, no snapshots.
  void set_policy(ExecPolicy policy) noexcept {
    policy_.store(policy, std::memory_order_relaxed);
  }
  ExecPolicy policy() const noexcept {
    return policy_.load(std::memory_order_relaxed);
  }

  /// Attach a (non-owning) thread pool; gemm/trsm then execute their plans
  /// across the pool's workers. nullptr restores sequential execution. The
  /// caller keeps the pool alive for as long as it is attached.
  void set_thread_pool(ThreadPool* pool) noexcept {
    pool_.store(pool, std::memory_order_relaxed);
  }
  ThreadPool* thread_pool() const noexcept {
    return pool_.load(std::memory_order_relaxed);
  }

  /// Attach an empirical tuning table (tune/tuning_table.hpp). Plans
  /// built after this consult the table first: a record matching the
  /// descriptor overrides the analytical model, a miss falls through to
  /// the manual override / environment / analytical chain. The cache is
  /// cleared so descriptors planned before the table re-plan against it.
  /// nullptr detaches.
  void set_tuning_table(std::shared_ptr<const tune::TuningTable> table);
  std::shared_ptr<const tune::TuningTable> tuning_table() const;

  /// Manual plan override applied to every subsequent plan whose
  /// descriptor misses the tuning table (ablations, experiments). Also
  /// clears the plan cache. clear_plan_tuning() restores the environment
  /// (IATF_FORCE_PACK_A/B, IATF_SLICE_OVERRIDE) / analytical chain.
  void set_plan_tuning(const plan::PlanTuning& tuning);
  void clear_plan_tuning();
  plan::PlanTuning plan_tuning() const;

  /// Plan-cache statistics (for tests and the plan-cache ablation bench).
  std::size_t plan_cache_size() const;
  std::size_t plan_cache_hits() const;
  std::size_t plan_cache_misses() const;
  /// Plans in the cache that were built from a tuning-table record.
  std::size_t plan_cache_tuned() const;
  void clear_plan_cache();

  /// The process-wide default engine used by the free functions in
  /// iatf/core/compact_blas.hpp.
  static Engine& default_engine();

private:
  struct PlanKey {
    char op = 0;    // 'g' or 't'
    char dtype = 0; // 's','d','c','z'
    int bytes = 0;  // SIMD register width
    index_t m = 0, n = 0, k = 0;
    std::uint8_t op_a = 0, op_b = 0, side = 0, uplo = 0, diag = 0;
    index_t batch = 0;

    friend bool operator==(const PlanKey&, const PlanKey&) = default;
  };

  struct PlanKeyHash {
    std::size_t operator()(const PlanKey& k) const noexcept;
  };

  template <class Plan, class Make>
  std::shared_ptr<const Plan> lookup(const PlanKey& key, Make&& make);

  /// Table -> manual override -> environment -> analytical default.
  /// Called under mutex_ from the plan-build path; sets *from_table when
  /// a tuning-table record decided the parameters.
  plan::PlanTuning resolve_tuning_locked(const tune::TuneKey& key,
                                         bool* from_table) const;

  template <class T, int Bytes>
  BatchHealth guarded_gemm(const GemmShape& shape, T alpha,
                           const CompactBuffer<T>& a,
                           const CompactBuffer<T>& b, T beta,
                           CompactBuffer<T>& c, ExecPolicy policy,
                           ThreadPool* pool);
  template <class T, int Bytes>
  BatchHealth guarded_trsm(const TrsmShape& shape, T alpha,
                           const CompactBuffer<T>& a, CompactBuffer<T>& b,
                           ExecPolicy policy, ThreadPool* pool);

  CacheInfo cache_;
  std::atomic<ExecPolicy> policy_{ExecPolicy::Fast};
  std::atomic<ThreadPool*> pool_{nullptr};
  mutable std::mutex mutex_;
  std::unordered_map<PlanKey, std::shared_ptr<const void>, PlanKeyHash>
      plans_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t tuned_ = 0;
  std::shared_ptr<const tune::TuningTable> tune_table_;
  plan::PlanTuning manual_tuning_;
  bool has_manual_tuning_ = false;
};

} // namespace iatf
