// Library version, shared by the C++ API, the C ABI (iatf_version())
// and every tool's --version flag so one constant names a build.
// The minor number tracks the PR sequence growing this repository; the
// wire protocol has its own independent version (net::kWireVersion) so
// library releases never silently revise the on-the-wire contract.
#pragma once

#define IATF_VERSION_MAJOR 0
#define IATF_VERSION_MINOR 10
#define IATF_VERSION_PATCH 0
#define IATF_VERSION_STRING "0.10.0"

namespace iatf {

inline constexpr const char* version_string() noexcept {
  return IATF_VERSION_STRING;
}

} // namespace iatf
