// Empirical search over the residual parameter space the analytical
// model leaves open: pack/no-pack per operand, batch-slice size around
// the Batch Counter's L1 prediction, kernel-variant (tile-cap) choice
// from the registry, and thread-pool chunk granularity.
//
// The search is model-guided in the paper's spirit: the install-time
// pipeline simulator scores every candidate's kernel stream first
// (cycles per madd, plus a packing-traffic proxy), and only the top-k
// ranked candidates are actually timed -- warmup plus median-of-reps on
// the wall clock, each candidate correctness-checked against the scalar
// reference before its time can count. The analytical default is always
// part of the timed set, so the winner is never slower than the untuned
// plan within one measurement session.
#pragma once

#include <vector>

#include "iatf/common/cache_info.hpp"
#include "iatf/common/types.hpp"
#include "iatf/parallel/thread_pool.hpp"
#include "iatf/plan/batch_counter.hpp"
#include "iatf/tune/tuning_table.hpp"

namespace iatf::tune {

/// Search budget and measurement settings.
struct TuneOptions {
  index_t batch = 256;  ///< measurement batch (rounded up to whole groups)
  int reps = 5;         ///< timed repetitions per candidate (median)
  int top_k = 8;        ///< candidates timed after simulator ranking
  bool prune_with_pipesim = true; ///< rank by simulated cycles first
  ThreadPool* pool = nullptr;     ///< when set, chunk granularity joins
                                  ///< the space and timing uses the pool
  std::uint64_t seed = 0x1a7fu;   ///< measurement-data RNG seed
};

/// One point of the search space with its simulator ranking.
struct Candidate {
  plan::PlanTuning tuning;
  double sim_score = 0.0;    ///< predicted cycles per madd (lower wins)
  double gflops = 0.0;       ///< measured; 0 until timed
  bool analytical = false;   ///< echo of the untuned default plan
};

/// Simulated cycles per madd of the registry GEMM kernel for an mc x nc
/// tile at depth k (the optimizer-scheduled stream on the Kunpeng 920
/// model). Used to rank kernel-variant candidates before timing; returns
/// a large sentinel when the spec is outside the register budget.
double simulated_gemm_score(int mc, int nc, index_t k, int elem_bytes);

/// Enumerate the candidate space for a descriptor. Every tuning field is
/// explicit (no "auto" values) so records round-trip bit-identically.
template <class T, int Bytes = 16>
std::vector<Candidate> gemm_candidates(const GemmShape& shape,
                                       const CacheInfo& cache,
                                       const TuneOptions& opts = {});
template <class T, int Bytes = 16>
std::vector<Candidate> trsm_candidates(const TrsmShape& shape,
                                       const CacheInfo& cache,
                                       const TuneOptions& opts = {});

/// Tune one descriptor: enumerate, prune via the simulator, time the
/// survivors, and return the winning record (winner >= analytical
/// baseline by construction -- the baseline is always timed too).
template <class T, int Bytes = 16>
TuneRecord tune_gemm(const GemmShape& shape, const CacheInfo& cache,
                     const TuneOptions& opts = {});
template <class T, int Bytes = 16>
TuneRecord tune_trsm(const TrsmShape& shape, const CacheInfo& cache,
                     const TuneOptions& opts = {});

/// Runtime-dtype dispatch for the C API and the offline tuner CLI.
/// Throws Status::InvalidArg for an unknown dtype tag.
TuneRecord tune_gemm_dyn(char dtype, const GemmShape& shape,
                         const CacheInfo& cache, const TuneOptions& opts);
TuneRecord tune_trsm_dyn(char dtype, const TrsmShape& shape,
                         const CacheInfo& cache, const TuneOptions& opts);

} // namespace iatf::tune
