// Canonical input descriptors and the hardware signature for the
// empirical autotuner (iatf::tune).
//
// The paper's run-time stage keys its execution plans on the input matrix
// properties; the tuner keys its persistent records the same way, minus
// the batch length: the batch counter already normalises the batch into
// L1-sized slices of whole interleave groups, so a tuned parameter set is
// a property of the per-matrix problem, not of how many matrices arrive.
// Records additionally carry a hardware signature so a tuning table
// copied to a different machine degrades to the analytical model instead
// of applying stale measurements.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "iatf/common/cache_info.hpp"
#include "iatf/common/types.hpp"

namespace iatf::tune {

/// Canonical descriptor of one tunable problem class (GEMM or TRSM).
struct TuneKey {
  char op = 'g';    ///< 'g' = GEMM, 't' = TRSM
  char dtype = 's'; ///< s, d, c or z
  int bytes = 16;   ///< SIMD register width of the kernel set
  index_t m = 0, n = 0, k = 0;
  std::uint8_t op_a = 0, op_b = 0, side = 0, uplo = 0, diag = 0;

  friend bool operator==(const TuneKey&, const TuneKey&) = default;
};

struct TuneKeyHash {
  std::size_t operator()(const TuneKey& key) const noexcept;
};

/// Keys for the two descriptor kinds (batch deliberately dropped).
template <class T, int Bytes = 16> TuneKey gemm_key(const GemmShape& shape) {
  TuneKey key;
  key.op = 'g';
  key.dtype = blas_prefix_v<T>[0];
  key.bytes = Bytes;
  key.m = shape.m;
  key.n = shape.n;
  key.k = shape.k;
  key.op_a = static_cast<std::uint8_t>(shape.op_a);
  key.op_b = static_cast<std::uint8_t>(shape.op_b);
  return key;
}

template <class T, int Bytes = 16> TuneKey trsm_key(const TrsmShape& shape) {
  TuneKey key;
  key.op = 't';
  key.dtype = blas_prefix_v<T>[0];
  key.bytes = Bytes;
  key.m = shape.m;
  key.n = shape.n;
  key.op_a = static_cast<std::uint8_t>(shape.op_a);
  key.side = static_cast<std::uint8_t>(shape.side);
  key.uplo = static_cast<std::uint8_t>(shape.uplo);
  key.diag = static_cast<std::uint8_t>(shape.diag);
  return key;
}

/// One-line human-readable rendering (also the table file's key fields).
std::string to_string(const TuneKey& key);

/// Serialise/parse the key as the leading fields of one table record
/// line. parse_key returns false on malformed input without throwing.
void write_key(std::ostream& out, const TuneKey& key);
bool parse_key(std::istream& in, TuneKey& key);

/// Single-token signature of the tuning-relevant hardware: architecture,
/// CPU model, cache sizes. Tables recorded under a different signature
/// are ignored at load time (the analytical model is the fallback).
std::string hardware_signature(const CacheInfo& cache);

} // namespace iatf::tune
