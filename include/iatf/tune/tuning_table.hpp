// Persistent tuning database: empirical plan parameters per canonical
// input descriptor, keyed to the hardware they were measured on.
//
// The table is the install-time <-> run-time bridge the analytical model
// alone cannot provide (IAAT and tritonBLAS both pair a model with a
// small empirical search): the offline tuner writes records, the Engine
// consults them before falling back to the analytical defaults. The file
// format is versioned line-oriented text; a corrupt file, an unknown
// version, or a record set measured on different hardware loads as an
// empty table -- the framework silently degrades to the analytical model
// rather than applying wrong parameters.
#pragma once

#include <string>
#include <unordered_map>

#include "iatf/plan/batch_counter.hpp"
#include "iatf/tune/descriptor.hpp"

namespace iatf::tune {

/// One tuned parameter set. Every field is explicit (no "auto" values):
/// a plan built from a record is fully determined by it, which is what
/// makes save -> load -> plan round-trips bit-identical.
struct TuneRecord {
  int pack_a = -1;            ///< 0/1 (GEMM); -1 = keep analytical choice
  int pack_b = -1;            ///< 0/1; -1 = keep analytical choice
  index_t slice_groups = 0;   ///< >0 batch-counter override
  int mc_cap = 0;             ///< >0 kernel-variant tile-row cap
  int nc_cap = 0;             ///< >0 kernel-variant tile-col cap
  index_t chunk_groups = 0;   ///< >0 thread-pool chunk granularity
  double gflops = 0.0;        ///< measured throughput of this record
  double baseline_gflops = 0.0; ///< analytical default, same session

  /// The plan overrides this record encodes.
  plan::PlanTuning tuning() const noexcept {
    plan::PlanTuning t;
    t.force_pack_a = pack_a;
    t.force_pack_b = pack_b;
    t.slice_override = slice_groups;
    t.mc_cap = mc_cap;
    t.nc_cap = nc_cap;
    t.chunk_groups = chunk_groups;
    return t;
  }

  friend bool operator==(const TuneRecord&, const TuneRecord&) = default;
};

/// Outcome of TuningTable::load, for callers that want to report why a
/// file was rejected; every non-Ok outcome leaves the table empty.
enum class LoadResult {
  Ok = 0,
  Missing,          ///< file absent or unreadable
  Corrupt,          ///< bad magic, version or record syntax
  HardwareMismatch, ///< valid file recorded on different hardware
};

const char* to_string(LoadResult result) noexcept;

/// In-memory tuning database. Not internally synchronised: the Engine
/// accesses its (immutable, shared_ptr-held) table under its own lock,
/// and the tuner mutates private copies.
class TuningTable {
public:
  static constexpr int kFormatVersion = 1;

  /// Bound to the host signature by default; tests may pin another.
  explicit TuningTable(std::string hardware = std::string())
      : hardware_(hardware.empty()
                      ? hardware_signature(CacheInfo::detect())
                      : std::move(hardware)) {}

  const std::string& hardware() const noexcept { return hardware_; }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  void clear() { records_.clear(); }

  /// nullptr when the descriptor has no tuned record (analytical model).
  const TuneRecord* lookup(const TuneKey& key) const {
    const auto it = records_.find(key);
    return it == records_.end() ? nullptr : &it->second;
  }

  void insert(const TuneKey& key, const TuneRecord& record) {
    records_[key] = record;
  }

  /// Atomic save: writes a sibling temp file then renames over `path`.
  /// Returns false (leaving any previous file intact) on I/O failure.
  /// Concurrent savers -- other threads or other processes (the autotuner
  /// CLI racing a serving process) -- are serialised on an advisory
  /// `<path>.lock` file where the platform supports flock(); the lock
  /// file persists between saves by design.
  bool save(const std::string& path) const;

  /// Replace the contents from `path`. Any failure -- missing file, bad
  /// version, syntax error, record measured on hardware other than this
  /// table's signature -- clears the table and reports why; the caller's
  /// plans then fall back to the analytical model.
  LoadResult load(const std::string& path);

  /// $IATF_TUNE_FILE when set, else "iatf_tune.tbl" in the working dir.
  static std::string default_path();

  const std::unordered_map<TuneKey, TuneRecord, TuneKeyHash>&
  records() const noexcept {
    return records_;
  }

private:
  std::string hardware_;
  std::unordered_map<TuneKey, TuneRecord, TuneKeyHash> records_;
};

/// Process-environment plan overrides (IATF_FORCE_PACK_A, IATF_FORCE_PACK_B,
/// IATF_SLICE_OVERRIDE); unset or unparsable variables leave the
/// corresponding field on "auto". Forcing no-pack for an operand the plan
/// must gather surfaces as Status::InvalidArg at plan build, exactly like
/// the C++ PlanTuning ablation path.
plan::PlanTuning env_plan_tuning();

/// Work-item granularity override for grouped execution
/// ($IATF_GROUP_GRAIN): interleave groups per scheduler work item,
/// applied to every segment of a grouped call. <= 0 or unset keeps the
/// per-plan choice (tuned chunk_groups, else the scheduler's own
/// slice-bounded heuristic).
index_t env_group_grain();

} // namespace iatf::tune
