// x86-64 wide-register backends: AVX2 (256-bit) and AVX-512 (512-bit).
//
// Full specializations of vec<Real, W> for the lane counts that map onto
// one ymm (float x8 / double x4) or one zmm (float x16 / double x8)
// register. The layout is identical to the generic template -- the member
// is still the GCC vector type, so kreg aggregates, the bench harness's
// "+x" register barriers, and memcpy-based load/store all keep working --
// but fmla/fmls/fsqrt are pinned to the exact hardware instruction
// (vfmadd231 / vfnmadd231 / vsqrt) instead of relying on -ffp-contract to
// fuse the generic `acc + a*b` form. That keeps the per-width numerics
// deterministic across optimization levels, which the cross-ISA
// differential fuzzer depends on.
//
// The 128-bit (SSE2/NEON-model) width deliberately stays on the generic
// template: it is the paper-fidelity baseline and its codegen is already
// a 1:1 lowering, so specializing it would only risk churn on the
// reference path.
//
// Each block is compile-gated: a translation unit built without -mavx2 /
// -mavx512f simply keeps the generic template at those widths (correct,
// synthesized from narrower ops). Runtime gating -- never *executing* a
// wide backend the CPU lacks -- is the job of iatf::simd::detect_isa()
// in isa.hpp.
#pragma once

#include "iatf/simd/vec_generic.hpp"

#if IATF_SIMD_NATIVE && defined(__x86_64__) &&                                 \
    (defined(__AVX2__) || defined(__AVX512F__))
#include <immintrin.h>

// Generates one full specialization. REAL/W pick the template, and the
// three instruction arguments pin fma (acc + a*b), fms (acc - a*b) and
// sqrt; everything else (load/store/broadcast/arithmetic) stays on the
// vector-extension forms, which already lower to single instructions at
// these widths.
#define IATF_VEC_X86_SPEC(REAL, W, INTRIN, FMADD, FNMADD, SQRT)                \
  template <> struct vec<REAL, W> {                                            \
    static constexpr int lanes = W;                                            \
    using real_type = REAL;                                                    \
    typedef REAL native_type __attribute__((vector_size(sizeof(REAL) * W)));   \
                                                                               \
    native_type v;                                                             \
                                                                               \
    vec() = default;                                                           \
    explicit vec(native_type n) : v(n) {}                                      \
                                                                               \
    static vec load(const REAL* p) {                                           \
      vec r;                                                                   \
      std::memcpy(&r.v, p, sizeof(r.v));                                       \
      return r;                                                                \
    }                                                                          \
    void store(REAL* p) const { std::memcpy(p, &v, sizeof(v)); }               \
    static vec broadcast(REAL x) {                                             \
      vec r;                                                                   \
      r.v = x - native_type{};                                                 \
      return r;                                                                \
    }                                                                          \
    static vec zero() { return broadcast(REAL(0)); }                           \
    REAL get(int i) const {                                                    \
      REAL tmp[W];                                                             \
      store(tmp);                                                              \
      return tmp[i];                                                           \
    }                                                                          \
                                                                               \
    friend vec operator+(vec a, vec b) { return vec(a.v + b.v); }              \
    friend vec operator-(vec a, vec b) { return vec(a.v - b.v); }              \
    friend vec operator*(vec a, vec b) { return vec(a.v * b.v); }              \
    friend vec operator/(vec a, vec b) { return vec(a.v / b.v); }              \
                                                                               \
    static vec fma(vec acc, vec a, vec b) {                                    \
      return vec(native_type(                                                  \
          FMADD(INTRIN(a.v), INTRIN(b.v), INTRIN(acc.v))));                    \
    }                                                                          \
    static vec fms(vec acc, vec a, vec b) {                                    \
      return vec(native_type(                                                  \
          FNMADD(INTRIN(a.v), INTRIN(b.v), INTRIN(acc.v))));                   \
    }                                                                          \
    static vec sqrt(vec x) { return vec(native_type(SQRT(INTRIN(x.v)))); }     \
  };

namespace iatf::simd {

#if defined(__AVX2__) && defined(__FMA__)
IATF_VEC_X86_SPEC(float, 8, __m256, _mm256_fmadd_ps, _mm256_fnmadd_ps,
                  _mm256_sqrt_ps)
IATF_VEC_X86_SPEC(double, 4, __m256d, _mm256_fmadd_pd, _mm256_fnmadd_pd,
                  _mm256_sqrt_pd)
#endif

#if defined(__AVX512F__)
IATF_VEC_X86_SPEC(float, 16, __m512, _mm512_fmadd_ps, _mm512_fnmadd_ps,
                  _mm512_sqrt_ps)
IATF_VEC_X86_SPEC(double, 8, __m512d, _mm512_fmadd_pd, _mm512_fnmadd_pd,
                  _mm512_sqrt_pd)
#endif

} // namespace iatf::simd

#undef IATF_VEC_X86_SPEC
#endif // x86 wide backends
