// Width-generic portable SIMD backend (primary template).
//
// The paper's kernels are written in AArch64 assembly over 128-bit NEON
// registers (fmla / fmls / fmul / ldp / stp). This header provides the same
// operation set as a typed value class, generic over the lane count W, so
// the identical kernel *algorithms* (paper Algorithms 2-4) compile to NEON
// on AArch64, to SSE/AVX/AVX-512 on x86-64, and to scalar code elsewhere.
//
// GCC/Clang vector extensions are the primary backend because they are
// correct at ANY width: when W exceeds the native register width the
// compiler synthesizes the operation from narrower instructions, and when
// the translation unit is compiled with the matching ISA enabled
// (-march=native or -mavx2/-mavx512f) each op lowers 1:1 onto one native
// instruction. A plain array fallback keeps other compilers working.
//
// Per-ISA refinements live in sibling headers included by vec.hpp:
//   vec_x86.hpp   -- AVX2/AVX-512 intrinsic specializations (W = 8/16 lanes)
//   vec_neon.hpp  -- NEON intrinsic specializations (128-bit baseline)
//   vec_sve.hpp   -- width-agnostic SVE scaffolding (vector-length queries)
// Include vec.hpp, never this header directly, so specializations are
// always visible before the first instantiation.
#pragma once

#include <cmath>
#include <cstring>

#include "iatf/common/types.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define IATF_SIMD_NATIVE 1
#else
#define IATF_SIMD_NATIVE 0
#endif

namespace iatf::simd {

template <class Real, int W> struct vec {
  static_assert(W > 0 && (W & (W - 1)) == 0, "lane count must be power of 2");
  static constexpr int lanes = W;
  using real_type = Real;

#if IATF_SIMD_NATIVE
  typedef Real native_type __attribute__((vector_size(sizeof(Real) * W)));
#else
  struct native_type {
    Real lane[W];
  };
#endif

  native_type v;

  vec() = default;
  explicit vec(native_type n) : v(n) {}

  /// Load W consecutive reals (no alignment requirement).
  static vec load(const Real* p) {
    vec r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
  }

  /// Store W consecutive reals (no alignment requirement).
  void store(Real* p) const { std::memcpy(p, &v, sizeof(v)); }

  /// All lanes = x (NEON `dup`).
  static vec broadcast(Real x) {
    vec r;
#if IATF_SIMD_NATIVE
    r.v = x - native_type{}; // splat: scalar op vector broadcasts
#else
    for (int i = 0; i < W; ++i) {
      r.v.lane[i] = x;
    }
#endif
    return r;
  }

  static vec zero() { return broadcast(Real(0)); }

  Real get(int i) const {
    Real tmp[W];
    store(tmp);
    return tmp[i];
  }

#if IATF_SIMD_NATIVE
  friend vec operator+(vec a, vec b) { return vec(a.v + b.v); }
  friend vec operator-(vec a, vec b) { return vec(a.v - b.v); }
  friend vec operator*(vec a, vec b) { return vec(a.v * b.v); }
  friend vec operator/(vec a, vec b) { return vec(a.v / b.v); }
#else
  friend vec operator+(vec a, vec b) {
    vec r;
    for (int i = 0; i < W; ++i) {
      r.v.lane[i] = a.v.lane[i] + b.v.lane[i];
    }
    return r;
  }
  friend vec operator-(vec a, vec b) {
    vec r;
    for (int i = 0; i < W; ++i) {
      r.v.lane[i] = a.v.lane[i] - b.v.lane[i];
    }
    return r;
  }
  friend vec operator*(vec a, vec b) {
    vec r;
    for (int i = 0; i < W; ++i) {
      r.v.lane[i] = a.v.lane[i] * b.v.lane[i];
    }
    return r;
  }
  friend vec operator/(vec a, vec b) {
    vec r;
    for (int i = 0; i < W; ++i) {
      r.v.lane[i] = a.v.lane[i] / b.v.lane[i];
    }
    return r;
  }
#endif

  /// NEON `fmla`: acc + a*b. The compiler contracts this to a hardware FMA
  /// where available (-mfma / NEON fmla).
  static vec fma(vec acc, vec a, vec b) { return acc + a * b; }

  /// NEON `fmls`: acc - a*b. Used by the TRSM rectangular kernels, saving
  /// the M*N extra multiplies a GEMM call with alpha=-1 would spend
  /// (paper equation 4).
  static vec fms(vec acc, vec a, vec b) { return acc - a * b; }

  /// Lane-wise square root (NEON `fsqrt`); used by the compact Cholesky
  /// extension. The store/compute/load form keeps it portable -- the
  /// compiler lowers it to the hardware sqrt where one exists.
  static vec sqrt(vec x) {
    Real tmp[W];
    x.store(tmp);
    for (int i = 0; i < W; ++i) {
      tmp[i] = std::sqrt(tmp[i]);
    }
    return load(tmp);
  }
};

} // namespace iatf::simd
