// Runtime ISA detection and backend selection.
//
// The kernels are compiled at several fixed register widths (the Bytes
// template parameter threaded through kreg / Registry / plans / Engine);
// this header decides which of those widths the *running machine* should
// use. An Isa names one (architecture, width) backend:
//
//   x86-64:  Sse2 (16 B, always present)  Avx2 (32 B)  Avx512 (64 B)
//   AArch64: Neon (16 B, always present)  Sve (core's svcntb width)
//
// detect_isa() returns the widest backend the host verifiably supports
// (CPUID on x86, hwcaps on ARM) *and* that maps onto an instantiated
// kernel class. supported_isas() enumerates all of them, narrowest first
// -- the golden conformance sweep walks this list.
//
// The active backend defaults to detect_isa() and can be overridden:
//   * IATF_FORCE_ISA=<name> in the environment (read once, at first use).
//     Naming an ISA the host lacks falls back to the detected widest
//     backend -- forcing must never introduce a SIGILL.
//   * set_active_isa() / iatf_force_isa() from code, which instead REFUSE
//     an unsupported ISA with Status::Unsupported so callers get a
//     diagnosable error, again never a SIGILL.
//
// Each backend is a distinct kernel class end to end: PlanKey carries the
// width, so plans, the sharded plan cache, kernel verify/quarantine state
// and the tuning-table hardware signature are all per-(ISA, width).
#pragma once

#include <string>
#include <vector>

#include "iatf/common/status.hpp"
#include "iatf/common/types.hpp"

namespace iatf::simd {

enum class Isa : int {
  Sse2 = 0,   ///< x86-64 baseline, 128-bit xmm
  Avx2 = 1,   ///< x86-64 AVX2+FMA, 256-bit ymm
  Avx512 = 2, ///< x86-64 AVX-512F, 512-bit zmm
  Neon = 3,   ///< AArch64 baseline, 128-bit q-register (the paper's ISA)
  Sve = 4,    ///< AArch64 SVE, width reported by the core (svcntb)
};

/// Lower-case canonical name ("sse2", "avx2", "avx512", "neon", "sve").
const char* isa_name(Isa isa);

/// Parse a canonical name (case-insensitive). Returns true and sets `out`
/// on success; unknown names return false.
bool parse_isa(const std::string& name, Isa& out);

/// Register width in bytes of one backend. For Sve this is the executing
/// core's vector length (0 when SVE is absent); for the fixed-width ISAs
/// it is a constant 16/32/64.
int isa_bytes(Isa isa);

/// The architecture's always-present 128-bit backend (Sse2 or Neon).
Isa baseline_isa();

/// Every backend the host verifiably supports, narrowest first. The
/// baseline is always element 0. A backend is listed only if the CPU
/// advertises it (CPUID / hwcap) AND its width maps onto an instantiated
/// kernel class (16/32/64 bytes).
std::vector<Isa> supported_isas();

/// Widest verified backend on this host (the last supported_isas() entry).
Isa detect_isa();

/// True if `isa` appears in supported_isas().
bool isa_supported(Isa isa);

/// The backend compute entry points dispatch to by default. Initialized
/// on first use from IATF_FORCE_ISA (falling back to detect_isa() when
/// the named ISA is unknown or unsupported), else detect_isa().
Isa active_isa();

/// Point the default dispatch at `isa`. Refuses backends the host lacks
/// with Status::Unsupported and leaves the active backend unchanged --
/// this, not SIGILL, is what a bad iatf_force_isa() call produces.
Status set_active_isa(Isa isa);

/// Register width in bytes of the active backend.
inline int active_bytes() { return isa_bytes(active_isa()); }

/// Pack width (matrices interleaved per register) of the active backend
/// for scalar type T: the input-aware analogue of pack_width_v<T>.
template <class T> inline int active_pack_width() {
  return active_bytes() / static_cast<int>(sizeof(real_t<T>));
}

} // namespace iatf::simd
