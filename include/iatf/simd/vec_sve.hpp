// ARM SVE scaffolding: width-agnostic vector-length plumbing.
//
// SVE registers are *sizeless* -- their width (128..2048 bits) is a
// property of the running core, not of the binary -- so they cannot back
// the fixed-lane vec<Real, W> value class directly. What the width-generic
// dispatch layer needs from SVE today is the piece that IS knowable:
//
//   * whether SVE was compiled in (sve_compiled), and
//   * the vector length of the executing core (sve_vector_bytes()),
//
// which isa.cpp uses to decide whether the Sve backend maps onto one of
// the instantiated fixed-width kernel classes (16/32/64 bytes). On such a
// core the fixed-width kernels compiled for the matching Bytes are exact:
// a 256-bit SVE machine runs the Bytes=32 backend with the compiler
// synthesizing the ops from NEON or, under -msve-vector-bits=256, with
// GCC mapping the vector-extension types straight onto SVE registers.
// True vector-length-agnostic kernels (svwhilelt predication) remain
// future work and would slot in as further vec specializations here.
#pragma once

#include "iatf/simd/vec_generic.hpp"

#if defined(__ARM_FEATURE_SVE)
#include <arm_sve.h>
#endif

namespace iatf::simd {

#if defined(__ARM_FEATURE_SVE)
inline constexpr bool sve_compiled = true;

/// Vector length in bytes of the executing core (svcntb). Runtime, not
/// constexpr: the same binary may run on cores with different lengths.
inline int sve_vector_bytes() { return static_cast<int>(svcntb()); }
#else
inline constexpr bool sve_compiled = false;

/// SVE not compiled in: no vector length to report.
inline int sve_vector_bytes() { return 0; }
#endif

} // namespace iatf::simd
