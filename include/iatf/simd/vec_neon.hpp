// AArch64 NEON backend: the paper's native 128-bit baseline.
//
// Full specializations of vec<float, 4> and vec<double, 2> -- exactly one
// NEON q-register each, the shapes every IATF kernel was derived for
// (paper section 4.1). The generic vector-extension template already
// lowers 1:1 on AArch64; these specializations pin the kernel-critical
// ops to the named instructions (vfmaq = fmla, vfmsq = fmls,
// vsqrtq = fsqrt) so the mapping documented in the paper is explicit in
// the source and immune to -ffp-contract settings.
//
// Layout matches the generic template: float32x4_t / float64x2_t are
// themselves 16-byte vector types, so kreg aggregates and the bench
// harness's "+w" register barrier work unchanged.
#pragma once

#include "iatf/simd/vec_generic.hpp"

#if IATF_SIMD_NATIVE && defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>

#define IATF_VEC_NEON_SPEC(REAL, W, NATIVE, SUF)                               \
  template <> struct vec<REAL, W> {                                            \
    static constexpr int lanes = W;                                            \
    using real_type = REAL;                                                    \
    using native_type = NATIVE;                                                \
                                                                               \
    native_type v;                                                             \
                                                                               \
    vec() = default;                                                           \
    explicit vec(native_type n) : v(n) {}                                      \
                                                                               \
    static vec load(const REAL* p) { return vec(vld1q_##SUF(p)); }             \
    void store(REAL* p) const { vst1q_##SUF(p, v); }                           \
    static vec broadcast(REAL x) { return vec(vdupq_n_##SUF(x)); }             \
    static vec zero() { return broadcast(REAL(0)); }                           \
    REAL get(int i) const {                                                    \
      REAL tmp[W];                                                             \
      store(tmp);                                                              \
      return tmp[i];                                                           \
    }                                                                          \
                                                                               \
    friend vec operator+(vec a, vec b) { return vec(vaddq_##SUF(a.v, b.v)); }  \
    friend vec operator-(vec a, vec b) { return vec(vsubq_##SUF(a.v, b.v)); }  \
    friend vec operator*(vec a, vec b) { return vec(vmulq_##SUF(a.v, b.v)); }  \
    friend vec operator/(vec a, vec b) { return vec(vdivq_##SUF(a.v, b.v)); }  \
                                                                               \
    /* fmla: acc + a*b */                                                      \
    static vec fma(vec acc, vec a, vec b) {                                    \
      return vec(vfmaq_##SUF(acc.v, a.v, b.v));                                \
    }                                                                          \
    /* fmls: acc - a*b */                                                      \
    static vec fms(vec acc, vec a, vec b) {                                    \
      return vec(vfmsq_##SUF(acc.v, a.v, b.v));                                \
    }                                                                          \
    /* fsqrt */                                                                \
    static vec sqrt(vec x) { return vec(vsqrtq_##SUF(x.v)); }                  \
  };

namespace iatf::simd {

IATF_VEC_NEON_SPEC(float, 4, float32x4_t, f32)
IATF_VEC_NEON_SPEC(double, 2, float64x2_t, f64)

} // namespace iatf::simd

#undef IATF_VEC_NEON_SPEC
#endif // AArch64 NEON backend
