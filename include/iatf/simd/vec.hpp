// Umbrella header for the width-generic SIMD layer.
//
// vec<Real, W> is one value class with per-ISA backends:
//   vec_generic.hpp -- portable primary template, correct at any width
//                      (GCC/Clang vector extensions, array fallback)
//   vec_x86.hpp     -- AVX2 / AVX-512 intrinsic specializations
//   vec_neon.hpp    -- NEON intrinsic specializations (paper baseline)
//   vec_sve.hpp     -- width-agnostic SVE vector-length scaffolding
//
// Always include THIS header: the backend specializations must be visible
// before the first instantiation of vec at a specialized width, and the
// include order here guarantees that.
//
// Width notes:
//   * vec<float,4> / vec<double,2>   == one NEON q-register / SSE xmm
//     (the paper's platform; the Bytes=16 kernel class).
//   * vec<float,8> / vec<double,4>   == one AVX2 ymm (Bytes=32).
//   * vec<float,16> / vec<double,8>  == one AVX-512 zmm (Bytes=64).
// Runtime selection between these classes is isa.hpp's job; everything
// below compiles at every width on every compiler.
#pragma once

#include "iatf/simd/vec_generic.hpp"
#include "iatf/simd/vec_neon.hpp"
#include "iatf/simd/vec_sve.hpp"
#include "iatf/simd/vec_x86.hpp"

namespace iatf::simd {

/// 128-bit lane count for the real type underlying T: the paper's "P"
/// (number of matrices interleaved per SIMD register).
template <class T>
inline constexpr int pack_width_v = 16 / static_cast<int>(sizeof(real_t<T>));

/// Lane count for an arbitrary register width in bytes.
template <class T, int Bytes>
inline constexpr int pack_width_bytes_v =
    Bytes / static_cast<int>(sizeof(real_t<T>));

/// The vector type IATF kernels use for scalar type T at a given register
/// width (defaults to the paper's 128 bits).
template <class T, int Bytes = 16>
using compact_vec_t = vec<real_t<T>, pack_width_bytes_v<T, Bytes>>;

} // namespace iatf::simd
