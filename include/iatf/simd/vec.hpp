// Portable fixed-width SIMD vector with ARMv8 NEON semantics.
//
// The paper's kernels are written in AArch64 assembly over 128-bit NEON
// registers (fmla / fmls / fmul / ldp / stp). This header provides the same
// operation set as a typed value class so the identical kernel *algorithms*
// (paper Algorithms 2-4) compile to NEON on AArch64, to SSE/AVX on x86-64,
// and to scalar code elsewhere. GCC/Clang vector extensions are used as the
// primary backend because they lower 1:1 onto the native 128-bit ISA of
// either architecture; a plain array fallback keeps other compilers working.
//
// Width notes:
//   * vec<float,4> / vec<double,2>  == one NEON q-register (the paper's
//     platform, used by all IATF kernels).
//   * vec<float,8> / vec<double,4>  == a 256-bit register, used only by the
//     `mklsim` backend that models Intel's wider-SIMD compact BLAS for the
//     Figure 11/12 percent-of-peak comparison.
#pragma once

#include <cmath>
#include <cstring>

#include "iatf/common/types.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define IATF_SIMD_NATIVE 1
#else
#define IATF_SIMD_NATIVE 0
#endif

namespace iatf::simd {

template <class Real, int W> struct vec {
  static_assert(W > 0 && (W & (W - 1)) == 0, "lane count must be power of 2");
  static constexpr int lanes = W;
  using real_type = Real;

#if IATF_SIMD_NATIVE
  typedef Real native_type __attribute__((vector_size(sizeof(Real) * W)));
#else
  struct native_type {
    Real lane[W];
  };
#endif

  native_type v;

  vec() = default;
  explicit vec(native_type n) : v(n) {}

  /// Load W consecutive reals (no alignment requirement).
  static vec load(const Real* p) {
    vec r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
  }

  /// Store W consecutive reals (no alignment requirement).
  void store(Real* p) const { std::memcpy(p, &v, sizeof(v)); }

  /// All lanes = x (NEON `dup`).
  static vec broadcast(Real x) {
    vec r;
#if IATF_SIMD_NATIVE
    r.v = x - native_type{}; // splat: scalar op vector broadcasts
#else
    for (int i = 0; i < W; ++i) {
      r.v.lane[i] = x;
    }
#endif
    return r;
  }

  static vec zero() { return broadcast(Real(0)); }

  Real get(int i) const {
    Real tmp[W];
    store(tmp);
    return tmp[i];
  }

#if IATF_SIMD_NATIVE
  friend vec operator+(vec a, vec b) { return vec(a.v + b.v); }
  friend vec operator-(vec a, vec b) { return vec(a.v - b.v); }
  friend vec operator*(vec a, vec b) { return vec(a.v * b.v); }
  friend vec operator/(vec a, vec b) { return vec(a.v / b.v); }
#else
  friend vec operator+(vec a, vec b) {
    vec r;
    for (int i = 0; i < W; ++i) {
      r.v.lane[i] = a.v.lane[i] + b.v.lane[i];
    }
    return r;
  }
  friend vec operator-(vec a, vec b) {
    vec r;
    for (int i = 0; i < W; ++i) {
      r.v.lane[i] = a.v.lane[i] - b.v.lane[i];
    }
    return r;
  }
  friend vec operator*(vec a, vec b) {
    vec r;
    for (int i = 0; i < W; ++i) {
      r.v.lane[i] = a.v.lane[i] * b.v.lane[i];
    }
    return r;
  }
  friend vec operator/(vec a, vec b) {
    vec r;
    for (int i = 0; i < W; ++i) {
      r.v.lane[i] = a.v.lane[i] / b.v.lane[i];
    }
    return r;
  }
#endif

  /// NEON `fmla`: acc + a*b. The compiler contracts this to a hardware FMA
  /// where available (-mfma / NEON fmla).
  static vec fma(vec acc, vec a, vec b) { return acc + a * b; }

  /// NEON `fmls`: acc - a*b. Used by the TRSM rectangular kernels, saving
  /// the M*N extra multiplies a GEMM call with alpha=-1 would spend
  /// (paper equation 4).
  static vec fms(vec acc, vec a, vec b) { return acc - a * b; }

  /// Lane-wise square root (NEON `fsqrt`); used by the compact Cholesky
  /// extension. The store/compute/load form keeps it portable -- the
  /// compiler lowers it to the hardware sqrt where one exists.
  static vec sqrt(vec x) {
    Real tmp[W];
    x.store(tmp);
    for (int i = 0; i < W; ++i) {
      tmp[i] = std::sqrt(tmp[i]);
    }
    return load(tmp);
  }
};

/// 128-bit lane count for the real type underlying T: the paper's "P"
/// (number of matrices interleaved per SIMD register).
template <class T>
inline constexpr int pack_width_v = 16 / static_cast<int>(sizeof(real_t<T>));

/// Lane count for an arbitrary register width in bytes.
template <class T, int Bytes>
inline constexpr int pack_width_bytes_v =
    Bytes / static_cast<int>(sizeof(real_t<T>));

/// The vector type IATF kernels use for scalar type T at a given register
/// width (defaults to the paper's 128 bits).
template <class T, int Bytes = 16>
using compact_vec_t = vec<real_t<T>, pack_width_bytes_v<T, Bytes>>;

} // namespace iatf::simd
